"""DAG validation for pipeline configurations.

Checks the properties §2's programming model relies on: edges point at
modules that exist, the graph is acyclic, every module is reachable from the
source (otherwise it would never see a frame), and endpoints don't collide.
"""

from __future__ import annotations

import networkx as nx

from ..errors import ConfigError
from ..net.address import parse_endpoint
from .config import PipelineConfig


def build_graph(config: PipelineConfig) -> nx.DiGraph:
    """The configuration's module graph (nodes carry their ModuleConfig)."""
    graph = nx.DiGraph()
    for module in config.modules:
        graph.add_node(module.name, config=module)
    for module in config.modules:
        for target in module.next_modules:
            if target not in graph:
                raise ConfigError(
                    f"module {module.name!r} points at unknown module {target!r}"
                )
            graph.add_edge(module.name, target)
    return graph


def validate(config: PipelineConfig) -> nx.DiGraph:
    """Validate the whole configuration; returns the graph on success.

    Raises :class:`~repro.errors.ConfigError` with a specific message on the
    first violation found.
    """
    if not config.modules:
        raise ConfigError(f"pipeline {config.name!r} has no modules")
    graph = build_graph(config)

    if not nx.is_directed_acyclic_graph(graph):
        cycle = nx.find_cycle(graph)
        path = " -> ".join(edge[0] for edge in cycle) + f" -> {cycle[-1][1]}"
        raise ConfigError(f"pipeline {config.name!r} has a cycle: {path}")

    source = config.source_module
    if source not in graph:
        raise ConfigError(f"source module {source!r} is not defined")
    reachable = {source} | nx.descendants(graph, source)
    unreachable = set(graph.nodes) - reachable
    if unreachable:
        raise ConfigError(
            f"modules unreachable from source {source!r}: {sorted(unreachable)}"
        )

    _validate_endpoints(config)
    return graph


def _validate_endpoints(config: PipelineConfig) -> None:
    seen: dict[tuple[str, int], str] = {}
    for module in config.modules:
        try:
            spec = parse_endpoint(module.endpoint)
        except Exception as exc:
            raise ConfigError(
                f"module {module.name!r} has a bad endpoint: {exc}"
            ) from exc
        if spec.port == 0:
            continue  # auto-assigned later
        key = (module.device or spec.host, spec.port)
        other = seen.get(key)
        if other is not None:
            raise ConfigError(
                f"modules {other!r} and {module.name!r} both bind port"
                f" {spec.port} on the same host"
            )
        seen[key] = module.name


def topological_order(config: PipelineConfig) -> list[str]:
    """Module names in dependency order (source first)."""
    return list(nx.topological_sort(build_graph(config)))


def sink_modules(config: PipelineConfig) -> list[str]:
    """Modules with no outgoing edges — candidates for the §2.3 signaler."""
    graph = build_graph(config)
    return sorted(n for n in graph.nodes if graph.out_degree(n) == 0)


def longest_path(config: PipelineConfig) -> list[str]:
    """The longest module chain — the pipeline's structural critical path."""
    graph = build_graph(config)
    return nx.dag_longest_path(graph)
