"""Pipeline deployment: configuration + placement → running modules.

"VideoPipe prepares the required service stubs on each device and connects
different components together" (§3.1). The deployer resolves every module's
endpoint against its placed device, instantiates module code through the
registry, builds local-or-remote service stubs, and installs everything on
the per-device runtimes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..devices.device import Device
from ..errors import DeploymentError
from ..frames.arena import MIGRATED
from ..frames.payloads import frame_ids_in, release_refs
from ..metrics.collector import MetricsCollector
from ..net.address import Address, parse_endpoint
from ..net.transport import Transport
from ..runtime.module import Module
from ..runtime.registry import create_module
from ..runtime.wiring import PipelineWiring
from ..services.registry import ServiceRegistry
from ..services.stubs import make_stub
from ..sim.kernel import Kernel
from .config import PipelineConfig
from .dag import validate
from .pipeline import Pipeline
from .placement import PlacementPlan

if TYPE_CHECKING:  # pragma: no cover
    pass


class Deployer:
    """Installs validated pipelines onto the home's devices."""

    def __init__(
        self,
        kernel: Kernel,
        transport: Transport,
        devices: dict[str, Device],
        registry: ServiceRegistry,
    ) -> None:
        self.kernel = kernel
        self.transport = transport
        self.devices = devices
        self.registry = registry

    def deploy(
        self,
        config: PipelineConfig,
        placement: PlacementPlan,
        module_instances: dict[str, Module] | None = None,
        prefer_local_services: bool = True,
    ) -> Pipeline:
        """Deploy *config* according to *placement*.

        ``module_instances`` overrides registry construction for specific
        modules (useful for pre-trained or test modules).
        ``prefer_local_services=False`` forces every service call remote —
        the pure service-oriented architecture the baseline embodies.
        """
        validate(config)
        module_instances = module_instances or {}

        wiring = PipelineWiring(
            pipeline_name=config.name,
            metrics=MetricsCollector(config.name),
        )
        wiring.source_module = config.source_module
        for module_cfg in config.modules:
            wiring.next_modules[module_cfg.name] = list(module_cfg.next_modules)
            wiring.versions[module_cfg.name] = module_cfg.version
            wiring.addresses[module_cfg.name] = self._resolve_address(
                module_cfg.endpoint, placement.device_of(module_cfg.name)
            )

        deployed = {}
        try:
            for module_cfg in config.modules:
                device = self._device_of(placement.device_of(module_cfg.name))
                instance = module_instances.get(module_cfg.name)
                if instance is None:
                    instance = create_module(module_cfg.include, **module_cfg.params)
                stubs = {
                    service: make_stub(
                        self.kernel,
                        self.transport,
                        self.registry,
                        device,
                        service,
                        prefer_local=prefer_local_services,
                        balancing=config.balancing or "fastest",
                        timeout_s=config.service_timeout_s,
                    )
                    for service in module_cfg.services
                }
                runtime = device.runtime
                if runtime is None:
                    raise DeploymentError(
                        f"device {device.name!r} has no module runtime"
                    )
                deployed[module_cfg.name] = runtime.deploy(
                    module_cfg.name,
                    instance,
                    wiring.addresses[module_cfg.name],
                    wiring,
                    stubs,
                )
        except Exception:
            # roll back partial deployments so a failed deploy leaves the
            # home clean: stop what init may have started (a source module
            # keeps capturing otherwise), unbind, and drain any mailbox
            # content with crash semantics (drop_queued_events) — refs
            # released, carried frames accounted as dropped
            for name in reversed(list(deployed)):
                dep = deployed[name]
                shutdown = getattr(dep.module, "shutdown", None)
                if callable(shutdown):
                    shutdown(dep.ctx)
                dep.runtime.undeploy(name)
                for event in dep.mailbox.drain():
                    release_refs(
                        event.payload, dep.runtime.device.frame_store
                    )
                    # each event copy owns its refs, but a frame fanned out
                    # to several mailboxes may only be *dropped* once — the
                    # in-flight guard makes drop accounting idempotent
                    # across modules and drain sites
                    for frame_id in frame_ids_in(event.payload):
                        if dep.ctx.metrics.frame_in_flight(frame_id):
                            dep.ctx.frame_dropped(frame_id)
            raise
        for module_cfg in config.modules:
            wiring.metrics.increment(
                f"module_version.{module_cfg.name}.{module_cfg.version}"
            )
        return Pipeline(
            config, placement, wiring, deployed,
            prefer_local_services=prefer_local_services,
        )

    # -- migration -----------------------------------------------------------------
    def migrate(self, pipeline: Pipeline, module_name: str,
                target_device: str) -> None:
        """Move a running module (with its encapsulated state) to another
        device — the relocation the uniform runtime makes possible (§2.1)
        and the §7 "automatic deployment" component needs.

        The module instance is undeployed, its service stubs are rebuilt
        for the new device (local vs remote may flip), the shared wiring is
        updated so peers route to the new address, and the instance is
        redeployed. Events still queued in the old mailbox are dropped
        (their frame references are released), mirroring a real
        stop-the-module-and-move: senders simply see the brief gap.

        Caveat: a message in flight to the old address during the move is
        lost. If the migrated module sits on the §2.3 credit path, a lost
        frame means the source never gets its ready signal — streams that
        must survive live migration should enable the video source's
        ``credit_timeout_s`` watchdog.
        """
        old_deployed = pipeline.module(module_name)
        module_cfg = pipeline.config.module(module_name)
        source_device = pipeline.placement.device_of(module_name)
        if source_device == target_device:
            return
        target = self._device_of(target_device)
        if target.runtime is None:
            raise DeploymentError(f"device {target_device!r} has no runtime")

        # stop the old instance and salvage queued events; frames those
        # events carried leave the pipeline here, so they are accounted as
        # dropped (same bookkeeping as a device crash draining mailboxes) —
        # otherwise each one leaks a frames_in_flight slot forever
        old_runtime = old_deployed.runtime
        old_runtime.undeploy(module_name)
        dropped = old_deployed.mailbox.drain()
        for event in dropped:
            # the frames are leaving this device: retire their arena slots
            # as MIGRATED so a stale handle reports use-after-migrate
            release_refs(
                event.payload, old_runtime.device.frame_store,
                reason=MIGRATED,
            )
            # frame ids may be nested (batched/enveloped payloads) — walk
            # the payload like release_refs does, or each missed frame
            # leaks a frames_in_flight slot forever. A fan-in module's
            # mailbox can hold several events for the *same* frame (one
            # per upstream producer), and the frame may also still reach
            # the sink through a surviving sibling branch — so each event
            # releases its own refs, but the drop is only recorded while
            # the frame is still in flight (first settlement wins)
            for frame_id in frame_ids_in(event.payload):
                if old_deployed.ctx.metrics.frame_in_flight(frame_id):
                    old_deployed.ctx.frame_dropped(frame_id)
        if dropped:
            pipeline.metrics.increment("migration_dropped_events", len(dropped))

        # rewire and redeploy the same instance on the target
        new_address = Address(
            target_device, self.transport.ephemeral_port(target_device)
        )
        pipeline.wiring.addresses[module_name] = new_address
        stubs = self._build_stubs(pipeline, module_cfg, target)
        new_deployed = target.runtime.deploy(
            module_name, old_deployed.module, new_address, pipeline.wiring,
            stubs, run_init=False,
        )
        pipeline.placement.assignments[module_name] = target_device
        pipeline._deployed[module_name] = new_deployed
        pipeline.metrics.increment("migrations")

    # -- in-place swap (hot upgrade promotion) -----------------------------------
    def swap_module(
        self,
        pipeline: Pipeline,
        module_name: str,
        new_instance: Module,
        version: str,
        run_init: bool = False,
    ) -> None:
        """Atomically replace *module_name*'s instance in place.

        The hot-upgrade promotion primitive (``docs/LIVEOPS.md``): the new
        instance takes over the **same address** on the **same device**
        within one kernel callback, so peers keep routing unchanged and
        messages in flight deliver to the new version. Unlike
        :meth:`migrate`, events still queued in the old mailbox are *not*
        dropped — they are re-enqueued into the new instance's mailbox in
        order (same device, so their frame references stay valid): a swap
        loses no admitted frame.

        ``run_init=False`` (the default) re-hosts an instance that already
        ran ``init`` — the canary path warms v2 as a shadow deployment
        before promoting it.
        """
        old_deployed = pipeline.module(module_name)
        module_cfg = pipeline.config.module(module_name)
        runtime = old_deployed.runtime
        address = old_deployed.address
        runtime.undeploy(module_name)
        salvaged = old_deployed.mailbox.drain()
        shutdown = getattr(old_deployed.module, "shutdown", None)
        if callable(shutdown):
            shutdown(old_deployed.ctx)
        stubs = self._build_stubs(pipeline, module_cfg, runtime.device)
        new_deployed = runtime.deploy(
            module_name, new_instance, address, pipeline.wiring, stubs,
            run_init=run_init,
        )
        for event in salvaged:
            new_deployed.mailbox.put(event)
        new_deployed.max_mailbox_depth = max(
            new_deployed.max_mailbox_depth, new_deployed.mailbox_depth
        )
        pipeline._deployed[module_name] = new_deployed
        pipeline.wiring.versions[module_name] = version
        module_cfg.version = version
        pipeline.metrics.increment(
            f"module_version.{module_name}.{version}"
        )
        if salvaged:
            pipeline.metrics.increment("swap_salvaged_events", len(salvaged))

    # -- helpers -----------------------------------------------------------------
    def _build_stubs(
        self, pipeline: Pipeline, module_cfg, device: Device
    ) -> dict:
        """Service stubs for *module_cfg* on *device*, honouring the
        pipeline's deploy-time ``prefer_local_services`` policy — a pure
        service-oriented pipeline must not silently flip local after a
        migration or upgrade."""
        return {
            service: make_stub(
                self.kernel, self.transport, self.registry, device, service,
                prefer_local=pipeline.prefer_local_services,
                balancing=pipeline.config.balancing or "fastest",
                timeout_s=pipeline.config.service_timeout_s,
            )
            for service in module_cfg.services
        }
    def _device_of(self, name: str) -> Device:
        try:
            return self.devices[name]
        except KeyError:
            raise DeploymentError(f"unknown device {name!r} in placement")

    def _resolve_address(self, endpoint: str, device_name: str) -> Address:
        spec = parse_endpoint(endpoint)
        port = spec.port or self.transport.ephemeral_port(device_name)
        host = device_name if spec.host == "*" else spec.host
        if host != device_name:
            raise DeploymentError(
                f"endpoint {endpoint!r} names host {host!r} but placement"
                f" chose {device_name!r}; use 'bind#tcp://*:<port>' to follow"
                " placement"
            )
        return Address(device_name, port)
