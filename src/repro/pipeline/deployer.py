"""Pipeline deployment: configuration + placement → running modules.

"VideoPipe prepares the required service stubs on each device and connects
different components together" (§3.1). The deployer resolves every module's
endpoint against its placed device, instantiates module code through the
registry, builds local-or-remote service stubs, and installs everything on
the per-device runtimes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..devices.device import Device
from ..errors import DeploymentError
from ..metrics.collector import MetricsCollector
from ..net.address import Address, parse_endpoint
from ..net.transport import Transport
from ..runtime.module import Module
from ..runtime.registry import create_module
from ..runtime.wiring import PipelineWiring
from ..services.registry import ServiceRegistry
from ..services.stubs import make_stub
from ..sim.kernel import Kernel
from .config import PipelineConfig
from .dag import validate
from .pipeline import Pipeline
from .placement import PlacementPlan

if TYPE_CHECKING:  # pragma: no cover
    pass


class Deployer:
    """Installs validated pipelines onto the home's devices."""

    def __init__(
        self,
        kernel: Kernel,
        transport: Transport,
        devices: dict[str, Device],
        registry: ServiceRegistry,
    ) -> None:
        self.kernel = kernel
        self.transport = transport
        self.devices = devices
        self.registry = registry

    def deploy(
        self,
        config: PipelineConfig,
        placement: PlacementPlan,
        module_instances: dict[str, Module] | None = None,
        prefer_local_services: bool = True,
    ) -> Pipeline:
        """Deploy *config* according to *placement*.

        ``module_instances`` overrides registry construction for specific
        modules (useful for pre-trained or test modules).
        ``prefer_local_services=False`` forces every service call remote —
        the pure service-oriented architecture the baseline embodies.
        """
        validate(config)
        module_instances = module_instances or {}

        wiring = PipelineWiring(
            pipeline_name=config.name,
            metrics=MetricsCollector(config.name),
        )
        wiring.source_module = config.source_module
        for module_cfg in config.modules:
            wiring.next_modules[module_cfg.name] = list(module_cfg.next_modules)
            wiring.addresses[module_cfg.name] = self._resolve_address(
                module_cfg.endpoint, placement.device_of(module_cfg.name)
            )

        deployed = {}
        try:
            for module_cfg in config.modules:
                device = self._device_of(placement.device_of(module_cfg.name))
                instance = module_instances.get(module_cfg.name)
                if instance is None:
                    instance = create_module(module_cfg.include, **module_cfg.params)
                stubs = {
                    service: make_stub(
                        self.kernel,
                        self.transport,
                        self.registry,
                        device,
                        service,
                        prefer_local=prefer_local_services,
                        balancing=config.balancing or "fastest",
                        timeout_s=config.service_timeout_s,
                    )
                    for service in module_cfg.services
                }
                runtime = device.runtime
                if runtime is None:
                    raise DeploymentError(
                        f"device {device.name!r} has no module runtime"
                    )
                deployed[module_cfg.name] = runtime.deploy(
                    module_cfg.name,
                    instance,
                    wiring.addresses[module_cfg.name],
                    wiring,
                    stubs,
                )
        except Exception:
            # roll back partial deployments so a failed deploy leaves the
            # home clean
            for name, dep in deployed.items():
                dep.runtime.undeploy(name)
            raise
        return Pipeline(config, placement, wiring, deployed)

    # -- migration -----------------------------------------------------------------
    def migrate(self, pipeline: Pipeline, module_name: str,
                target_device: str) -> None:
        """Move a running module (with its encapsulated state) to another
        device — the relocation the uniform runtime makes possible (§2.1)
        and the §7 "automatic deployment" component needs.

        The module instance is undeployed, its service stubs are rebuilt
        for the new device (local vs remote may flip), the shared wiring is
        updated so peers route to the new address, and the instance is
        redeployed. Events still queued in the old mailbox are dropped
        (their frame references are released), mirroring a real
        stop-the-module-and-move: senders simply see the brief gap.

        Caveat: a message in flight to the old address during the move is
        lost. If the migrated module sits on the §2.3 credit path, a lost
        frame means the source never gets its ready signal — streams that
        must survive live migration should enable the video source's
        ``credit_timeout_s`` watchdog.
        """
        from ..frames.payloads import release_refs

        old_deployed = pipeline.module(module_name)
        module_cfg = pipeline.config.module(module_name)
        source_device = pipeline.placement.device_of(module_name)
        if source_device == target_device:
            return
        target = self._device_of(target_device)
        if target.runtime is None:
            raise DeploymentError(f"device {target_device!r} has no runtime")

        # stop the old instance and salvage queued events; frames those
        # events carried leave the pipeline here, so they are accounted as
        # dropped (same bookkeeping as a device crash draining mailboxes) —
        # otherwise each one leaks a frames_in_flight slot forever
        old_runtime = old_deployed.runtime
        old_runtime.undeploy(module_name)
        dropped = old_deployed.mailbox.drain()
        seen_frames: set[int] = set()
        for event in dropped:
            release_refs(event.payload, old_runtime.device.frame_store)
            payload = event.payload
            if isinstance(payload, dict) and "frame_id" in payload:
                frame_id = payload["frame_id"]
                if frame_id not in seen_frames:
                    seen_frames.add(frame_id)
                    old_deployed.ctx.frame_dropped(frame_id)
        if dropped:
            pipeline.metrics.increment("migration_dropped_events", len(dropped))

        # rewire and redeploy the same instance on the target
        new_address = Address(
            target_device, self.transport.ephemeral_port(target_device)
        )
        pipeline.wiring.addresses[module_name] = new_address
        stubs = {
            service: make_stub(
                self.kernel, self.transport, self.registry, target, service,
                balancing=pipeline.config.balancing or "fastest",
                timeout_s=pipeline.config.service_timeout_s,
            )
            for service in module_cfg.services
        }
        new_deployed = target.runtime.deploy(
            module_name, old_deployed.module, new_address, pipeline.wiring,
            stubs, run_init=False,
        )
        pipeline.placement.assignments[module_name] = target_device
        pipeline._deployed[module_name] = new_deployed
        pipeline.metrics.increment("migrations")

    # -- helpers -----------------------------------------------------------------
    def _device_of(self, name: str) -> Device:
        try:
            return self.devices[name]
        except KeyError:
            raise DeploymentError(f"unknown device {name!r} in placement")

    def _resolve_address(self, endpoint: str, device_name: str) -> Address:
        spec = parse_endpoint(endpoint)
        port = spec.port or self.transport.ephemeral_port(device_name)
        host = device_name if spec.host == "*" else spec.host
        if host != device_name:
            raise DeploymentError(
                f"endpoint {endpoint!r} names host {host!r} but placement"
                f" chose {device_name!r}; use 'bind#tcp://*:<port>' to follow"
                " placement"
            )
        return Address(device_name, port)
