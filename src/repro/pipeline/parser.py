"""Parser for the paper's Listing-1 configuration syntax.

The paper configures pipelines in a relaxed JS-object-literal dialect::

    modules : [
      { name: pose_detector_module
        include ("./PoseDetectorModule.js")
        service: ['pose_detector']
        endpoint: ["bind#tcp://*:5861"]
        next_module: activity_detector_module }
      { name: activity_detector_module
        ...
        next_module: [rep_counter_module, display_module] }
    ]

:func:`parse_pipeline_text` accepts exactly that (commas and quotes
optional, one ``key: value`` pair per line or comma-separated), plus JSON
via :func:`parse_pipeline_json`.
"""

from __future__ import annotations

import json
import re
from typing import Any

from ..errors import ConfigError
from .config import PipelineConfig, config_from_dict

_TOKEN_RE = re.compile(
    r"""
    (?P<string>"[^"]*"|'[^']*')      # quoted string
  | (?P<punct>[\[\]{}:,()])           # structural punctuation
  | (?P<bare>[^\s\[\]{}:,()'"]+)      # bare word (names, endpoints)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[str]:
    tokens = []
    for line in text.splitlines():
        # whole-line comments only: '#' and '//' both occur inside endpoint
        # strings ("bind#tcp://*:5861"), so inline comments are not supported
        if line.lstrip().startswith(("//", "#")):
            continue
        for match in _TOKEN_RE.finditer(line):
            tokens.append(match.group(0))
    return tokens


class _TokenStream:
    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ConfigError("unexpected end of pipeline configuration")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise ConfigError(f"expected {token!r}, got {got!r}")

    def skip_commas(self) -> None:
        while self.peek() == ",":
            self.next()


def _unquote(token: str) -> str:
    if len(token) >= 2 and token[0] in "\"'" and token[-1] == token[0]:
        return token[1:-1]
    return token


def _parse_value(stream: _TokenStream) -> Any:
    token = stream.peek()
    if token == "[":
        stream.next()
        items: list[Any] = []
        while True:
            stream.skip_commas()
            if stream.peek() == "]":
                stream.next()
                return items
            items.append(_parse_value(stream))
    if token == "{":
        return _parse_object(stream)
    if token == "(":  # include ("./File.js") style call syntax
        stream.next()
        inner = _parse_value(stream)
        stream.expect(")")
        return inner
    return _unquote(stream.next())


def _parse_object(stream: _TokenStream) -> dict[str, Any]:
    stream.expect("{")
    obj: dict[str, Any] = {}
    while True:
        stream.skip_commas()
        token = stream.peek()
        if token is None:
            raise ConfigError("unterminated module entry (missing '}')")
        if token == "}":
            stream.next()
            return obj
        key = _unquote(stream.next())
        # either `key: value` or call syntax `key ( value )`
        if stream.peek() == ":":
            stream.next()
            value = _parse_value(stream)
        elif stream.peek() == "(":
            value = _parse_value(stream)
        else:
            raise ConfigError(f"expected ':' or '(' after key {key!r}")
        obj[key] = value


def parse_pipeline_text(text: str, name: str = "pipeline") -> PipelineConfig:
    """Parse the Listing-1 dialect into a :class:`PipelineConfig`."""
    stream = _TokenStream(_tokenize(text))
    header = stream.next()
    if _unquote(header) != "modules":
        raise ConfigError(f"configuration must start with 'modules :', got {header!r}")
    stream.expect(":")
    entries = _parse_value(stream)
    if not isinstance(entries, list):
        raise ConfigError("'modules' must be a list of module entries")
    modules = []
    for entry in entries:
        if not isinstance(entry, dict):
            raise ConfigError(f"module entry must be an object, got {entry!r}")
        modules.append(_normalize_entry(entry))
    return config_from_dict({"name": name, "modules": modules})


def _normalize_entry(entry: dict[str, Any]) -> dict[str, Any]:
    normalized: dict[str, Any] = {}
    for key, value in entry.items():
        if key in ("next_module", "next_modules"):
            normalized["next_modules"] = value if isinstance(value, list) else [value]
        elif key in ("service", "services"):
            normalized["services"] = value if isinstance(value, list) else [value]
        elif key == "endpoint":
            # the listing wraps endpoints in a one-element list
            if isinstance(value, list):
                if len(value) != 1:
                    raise ConfigError(f"endpoint must be a single value: {value!r}")
                value = value[0]
            normalized["endpoint"] = value
        elif key in ("name", "include", "device", "params"):
            normalized[key] = value
        else:
            raise ConfigError(f"unknown module config key {key!r}")
    return normalized


def parse_pipeline_json(text: str) -> PipelineConfig:
    """Parse the JSON form of a pipeline configuration."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"invalid pipeline JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigError("pipeline JSON must be an object")
    return config_from_dict(data)
