"""Pipeline configuration model.

"Each application is specified as a Directed Acyclic Graph (DAG) by the
application developer" (§2); Listing 1 shows the concrete shape: each module
entry names its code (``include``), the services it calls, its endpoint, and
its ``next_module`` fan-out. :class:`PipelineConfig` is that document as
data; the parser (:mod:`repro.pipeline.parser`) produces it from text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import ConfigError


@dataclass(slots=True)
class ModuleConfig:
    """One module entry from the configuration file.

    Attributes:
        name: unique module name within the pipeline.
        include: the module code reference (e.g. ``"./RepCounterModule.js"``),
            resolved through the runtime module registry.
        services: stateless services this module calls.
        endpoint: endpoint string, e.g. ``"bind#tcp://*:5861"``.
        next_modules: downstream module names (the DAG's out-edges).
        device: optional placement pin to a specific device.
        params: constructor parameters for the module class.
        version: the module code's version label, surfaced in wiring,
            lineage records and upgrade bookkeeping (``docs/LIVEOPS.md``).
    """

    name: str
    include: str
    services: list[str] = field(default_factory=list)
    endpoint: str = "bind#tcp://*:0"
    next_modules: list[str] = field(default_factory=list)
    device: str | None = None
    params: dict[str, Any] = field(default_factory=dict)
    version: str = "v1"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("module entry needs a name")
        if not self.include:
            raise ConfigError(f"module {self.name!r} needs an include reference")
        if not self.version:
            raise ConfigError(f"module {self.name!r} needs a non-empty version")


@dataclass(slots=True)
class PerfConfig:
    """Knobs for the service-layer fast path (dedup, caching, batching).

    Applied home-wide via :meth:`repro.core.videopipe.VideoPipe.enable_fast_path`.
    All defaults reflect the paper's edge workload: dedup and the result
    cache on (static scenes are common), batching off (it only pays when a
    service is shared across pipelines).

    Attributes:
        frame_dedup: content-address device frame stores, collapsing
            byte-identical frames into one stored object.
        dedup_retain_limit: zero-refcount frames kept per store as dedup
            targets (0 disables retention).
        result_cache: attach a result cache to hosts of ``cacheable``
            services; repeated requests skip execution entirely.
        cache_max_entries: LRU capacity per host.
        cache_ttl_s: result expiry in simulated seconds (``None`` = never).
        batching: let hosts coalesce queued requests into batches for
            services with ``max_batch > 1``.
        max_batch: host-side cap on the batch size.
        max_wait_s: longest a request waits for batch companions.
    """

    frame_dedup: bool = True
    dedup_retain_limit: int = 32
    result_cache: bool = True
    cache_max_entries: int = 512
    cache_ttl_s: float | None = None
    batching: bool = False
    max_batch: int = 4
    max_wait_s: float = 0.004

    def __post_init__(self) -> None:
        if self.dedup_retain_limit < 0:
            raise ConfigError("dedup_retain_limit must be >= 0")
        if self.cache_max_entries < 1:
            raise ConfigError("cache_max_entries must be >= 1")
        if self.cache_ttl_s is not None and self.cache_ttl_s <= 0:
            raise ConfigError("cache_ttl_s must be positive")
        if self.max_batch < 1:
            raise ConfigError("max_batch must be >= 1")
        if self.max_wait_s < 0:
            raise ConfigError("max_wait_s must be >= 0")

    @property
    def any_enabled(self) -> bool:
        """Whether this config turns on any fast-path feature at all."""
        return self.frame_dedup or self.result_cache or self.batching


@dataclass(slots=True)
class DataPlaneConfig:
    """Knobs for the zero-copy frame plane and pooled service parallelism.

    Applied home-wide via
    :meth:`repro.core.videopipe.VideoPipe.enable_data_plane` (or its
    focused cousins ``enable_arena`` / ``enable_replica_pool``). Both
    default on: the arena makes intra-device hops cost a handle tuple, the
    pool lets services on one device share worker slots instead of
    statically partitioning them.

    Attributes:
        arena: back every device frame store with a generation-counted
            :class:`~repro.frames.arena.FrameArena`; stale handle access
            raises :class:`~repro.errors.StaleHandleError`.
        arena_capacity_bytes: optional per-device arena byte budget
            (``None`` = unbounded; the store's slot capacity still binds).
        replica_pool: replace fixed per-host replica counts with a shared
            per-device :class:`~repro.services.pool.ReplicaPool`.
        pool_slots: physical slots per device pool (``None`` = one per
            CPU core).
    """

    arena: bool = True
    arena_capacity_bytes: int | None = None
    replica_pool: bool = True
    pool_slots: int | None = None

    def __post_init__(self) -> None:
        if (self.arena_capacity_bytes is not None
                and self.arena_capacity_bytes < 1):
            raise ConfigError("arena_capacity_bytes must be >= 1")
        if self.pool_slots is not None and self.pool_slots < 1:
            raise ConfigError("pool_slots must be >= 1")

    @property
    def any_enabled(self) -> bool:
        """Whether this config turns on any data-plane feature at all."""
        return self.arena or self.replica_pool


@dataclass(slots=True)
class TraceConfig:
    """Knobs for per-frame distributed tracing.

    Applied home-wide via :meth:`repro.core.videopipe.VideoPipe.enable_tracing`.
    Tracing is passive: the recorder never schedules kernel events and trace
    headers travel outside the charged message envelope, so a traced run is
    bit-for-bit identical to an untraced one (see ``docs/TRACING.md``).

    Attributes:
        max_spans: recorder capacity; spans past it are dropped (and
            counted in ``TraceRecorder.dropped_spans``) rather than growing
            memory without bound on long runs.
    """

    max_spans: int = 1_000_000

    def __post_init__(self) -> None:
        if self.max_spans < 1:
            raise ConfigError("max_spans must be >= 1")


@dataclass(slots=True)
class AuditConfig:
    """Knobs for the runtime invariant auditor.

    Applied home-wide via :meth:`repro.core.videopipe.VideoPipe.enable_audit`.
    Auditing is passive, like tracing: the auditor observes kernel events and
    mirrors component bookkeeping but never schedules events, consumes
    randomness or touches message sizes, so an audited run is bit-for-bit
    identical to an unaudited one (see ``docs/AUDIT.md``).

    Attributes:
        max_violations: recorder capacity; violations past it are counted
            (``InvariantAuditor.dropped_violations``) but not stored, so a
            hot failing invariant cannot grow memory without bound.
        strict: raise :class:`~repro.errors.AuditError` at the first
            violation instead of recording it (useful in tests that want a
            loud, immediate failure).
    """

    max_violations: int = 1000
    strict: bool = False

    def __post_init__(self) -> None:
        if self.max_violations < 1:
            raise ConfigError("max_violations must be >= 1")


@dataclass(slots=True)
class PipelineConfig:
    """A whole application: its module DAG plus the designated source.

    ``service_timeout_s`` caps every remote service call made by this
    pipeline's modules; ``None`` derives a per-target timeout from the
    link/compute budget (see
    :func:`repro.services.stubs.derive_service_timeout`).

    ``balancing`` selects the replica-selection policy for this pipeline's
    remote service stubs (see :mod:`repro.services.balancer`); ``None``
    keeps the home default (``fastest``).

    ``version`` labels the application revision as a whole; per-module
    versions live on each :class:`ModuleConfig` and move independently
    under hot upgrades (``docs/LIVEOPS.md``).
    """

    name: str
    modules: list[ModuleConfig] = field(default_factory=list)
    source: str | None = None
    service_timeout_s: float | None = None
    balancing: str | None = None
    version: str = "v1"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("pipeline needs a name")
        if not self.version:
            raise ConfigError("pipeline needs a non-empty version")
        if self.service_timeout_s is not None and self.service_timeout_s <= 0:
            raise ConfigError("service_timeout_s must be positive")
        if self.balancing is not None:
            from ..services.balancer import POLICIES

            if self.balancing not in POLICIES:
                raise ConfigError(
                    f"unknown balancing policy {self.balancing!r};"
                    f" known: {POLICIES}"
                )
        seen: set[str] = set()
        for module in self.modules:
            if module.name in seen:
                raise ConfigError(f"duplicate module name {module.name!r}")
            seen.add(module.name)

    def module(self, name: str) -> ModuleConfig:
        for module in self.modules:
            if module.name == name:
                return module
        raise ConfigError(f"pipeline {self.name!r} has no module {name!r}")

    def module_names(self) -> list[str]:
        return [m.name for m in self.modules]

    @property
    def source_module(self) -> str:
        """The source module name (explicit, or the first entry)."""
        if self.source is not None:
            return self.source
        if not self.modules:
            raise ConfigError(f"pipeline {self.name!r} has no modules")
        return self.modules[0].name

    def declared_services(self) -> list[str]:
        """Every service any module declares, deduplicated, sorted."""
        names = {service for m in self.modules for service in m.services}
        return sorted(names)

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-compatible)."""
        return {
            "name": self.name,
            "source": self.source,
            "service_timeout_s": self.service_timeout_s,
            "balancing": self.balancing,
            "version": self.version,
            "modules": [
                {
                    "name": m.name,
                    "include": m.include,
                    "services": list(m.services),
                    "endpoint": m.endpoint,
                    "next_modules": list(m.next_modules),
                    "device": m.device,
                    "params": dict(m.params),
                    "version": m.version,
                }
                for m in self.modules
            ],
        }


def config_from_dict(data: dict[str, Any]) -> PipelineConfig:
    """Build a :class:`PipelineConfig` from its plain-dict/JSON form."""
    if "name" not in data:
        raise ConfigError("pipeline dict needs a 'name'")
    modules = []
    for entry in data.get("modules", []):
        unknown = set(entry) - {
            "name", "include", "services", "service", "endpoint",
            "next_modules", "next_module", "device", "params", "version",
        }
        if unknown:
            raise ConfigError(f"unknown module config keys: {sorted(unknown)}")
        next_modules = entry.get("next_modules", entry.get("next_module", []))
        if isinstance(next_modules, str):
            next_modules = [next_modules]
        services = entry.get("services", entry.get("service", []))
        if isinstance(services, str):
            services = [services]
        modules.append(
            ModuleConfig(
                name=entry.get("name", ""),
                include=entry.get("include", ""),
                services=list(services),
                endpoint=entry.get("endpoint", "bind#tcp://*:0"),
                next_modules=list(next_modules),
                device=entry.get("device"),
                params=dict(entry.get("params", {})),
                version=entry.get("version", "v1"),
            )
        )
    return PipelineConfig(
        name=data["name"], modules=modules, source=data.get("source"),
        service_timeout_s=data.get("service_timeout_s"),
        balancing=data.get("balancing"),
        version=data.get("version", "v1"),
    )
