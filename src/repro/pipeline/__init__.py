"""Pipeline configuration, validation, placement and deployment."""

from .config import (
    AuditConfig,
    DataPlaneConfig,
    ModuleConfig,
    PerfConfig,
    PipelineConfig,
    TraceConfig,
    config_from_dict,
)
from .dag import (
    build_graph,
    longest_path,
    sink_modules,
    topological_order,
    validate,
)
from .deployer import Deployer
from .optimizer import (
    OPTIMIZED,
    CloudPricing,
    CostModel,
    OnlineOptimizer,
    OptimizedCost,
    OptimizerConfig,
    ReplanEvent,
    observed_module_seconds,
    plan_optimized,
)
from .parser import parse_pipeline_json, parse_pipeline_text
from .pipeline import Pipeline
from .placement import (
    COLOCATED,
    SINGLE_HOST,
    PlacementPlan,
    plan_colocated,
    plan_single_host,
)
from .scheduler import (
    COST_OPTIMIZED,
    PlacementCost,
    PlacementModel,
    plan_cost_optimized,
)

__all__ = [
    "AuditConfig",
    "COLOCATED",
    "COST_OPTIMIZED",
    "CloudPricing",
    "CostModel",
    "Deployer",
    "OPTIMIZED",
    "OnlineOptimizer",
    "OptimizedCost",
    "OptimizerConfig",
    "PlacementCost",
    "PlacementModel",
    "ReplanEvent",
    "observed_module_seconds",
    "plan_cost_optimized",
    "plan_optimized",
    "ModuleConfig",
    "Pipeline",
    "DataPlaneConfig",
    "PerfConfig",
    "PipelineConfig",
    "PlacementPlan",
    "SINGLE_HOST",
    "TraceConfig",
    "build_graph",
    "config_from_dict",
    "longest_path",
    "parse_pipeline_json",
    "parse_pipeline_text",
    "plan_colocated",
    "plan_single_host",
    "sink_modules",
    "topological_order",
    "validate",
]
