"""Module placement: where each module runs.

The paper's key deployment idea: "our modules are deployed in a way that
they are co-located with the corresponding services available on the
devices" (§5.1). :func:`plan_colocated` implements that policy;
:func:`plan_single_host` reproduces the EdgeEye-style baseline, where the
whole application sits on one device and every service call crosses the
network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..devices.device import Device
from ..errors import PlacementError
from ..services.registry import ServiceRegistry
from .config import PipelineConfig
from .dag import build_graph, topological_order

COLOCATED = "colocated"
SINGLE_HOST = "single-host"


@dataclass(slots=True)
class PlacementPlan:
    """A resolved module → device assignment."""

    pipeline: str
    strategy: str
    assignments: dict[str, str] = field(default_factory=dict)

    def device_of(self, module_name: str) -> str:
        try:
            return self.assignments[module_name]
        except KeyError:
            raise PlacementError(
                f"plan for {self.pipeline!r} does not place module"
                f" {module_name!r}"
            )

    def devices_used(self) -> list[str]:
        return sorted(set(self.assignments.values()))

    def describe(self) -> str:
        lines = [f"placement[{self.strategy}] for {self.pipeline}:"]
        for module, device in self.assignments.items():
            lines.append(f"  {module} -> {device}")
        return "\n".join(lines)


def _check_device(name: str, devices: dict[str, Device], context: str) -> None:
    if name not in devices:
        raise PlacementError(
            f"{context}: device {name!r} is not in the home"
            f" (known: {sorted(devices)})"
        )


def plan_colocated(
    config: PipelineConfig,
    devices: dict[str, Device],
    registry: ServiceRegistry,
    default_device: str,
) -> PlacementPlan:
    """VideoPipe placement: put each module next to the services it calls.

    Rules, applied per module in topological order:

    1. an explicit ``device`` pin wins (validated against the home);
    2. a module that declares services goes to a device hosting **all** of
       them — preferring its predecessor's device — or, failing that, to the
       device hosting its *first-listed* service (the heavy one by
       convention);
    3. a service-free module inherits its first predecessor's device;
    4. the source (no predecessor) defaults to *default_device*.
    """
    _check_device(default_device, devices, "default device")
    graph = build_graph(config)
    plan = PlacementPlan(pipeline=config.name, strategy=COLOCATED)

    for name in topological_order(config):
        module = config.module(name)
        predecessors = [
            plan.assignments[p] for p in graph.predecessors(name)
            if p in plan.assignments
        ]
        if module.device is not None:
            _check_device(module.device, devices, f"module {name!r} pin")
            plan.assignments[name] = module.device
            continue
        if module.services:
            plan.assignments[name] = _place_by_services(
                name, module.services, registry, predecessors
            )
            continue
        plan.assignments[name] = predecessors[0] if predecessors else default_device
    return plan


def _place_by_services(
    module_name: str,
    services: list[str],
    registry: ServiceRegistry,
    predecessors: list[str],
) -> str:
    for service in services:
        if service not in registry:
            raise PlacementError(
                f"module {module_name!r} needs service {service!r}, which is"
                " hosted nowhere in the home"
            )
    # devices hosting every declared service
    candidates = set(registry.devices_hosting(services[0]))
    for service in services[1:]:
        candidates &= set(registry.devices_hosting(service))
    if candidates:
        for pred_device in predecessors:
            if pred_device in candidates:
                return pred_device
        return sorted(candidates)[0]
    # no single device hosts them all: sit with the first-listed (primary)
    # service; the rest are called remotely
    return sorted(registry.devices_hosting(services[0]))[0]


def plan_single_host(
    config: PipelineConfig,
    devices: dict[str, Device],
    host_device: str,
) -> PlacementPlan:
    """Baseline placement (Fig. 5): every module on one device; services
    stay wherever they are hosted and are reached by remote API calls."""
    _check_device(host_device, devices, "baseline host")
    plan = PlacementPlan(pipeline=config.name, strategy=SINGLE_HOST)
    for module in config.modules:
        if module.device is not None and module.device != host_device:
            # respect explicit pins even in the baseline (e.g. a display
            # module that physically must run on the TV)
            _check_device(module.device, devices, f"module {module.name!r} pin")
            plan.assignments[module.name] = module.device
        else:
            plan.assignments[module.name] = host_device
    return plan
