"""Cost-model-driven placement — the §7 "scheduling" future work.

:func:`plan_colocated <repro.pipeline.placement.plan_colocated>` is a
heuristic: follow the services. This module instead *searches* placements
against an explicit latency model: per-frame critical-path time as the sum
of module dispatch overheads, service times (local or remote), and
inter-device transfer estimates from the topology. On the paper's testbed
the two agree; when services are replicated on devices of different speeds,
or heavy modules would pile onto one slow device, the search wins.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

import networkx as nx

from ..devices.device import Device
from ..errors import PlacementError
from ..net.topology import Topology
from ..runtime.module import Module
from ..services.registry import ServiceRegistry
from .config import ModuleConfig, PipelineConfig
from .dag import build_graph
from .placement import PlacementPlan, plan_colocated

#: Assumed payload size on pipeline edges (a quality-80 VGA JPEG); callers
#: can pass a per-edge function for tighter estimates.
DEFAULT_EDGE_BYTES = 42_000

#: Fixed remote-call overhead (marshal both sides + reply) beyond transfer.
REMOTE_CALL_OVERHEAD_S = 0.004

COST_OPTIMIZED = "cost-optimized"

EdgeBytesFn = Callable[[str, str], int]


@dataclass(frozen=True, slots=True)
class PlacementCost:
    """The model's verdict on one candidate placement."""

    critical_path_s: float
    transfer_s: float
    compute_s: float

    @property
    def total(self) -> float:
        return self.critical_path_s


class PlacementModel:
    """Estimates per-frame latency of a placement (no simulation)."""

    def __init__(
        self,
        config: PipelineConfig,
        devices: dict[str, Device],
        registry: ServiceRegistry,
        topology: Topology,
        edge_bytes: EdgeBytesFn | None = None,
    ) -> None:
        self.config = config
        self.devices = devices
        self.registry = registry
        self.topology = topology
        self.edge_bytes = edge_bytes or (lambda a, b: DEFAULT_EDGE_BYTES)
        self.graph = build_graph(config)

    # -- node/edge costs ----------------------------------------------------
    def module_cost(self, module: ModuleConfig, device_name: str) -> float:
        """Dispatch overhead + service time for one event on *device_name*."""
        device = self.devices[device_name]
        cost = device.spec.compute_time(Module.event_overhead_s)
        for service_name in module.services:
            cost += self._service_cost(service_name, device_name)
        return cost

    def _service_cost(self, service_name: str, caller_device: str) -> float:
        local = self.registry.host_on(service_name, caller_device)
        if local is not None:
            host = local
            remote_penalty = 0.0
        else:
            # cheapest remote host by service time + round trip
            best = None
            for host_candidate in self.registry.hosts_of(service_name):
                penalty = (
                    REMOTE_CALL_OVERHEAD_S
                    + self.topology.expected_delay(
                        caller_device, host_candidate.device.name,
                        self.edge_bytes(caller_device, host_candidate.device.name),
                    )
                    + self.topology.expected_delay(
                        host_candidate.device.name, caller_device, 512
                    )
                )
                service_time = host_candidate.device.spec.compute_time(
                    host_candidate.service.reference_cost_s
                )
                total = penalty + service_time
                if best is None or total < best[0]:
                    best = (total, host_candidate, penalty)
            if best is None:
                raise PlacementError(
                    f"service {service_name!r} is hosted nowhere"
                )
            return best[0]
        service_time = host.device.spec.compute_time(
            host.service.reference_cost_s
        )
        return service_time + remote_penalty

    def transfer_cost(self, src_device: str, dst_device: str) -> float:
        if src_device == dst_device:
            return 0.0001  # loopback hand-off
        return self.topology.expected_delay(
            src_device, dst_device, self.edge_bytes(src_device, dst_device)
        )

    # -- whole-placement evaluation ---------------------------------------------
    def evaluate(self, assignments: dict[str, str]) -> PlacementCost:
        """Critical-path latency of the DAG under *assignments*."""
        node_cost = {
            name: self.module_cost(self.config.module(name), assignments[name])
            for name in self.graph.nodes
        }
        # longest path over node+edge weights via DP in topological order
        best: dict[str, float] = {}
        transfer_total = 0.0
        for name in nx.topological_sort(self.graph):
            incoming = [
                best[p] + self.transfer_cost(assignments[p], assignments[name])
                for p in self.graph.predecessors(name)
            ]
            best[name] = node_cost[name] + (max(incoming) if incoming else 0.0)
        for a, b in self.graph.edges:
            transfer_total += self.transfer_cost(assignments[a], assignments[b])
        return PlacementCost(
            critical_path_s=max(best.values()),
            transfer_s=transfer_total,
            compute_s=sum(node_cost.values()),
        )


def plan_cost_optimized(
    config: PipelineConfig,
    devices: dict[str, Device],
    registry: ServiceRegistry,
    topology: Topology,
    default_device: str,
    edge_bytes: EdgeBytesFn | None = None,
    max_combinations: int = 50_000,
) -> PlacementPlan:
    """Search device assignments for the minimum critical-path latency.

    Pinned modules stay pinned; every other module ranges over all devices.
    When the search space exceeds *max_combinations* the heuristic
    co-located plan is refined instead of searched exhaustively.
    """
    if default_device not in devices:
        raise PlacementError(f"default device {default_device!r} not in the home")
    model = PlacementModel(config, devices, registry, topology, edge_bytes)

    fixed: dict[str, str] = {}
    free: list[str] = []
    for module in config.modules:
        if module.device is not None:
            if module.device not in devices:
                raise PlacementError(
                    f"module {module.name!r} pinned to unknown device"
                    f" {module.device!r}"
                )
            fixed[module.name] = module.device
        else:
            free.append(module.name)

    device_names = sorted(devices)
    combos = len(device_names) ** len(free)
    fallback = plan_colocated(config, devices, registry, default_device)
    if combos > max_combinations:
        # too large to search: score the heuristic and a few local moves
        return _refine(model, fallback, device_names)

    best_assignment: dict[str, str] | None = None
    best_cost = float("inf")
    for choice in itertools.product(device_names, repeat=len(free)):
        assignments = dict(fixed)
        assignments.update(zip(free, choice))
        cost = model.evaluate(assignments).total
        if cost < best_cost:
            best_cost = cost
            best_assignment = assignments
    assert best_assignment is not None
    plan = PlacementPlan(pipeline=config.name, strategy=COST_OPTIMIZED,
                         assignments=best_assignment)
    # never return something worse than the heuristic
    if model.evaluate(fallback.assignments).total < best_cost:
        return fallback
    return plan


def _refine(
    model: PlacementModel, start: PlacementPlan, device_names: list[str]
) -> PlacementPlan:
    """Greedy local search: move one module at a time while it helps."""
    assignments = dict(start.assignments)
    current = model.evaluate(assignments).total
    improved = True
    while improved:
        improved = False
        for name in assignments:
            if model.config.module(name).device is not None:
                continue  # pinned
            original = assignments[name]
            for candidate in device_names:
                if candidate == original:
                    continue
                assignments[name] = candidate
                cost = model.evaluate(assignments).total
                if cost < current - 1e-9:
                    current = cost
                    improved = True
                    original = candidate
                else:
                    assignments[name] = original
    return PlacementPlan(pipeline=start.pipeline, strategy=COST_OPTIMIZED,
                         assignments=assignments)
