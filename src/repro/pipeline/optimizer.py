"""Capacity-aware placement optimization and online re-placement.

:mod:`repro.pipeline.scheduler` searches placements against a pure latency
model. That is the right objective for one pipeline in an idle home, but it
is blind to two things that dominate at fleet scale: device *capacity*
(piling every module of a 30 fps pipeline onto the one fast desktop melts
it) and *drift* (the placement that was optimal at deploy time stops being
optimal when a device slows down, crashes, or picks up a second pipeline).

This module adds both:

* :class:`CostModel` extends the scheduler's latency model with a
  utilization term (offered load per device, normalized by cores) and a
  memory-footprint term, and can be *calibrated* with observed per-module
  latencies so the model tracks the running system rather than its specs.
* :func:`plan_optimized` searches assignments against that richer score —
  exhaustively when the space is small, with seeded random-restart local
  search otherwise — and degrades gracefully to the co-located heuristic:
  when the search finds nothing strictly better, the
  :func:`~repro.pipeline.placement.plan_colocated` plan is returned as-is.
* :class:`OnlineOptimizer` closes the loop: it periodically re-plans every
  watched pipeline from live ``MetricsCollector``/trace critical-path data
  and feeds the winning moves into :meth:`Deployer.migrate
  <repro.pipeline.deployer.Deployer.migrate>`.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..devices.device import Device
from ..errors import ConfigError, Interrupt, PlacementError
from ..net.topology import Topology
from ..runtime.module import Module
from ..services.registry import ServiceRegistry
from ..services.stubs import API_MARSHAL_S
from .config import PipelineConfig
from .placement import (
    PlacementPlan,
    _check_device,
    plan_colocated,
    plan_single_host,
)
from .scheduler import PlacementCost, PlacementModel

if TYPE_CHECKING:  # pragma: no cover
    from ..core.videopipe import VideoPipe
    from .pipeline import Pipeline

OPTIMIZED = "optimized"

#: Clamp on the observed/modeled calibration ratio: a wildly off sample
#: (e.g. one frame measured during a network blip) must not swing the
#: model by more than this factor in either direction.
_CALIBRATION_CLAMP = 4.0


@dataclass(frozen=True, slots=True)
class OptimizerConfig:
    """Knobs for the cost model, the search, and online re-placement.

    Attributes:
        edge_bytes: assumed payload size on pipeline edges (a quality-80
            VGA JPEG by default, matching the scheduler's estimate).
        fps: offered load per pipeline, used to convert per-event compute
            seconds into device utilization.
        capacity_weight_s: latency-equivalent penalty (seconds) per unit of
            device over-utilization; 0 disables the capacity term.
        memory_weight_s: latency-equivalent penalty (seconds) per unit of
            module-footprint overflow past half a device's RAM.
        module_footprint_mb: assumed resident footprint of one deployed
            module (runtime + model weights).
        max_candidates: exhaustive-search budget; larger spaces fall back
            to seeded random-restart local search.
        restarts: random restarts for the local search.
        seed: seed for the restart RNG (search is deterministic under it).
        replan_interval_s: how often the online optimizer reconsiders each
            watched pipeline.
        replan_threshold_frac: minimum predicted fractional latency
            improvement before the online optimizer migrates anything —
            the hysteresis that keeps it from chasing noise.
        cloud_bias_s: latency-equivalent penalty charged per service call
            that a candidate placement sends to a cloud-tier device (one
            attached via :meth:`Topology.add_cloud
            <repro.net.topology.Topology.add_cloud>`). The WAN's latency
            and bandwidth are already priced through the topology; this
            knob expresses the *billing* preference — the dollars a cloud
            call costs that a home call does not — so ablations can steer
            the search toward or away from the shared tier. 0 (default)
            prices cloud purely on latency.
    """

    edge_bytes: int = 42_000
    fps: float = 10.0
    capacity_weight_s: float = 1.0
    memory_weight_s: float = 0.5
    module_footprint_mb: int = 64
    max_candidates: int = 20_000
    restarts: int = 3
    seed: int = 0
    replan_interval_s: float = 2.0
    replan_threshold_frac: float = 0.05
    cloud_bias_s: float = 0.0

    def __post_init__(self) -> None:
        if self.edge_bytes < 0:
            raise ConfigError("edge_bytes must be >= 0")
        if self.cloud_bias_s < 0:
            raise ConfigError("cloud_bias_s must be >= 0")
        if self.fps <= 0:
            raise ConfigError("fps must be positive")
        if self.capacity_weight_s < 0 or self.memory_weight_s < 0:
            raise ConfigError("penalty weights must be >= 0")
        if self.module_footprint_mb < 0:
            raise ConfigError("module_footprint_mb must be >= 0")
        if self.max_candidates < 1:
            raise ConfigError("max_candidates must be >= 1")
        if self.restarts < 0:
            raise ConfigError("restarts must be >= 0")
        if self.replan_interval_s <= 0:
            raise ConfigError("replan_interval_s must be positive")
        if not 0 <= self.replan_threshold_frac < 1:
            raise ConfigError("replan_threshold_frac must be in [0, 1)")


@dataclass(frozen=True, slots=True)
class OptimizedCost:
    """One candidate's score: modeled latency plus capacity/memory penalties
    (and, when ``cloud_bias_s`` is set, a billing penalty per cloud call)."""

    latency: PlacementCost
    capacity_penalty_s: float
    memory_penalty_s: float
    cloud_penalty_s: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.latency.critical_path_s
            + self.capacity_penalty_s
            + self.memory_penalty_s
            + self.cloud_penalty_s
        )


@dataclass(frozen=True, slots=True)
class CloudPricing:
    """Dollar rates for the fleet's per-home cost accounting.

    The latency cost model decides *where* work runs; this prices what the
    chosen split costs, Llama-style ($ per query → $ per home). All rates
    are hourly so :meth:`home_hourly_cost` reads as a monthly-bill-shaped
    number regardless of how short the simulated window was.

    Attributes:
        edge_device_per_hour: amortized hardware + power cost of keeping
            one home device on ($/device-hour).
        cloud_cpu_per_hour: price of one busy cloud CPU ($/core-hour of
            actual compute, i.e. serverless-style billing).
        egress_per_gb: WAN transfer price per gigabyte crossing the metered
            uplink (either direction).
    """

    edge_device_per_hour: float = 0.004
    cloud_cpu_per_hour: float = 0.15
    egress_per_gb: float = 0.08

    def __post_init__(self) -> None:
        if (self.edge_device_per_hour < 0 or self.cloud_cpu_per_hour < 0
                or self.egress_per_gb < 0):
            raise ConfigError("pricing rates must be >= 0")

    def home_hourly_cost(
        self,
        edge_devices: int,
        cloud_compute_s: float,
        egress_bytes: int,
        window_s: float,
    ) -> float:
        """One home's $/hour at the rates observed over *window_s* seconds:
        edge amortization plus cloud CPU and egress extrapolated from the
        window to an hour."""
        if window_s <= 0:
            raise ConfigError("window_s must be positive")
        hourly_scale = 3600.0 / window_s
        cloud_cpu_hours = cloud_compute_s * hourly_scale / 3600.0
        egress_gb_per_hour = egress_bytes * hourly_scale / 1e9
        return (
            self.edge_device_per_hour * edge_devices
            + self.cloud_cpu_per_hour * cloud_cpu_hours
            + self.egress_per_gb * egress_gb_per_hour
        )


class CostModel(PlacementModel):
    """The scheduler's latency model plus capacity, memory and calibration.

    ``observed_module_s`` maps a module name to ``(observed_seconds,
    device_measured_on)``; the model scales its per-module prediction by the
    observed/modeled ratio on the measured device (clamped to 4x either
    way), so a module that runs hotter than its spec suggests is charged
    accordingly on *every* candidate device.
    """

    def __init__(
        self,
        config: PipelineConfig,
        devices: dict[str, Device],
        registry: ServiceRegistry,
        topology: Topology,
        optimizer: OptimizerConfig | None = None,
        observed_module_s: dict[str, tuple[float, str]] | None = None,
    ) -> None:
        self.optimizer = optimizer or OptimizerConfig()
        super().__init__(
            config, devices, registry, topology,
            edge_bytes=lambda a, b: self.optimizer.edge_bytes,
        )
        self.observed_module_s = dict(observed_module_s or {})
        self._calibration: dict[str, float] = {}
        self._module_cost_cache: dict[tuple[str, str], float] = {}
        self._transfer_cache: dict[tuple[str, str], float] = {}

    # -- calibrated node/edge costs ------------------------------------------
    def module_cost(self, module, device_name: str) -> float:
        key = (module.name, device_name)
        cached = self._module_cost_cache.get(key)
        if cached is None:
            cached = (
                PlacementModel.module_cost(self, module, device_name)
                * self.calibration(module.name)
            )
            self._module_cost_cache[key] = cached
        return cached

    def transfer_cost(self, src_device: str, dst_device: str) -> float:
        key = (src_device, dst_device)
        cached = self._transfer_cache.get(key)
        if cached is None:
            cached = PlacementModel.transfer_cost(self, src_device, dst_device)
            self._transfer_cache[key] = cached
        return cached

    def calibration(self, module_name: str) -> float:
        """Observed/modeled cost ratio for one module (1.0 when unobserved)."""
        factor = self._calibration.get(module_name)
        if factor is not None:
            return factor
        entry = self.observed_module_s.get(module_name)
        factor = 1.0
        if entry is not None:
            observed_s, measured_device = entry
            if measured_device in self.devices:
                modeled = PlacementModel.module_cost(
                    self, self.config.module(module_name), measured_device
                )
                if modeled > 0 and observed_s > 0:
                    factor = min(
                        _CALIBRATION_CLAMP,
                        max(1.0 / _CALIBRATION_CLAMP, observed_s / modeled),
                    )
        self._calibration[module_name] = factor
        return factor

    # -- capacity and memory --------------------------------------------------
    def utilization(self, assignments: dict[str, str]) -> dict[str, float]:
        """Offered busy-seconds per second per device, normalized by cores.

        Each module charges its dispatch overhead (and the marshal cost of
        any remote service call) to its hosting device at ``fps`` events
        per second; each service call charges the service's compute time to
        the device that actually executes it.
        """
        load: dict[str, float] = {name: 0.0 for name in self.devices}
        fps = self.optimizer.fps
        for module_name, device_name in assignments.items():
            module = self.config.module(module_name)
            device = self.devices[device_name]
            load[device_name] += fps * device.spec.compute_time(
                Module.event_overhead_s
            )
            for service_name in module.services:
                host = self.registry.host_on(service_name, device_name)
                if host is None:
                    host = self._best_remote_host(service_name, device_name)
                    # request + reply marshaling burns the caller's CPU
                    load[device_name] += fps * device.spec.compute_time(
                        2 * API_MARSHAL_S
                    )
                exec_device = host.device
                load[exec_device.name] = load.get(exec_device.name, 0.0) + (
                    fps * exec_device.spec.compute_time(
                        host.service.reference_cost_s
                    )
                )
        cores = {
            name: self.devices[name].spec.cores if name in self.devices else 1
            for name in load
        }
        return {
            name: seconds / max(1, cores[name])
            for name, seconds in load.items()
        }

    def _best_remote_host(self, service_name: str, caller_device: str):
        """The remote host :meth:`_service_cost` would pick (cheapest by
        service time + round trip)."""
        best = None
        for host in self.registry.hosts_of(service_name):
            penalty = self.topology.expected_delay(
                caller_device, host.device.name,
                self.edge_bytes(caller_device, host.device.name),
            )
            service_time = host.device.spec.compute_time(
                host.service.reference_cost_s
            )
            total = penalty + service_time
            if best is None or total < best[0]:
                best = (total, host)
        if best is None:
            raise PlacementError(f"service {service_name!r} is hosted nowhere")
        return best[1]

    def pool_contention_s(self, assignments: dict[str, str]) -> float:
        """Live latency-equivalent seconds of shared-pool queueing this
        candidate would feel: for every service call that lands on a pooled
        host, the device pool's backlog-per-slot scaled by that call's
        compute time. Fixed-replica hosts contribute nothing — their queues
        are already modeled by the capacity term; a pooled device's real
        wait is set by *everyone* queued on its shared slots."""
        total = 0.0
        for module_name, device_name in assignments.items():
            module = self.config.module(module_name)
            for service_name in module.services:
                host = self.registry.host_on(service_name, device_name)
                if host is None:
                    host = self._best_remote_host(service_name, device_name)
                pool = host.pool
                if pool is None:
                    continue
                total += pool.contention() * host.device.spec.compute_time(
                    host.service.reference_cost_s
                )
        return total

    def capacity_penalty(self, assignments: dict[str, str]) -> float:
        overload = sum(
            max(0.0, u - 1.0) for u in self.utilization(assignments).values()
        )
        return (
            self.optimizer.capacity_weight_s * overload
            + self.pool_contention_s(assignments)
        )

    def memory_penalty(self, assignments: dict[str, str]) -> float:
        counts: dict[str, int] = {}
        for device_name in assignments.values():
            counts[device_name] = counts.get(device_name, 0) + 1
        penalty = 0.0
        for device_name, count in counts.items():
            spec = self.devices[device_name].spec
            footprint = count * self.optimizer.module_footprint_mb
            budget = max(1.0, spec.memory_mb * 0.5)
            if footprint > budget:
                penalty += (
                    self.optimizer.memory_weight_s
                    * (footprint - budget) / budget
                )
        return penalty

    def cloud_penalty(self, assignments: dict[str, str]) -> float:
        """Billing penalty: ``cloud_bias_s`` latency-equivalent seconds per
        service call this candidate routes to a cloud-tier device (the
        host a co-located or cheapest-remote resolution would pick). The
        WAN's *latency* is already in the transfer/service terms; this is
        the dollar preference only."""
        bias = self.optimizer.cloud_bias_s
        if bias == 0.0:
            return 0.0
        total = 0.0
        for module_name, device_name in assignments.items():
            module = self.config.module(module_name)
            for service_name in module.services:
                host = self.registry.host_on(service_name, device_name)
                if host is None:
                    host = self._best_remote_host(service_name, device_name)
                if self.topology.is_cloud(host.device.name):
                    total += bias
        return total

    def score(self, assignments: dict[str, str]) -> OptimizedCost:
        """Full verdict on one candidate placement."""
        return OptimizedCost(
            latency=self.evaluate(assignments),
            capacity_penalty_s=self.capacity_penalty(assignments),
            memory_penalty_s=self.memory_penalty(assignments),
            cloud_penalty_s=self.cloud_penalty(assignments),
        )


def plan_optimized(
    config: PipelineConfig,
    devices: dict[str, Device],
    registry: ServiceRegistry,
    topology: Topology,
    default_device: str,
    optimizer: OptimizerConfig | None = None,
    observed_module_s: dict[str, tuple[float, str]] | None = None,
) -> PlacementPlan:
    """Search device assignments against the capacity-aware cost model.

    Pinned modules stay pinned. Small spaces are searched exhaustively
    (``optimizer.max_candidates`` combinations); larger ones run greedy
    local search from the co-located plan, the single-host plan, and
    ``optimizer.restarts`` seeded random starts. When nothing beats the
    co-located heuristic strictly, that plan is returned unchanged
    (``strategy == "colocated"``) — on the paper's testbed the two agree,
    and callers can treat the strategy tag as a provenance marker.

    Raises :class:`~repro.errors.PlacementError` for an unknown default
    device, a module pinned to an unknown device, or a declared service
    hosted nowhere in the home.
    """
    opt = optimizer or OptimizerConfig()
    _check_device(default_device, devices, "default device")
    for module in config.modules:
        if module.device is not None:
            _check_device(module.device, devices, f"module {module.name!r} pin")
        for service_name in module.services:
            if service_name not in registry:
                raise PlacementError(
                    f"module {module.name!r} needs service {service_name!r},"
                    " which is hosted nowhere in the home"
                )
    model = CostModel(
        config, devices, registry, topology,
        optimizer=opt, observed_module_s=observed_module_s,
    )
    fixed = {m.name: m.device for m in config.modules if m.device is not None}
    free = [m.name for m in config.modules if m.device is None]
    device_names = sorted(devices)

    fallback = plan_colocated(config, devices, registry, default_device)
    fallback_total = model.score(fallback.assignments).total
    best_assignment = dict(fallback.assignments)
    best_total = fallback_total

    if free and len(device_names) ** len(free) <= opt.max_candidates:
        for choice in itertools.product(device_names, repeat=len(free)):
            assignments = dict(fixed)
            assignments.update(zip(free, choice))
            total = model.score(assignments).total
            if total < best_total - 1e-9:
                best_total = total
                best_assignment = assignments
    elif free:
        rng = random.Random(opt.seed)
        starts = [
            dict(fallback.assignments),
            dict(plan_single_host(config, devices, default_device).assignments),
        ]
        for _ in range(opt.restarts):
            start = dict(fixed)
            start.update({name: rng.choice(device_names) for name in free})
            starts.append(start)
        for start in starts:
            assignments, total = _local_search(model, start, free, device_names)
            if total < best_total - 1e-9:
                best_total = total
                best_assignment = assignments

    if best_total < fallback_total - 1e-9:
        return PlacementPlan(
            pipeline=config.name, strategy=OPTIMIZED,
            assignments=best_assignment,
        )
    return fallback


def _local_search(
    model: CostModel,
    start: dict[str, str],
    free: list[str],
    device_names: list[str],
) -> tuple[dict[str, str], float]:
    """Greedy first-improvement: move one free module at a time while it
    strictly lowers the score."""
    assignments = dict(start)
    current = model.score(assignments).total
    improved = True
    while improved:
        improved = False
        for name in free:
            original = assignments[name]
            for candidate in device_names:
                if candidate == original:
                    continue
                assignments[name] = candidate
                total = model.score(assignments).total
                if total < current - 1e-9:
                    current = total
                    original = candidate
                    improved = True
                else:
                    assignments[name] = original
    return assignments, current


# -- online re-placement -------------------------------------------------------

def observed_module_seconds(
    pipeline: "Pipeline", tracer=None, window: int = 50
) -> dict[str, float]:
    """Live per-module handler seconds for calibration.

    With a tracer, the mean of the last *window* ``module.<name>`` compute
    spans for this pipeline (the same spans critical-path analysis walks);
    otherwise, :meth:`MetricsCollector.recent_stage_mean
    <repro.metrics.collector.MetricsCollector.recent_stage_mean>` for any
    stage that shares a module's name.
    """
    observed: dict[str, float] = {}
    module_names = set(pipeline.config.module_names())
    if tracer is not None:
        prefix = f"{pipeline.config.name}/"
        samples: dict[str, list[float]] = {}
        for span in tracer.spans:
            if not span.trace_id.startswith(prefix):
                continue
            if not span.name.startswith("module."):
                continue
            name = span.name.removeprefix("module.")
            if name in module_names:
                samples.setdefault(name, []).append(span.duration)
        for name, values in samples.items():
            tail = values[-window:]
            observed[name] = sum(tail) / len(tail)
        return observed
    for name in module_names:
        mean = pipeline.metrics.recent_stage_mean(name, window)
        if mean is not None:
            observed[name] = mean
    return observed


@dataclass(slots=True)
class ReplanEvent:
    """Record of one online re-placement decision that migrated modules."""

    at: float
    pipeline: str
    #: module -> (from_device, to_device)
    moves: dict[str, tuple[str, str]] = field(default_factory=dict)
    predicted_before_s: float = 0.0
    predicted_after_s: float = 0.0
    observed_mean_s: float = 0.0


class OnlineOptimizer:
    """Periodically re-places watched pipelines from live measurements.

    Every ``replan_interval_s`` it rebuilds a :class:`CostModel` restricted
    to *up* devices, calibrated with observed per-module latencies (trace
    spans when tracing is on, metrics stages otherwise), asks
    :func:`plan_optimized` for a target placement, and — when the predicted
    improvement clears ``replan_threshold_frac``, or the current placement
    is stranded on a down device — applies the difference through
    :meth:`Deployer.migrate <repro.pipeline.deployer.Deployer.migrate>`.
    """

    def __init__(self, home: "VideoPipe", config: OptimizerConfig | None = None) -> None:
        self.home = home
        self.config = config or OptimizerConfig()
        self.events: list[ReplanEvent] = []
        self._pipelines: dict[str, "Pipeline"] = {}
        self._running = False
        self._proc = None

    def watch(self, pipeline: "Pipeline") -> None:
        """Add a pipeline to the replan loop (idempotent)."""
        self._pipelines.setdefault(pipeline.config.name, pipeline)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._proc = self.home.kernel.process(self._loop(), name="optimizer")

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        if self._proc is not None and self._proc.alive:
            self._proc.interrupt("optimizer stopped")
        self._proc = None

    def _loop(self):
        try:
            while self._running:
                yield self.config.replan_interval_s
                for pipeline in list(self._pipelines.values()):
                    self._consider(pipeline)
        except Interrupt:
            return

    def replan_now(self, pipeline: "Pipeline") -> ReplanEvent | None:
        """Reconsider one pipeline immediately, outside the periodic loop.

        The SLO controller's placement rung calls this when a pipeline is
        overloaded — same calibrated model, same migration threshold as a
        scheduled tick. Returns the :class:`ReplanEvent` when modules
        actually moved, ``None`` when the current placement stands."""
        before = len(self.events)
        self._consider(pipeline)
        if len(self.events) > before:
            return self.events[-1]
        return None

    def _consider(self, pipeline: "Pipeline") -> None:
        home = self.home
        live = {name: dev for name, dev in home.devices.items() if dev.up}
        if not live or home.deployer is None:
            return
        current = pipeline.placement.assignments
        observed: dict[str, tuple[float, str]] = {}
        for name, seconds in observed_module_seconds(
            pipeline, home.tracer
        ).items():
            device = current.get(name)
            if device is not None:
                observed[name] = (seconds, device)
        source_device = current.get(pipeline.config.source_module)
        default = source_device if source_device in live else sorted(live)[0]
        try:
            target = plan_optimized(
                pipeline.config, live, home.registry, home.topology, default,
                optimizer=self.config, observed_module_s=observed or None,
            )
        except PlacementError:
            return  # e.g. a pin or every host of a service is down right now
        moves = {
            name: (current[name], device)
            for name, device in target.assignments.items()
            if current.get(name) != device
            and pipeline.config.module(name).device is None
        }
        if not moves:
            return
        model = CostModel(
            pipeline.config, live, home.registry, home.topology,
            optimizer=self.config, observed_module_s=observed or None,
        )
        stranded = any(device not in live for device in current.values())
        before = float("inf") if stranded else model.score(current).total
        after = model.score(target.assignments).total
        if not stranded:
            if before <= 0:
                return
            if (before - after) / before < self.config.replan_threshold_frac:
                return
        for name in sorted(moves):
            home.deployer.migrate(pipeline, name, moves[name][1])
        pipeline.metrics.increment("replans")
        self.events.append(ReplanEvent(
            at=home.now,
            pipeline=pipeline.config.name,
            moves=moves,
            predicted_before_s=before,
            predicted_after_s=after,
            observed_mean_s=self._observed_mean_s(pipeline),
        ))

    def _observed_mean_s(self, pipeline: "Pipeline") -> float:
        if self.home.tracer is not None:
            from ..trace.critical_path import critical_path

            report = critical_path(
                self.home.tracer, pipeline=pipeline.config.name
            )
            if report.frame_count:
                return report.mean_total_ms() / 1e3
        return pipeline.metrics.total_latency_summary().mean
