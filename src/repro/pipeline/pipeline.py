"""The handle to one running pipeline."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import DeploymentError
from ..metrics.collector import MetricsCollector
from ..runtime.wiring import PipelineWiring
from .config import PipelineConfig
from .placement import PlacementPlan

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.moduleruntime import DeployedModule


class Pipeline:
    """A deployed, running pipeline: inspect it, read metrics, stop it."""

    def __init__(
        self,
        config: PipelineConfig,
        placement: PlacementPlan,
        wiring: PipelineWiring,
        deployed: dict[str, "DeployedModule"],
        prefer_local_services: bool = True,
    ) -> None:
        self.config = config
        self.placement = placement
        self.wiring = wiring
        self._deployed = deployed
        self.stopped = False
        #: The deploy-time service-stub policy. Migrations and upgrades
        #: rebuild stubs with this same policy — a ``False`` (pure
        #: service-oriented) pipeline must not silently flip to
        #: local-preferred stubs when a module moves.
        self.prefer_local_services = prefer_local_services

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def metrics(self) -> MetricsCollector:
        return self.wiring.metrics

    def module(self, name: str) -> "DeployedModule":
        try:
            return self._deployed[name]
        except KeyError:
            raise DeploymentError(f"pipeline {self.name!r} has no module {name!r}")

    def module_names(self) -> list[str]:
        return sorted(self._deployed)

    def module_instance(self, name: str):
        """The underlying :class:`~repro.runtime.module.Module` object."""
        return self.module(name).module

    def device_of(self, module_name: str) -> str:
        return self.placement.device_of(module_name)

    def stop(self) -> None:
        """Undeploy every module (idempotent). Modules with a ``shutdown``
        method get it called first (e.g. to stop video sources)."""
        if self.stopped:
            return
        self.stopped = True
        for name, deployed in self._deployed.items():
            shutdown = getattr(deployed.module, "shutdown", None)
            if callable(shutdown):
                shutdown(deployed.ctx)
            deployed.runtime.undeploy(name)

    def describe(self) -> dict:
        """A structured summary (modules, devices, edges, counters)."""
        return {
            "pipeline": self.name,
            "strategy": self.placement.strategy,
            "modules": {
                name: {
                    "device": self.placement.device_of(name),
                    "address": str(self.wiring.address_of(name)),
                    "next": self.wiring.downstream_of(name),
                    "events": self._deployed[name].events_processed,
                    "version": self.wiring.version_of(name),
                }
                for name in sorted(self._deployed)
            },
            "counters": self.metrics.counters(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "stopped" if self.stopped else "running"
        return f"<Pipeline {self.name} ({self.placement.strategy}, {state})>"
