"""Runtime invariant auditing and the determinism harness.

``repro.audit`` holds the opt-in correctness layer: the
:class:`InvariantAuditor` (conservation laws over frames, messages and
metrics, plus kernel hygiene) and the determinism harness (record a
scenario's full kernel event stream twice under one seed and diff them).
Both are passive kernel observers — enabling them changes no event
timing, no RNG draw, and no message payload, so an audited run is
bit-for-bit identical to an unaudited one.

Enable auditing through the facade::

    home = VideoPipe.paper_testbed(seed=7)
    home.enable_audit()          # or REPRO_AUDIT=1 in the environment
    ...
    violations = home.check_invariants()

Note: :mod:`repro.audit.scenarios` (the examples-as-scenarios catalogue)
is deliberately *not* imported here — it imports :mod:`repro.apps`, which
would make ``repro`` import itself. Import it explicitly where needed.
"""

from .auditor import InvariantAuditor, Violation, live_auditors
from .determinism import (
    DeterminismReport,
    Divergence,
    EventTap,
    RunRecord,
    check_determinism,
    first_divergence,
    record_scenario,
)

__all__ = [
    "DeterminismReport",
    "Divergence",
    "EventTap",
    "InvariantAuditor",
    "RunRecord",
    "Violation",
    "check_determinism",
    "first_divergence",
    "live_auditors",
    "record_scenario",
]
