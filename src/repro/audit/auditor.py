"""The runtime invariant auditor: conservation laws, checked while you run.

VideoPipe's core claims — no queues anywhere, frame dropping only at the
source, frames passed by reference id within a device (§3) — reduce to a
small set of conservation laws and ordering invariants. The auditor checks
them continuously and at quiesce, in the deterministic-simulation-testing
tradition (FoundationDB-style): because the whole home runs on one
deterministic kernel, every violation is exactly reproducible under the
same seed.

Invariants covered (see ``docs/AUDIT.md`` for the full statement of each):

* **frame-ref conservation** per :class:`~repro.frames.framestore.FrameStore`
  — every ``put`` is matched by releases, refcounts never go negative, and
  at end-of-run ``live_count == 0`` with per-holder attribution;
* **arena handle conservation** per :class:`~repro.frames.arena.FrameArena`
  — alloc/free/bytes counters agree with the auditor's independent mirror,
  stale handle dereferences are flagged with their retire reason, and at
  quiesce every live slot backs a stored frame (no orphaned pixel memory);
* **message conservation** per :class:`~repro.net.transport.Transport` —
  ``sent == delivered + failed + in-flight`` at all times, with the
  auditor's own in-flight mirror cross-checked against the transport's;
* **sim-kernel hygiene** — clock monotonicity, no event scheduled in the
  past;
* **metrics conservation** per :class:`~repro.metrics.collector
  .MetricsCollector` — frames admitted == completed + dropped + in-flight,
  and the collector's in-flight table agrees with the auditor's mirror;
* **autoscaler pacing** — consecutive scaling decisions for one host are
  separated by the policy cooldown and stay inside
  ``[min_replicas, max_replicas]`` (the pre-fix overlapping-window bug
  bursts replicas and trips this immediately);
* **SLO ladder monotonicity** per :class:`~repro.slo.controller
  .SLOController` — every action moves the ladder depth by exactly one,
  consecutive actions on one pipeline respect the hysteresis spacing (no
  flapping), and restores pop the most recently applied rung (recovery in
  exactly reverse order);
* **admission conservation** — ``deploys_requested == deploys_deployed +
  deploys_rejected + deploys_withdrawn + queued-now``: no deploy request
  vanishes between admission control and the deployer;
* **live-ops version swaps** per :class:`~repro.liveops.upgrade
  .LiveOpsManager` — every hot upgrade started is either still mirroring,
  promoted, or rolled back (none vanish), a finished upgrade leaves
  exactly one version of the module deployed under the right version
  label, and every frame the mirror tap copied was admitted on the shadow
  collector.

Auditing is *passive*: the auditor never schedules kernel events, never
consumes randomness, and never touches message sizes, so an audited run is
bit-for-bit identical to an unaudited one — the same guarantee tracing
makes, and the property ``tests/integration/test_audit.py`` asserts.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..errors import AuditError
from ..pipeline.config import AuditConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..frames.arena import ArenaHandle, FrameArena
    from ..frames.framestore import FrameStore
    from ..metrics.collector import MetricsCollector
    from ..net.rpc import RpcClient
    from ..net.transport import Transport
    from ..services.scaling import AutoScaler, ScalingEvent
    from ..sim.events import Event
    from ..sim.kernel import Kernel
    from ..slo.controller import SLOController
    from ..slo.ladder import LadderAction
    from ..slo.spec import AdmissionDecision

#: Tolerance for float time comparisons (kernel times are exact sums of
#: exact delays, but cooldown arithmetic subtracts them).
_EPS = 1e-9

#: Every live auditor, so test harnesses (the ``REPRO_AUDIT`` pytest gate)
#: can sweep for violations without threading references around.
_LIVE_AUDITORS: "weakref.WeakSet[InvariantAuditor]" = weakref.WeakSet()


def live_auditors() -> list["InvariantAuditor"]:
    """Every auditor currently alive in the process (weakly tracked)."""
    return list(_LIVE_AUDITORS)


@dataclass(slots=True)
class Violation:
    """One detected invariant violation.

    Attributes:
        at: simulated time the violation was detected.
        invariant: which law broke (``frame-ref-conservation``,
            ``arena-conservation``, ``arena-stale-access``,
            ``message-conservation``, ``kernel-hygiene``,
            ``metrics-conservation``, ``autoscaler-pacing``,
            ``slo-ladder``, ``admission-conservation``, ``rpc-quiesce``,
            ``liveops-version-swap``, ``liveops-conservation``).
        subject: the component involved (store device, transport class,
            collector name, service@device).
        detail: an actionable description — what was expected, what was
            observed, and where to look.
    """

    at: float
    invariant: str
    subject: str
    detail: str

    def describe(self) -> str:
        return f"[t={self.at:.6f}s] {self.invariant} on {self.subject}: {self.detail}"


@dataclass(slots=True)
class _StoreState:
    """The auditor's mirror of one frame store's live references."""

    refcounts: dict[int, int] = field(default_factory=dict)
    held_since: dict[int, float] = field(default_factory=dict)
    holds: int = 0
    releases: int = 0


@dataclass(slots=True)
class _ArenaState:
    """The auditor's mirror of one frame arena's handle conservation."""

    allocs: int = 0
    frees: int = 0
    bytes_in_use: int = 0
    #: live offsets mirrored independently: offset -> (generation, nbytes).
    live: dict[int, tuple[int, int]] = field(default_factory=dict)
    stale_accesses: int = 0


@dataclass(slots=True)
class _TransportState:
    """Baseline counters and the in-flight mirror for one transport."""

    base_sent: int = 0
    base_delivered: int = 0
    base_failed: int = 0
    in_flight: dict[int, float] = field(default_factory=dict)  # msg_id -> sent at


@dataclass(slots=True)
class _SloState:
    """The auditor's mirror of one SLO controller's ladder and admissions."""

    #: pipeline -> time of the last ladder action (either direction).
    last_action_at: dict[str, float] = field(default_factory=dict)
    #: pipeline -> mirrored stack of applied step names.
    stacks: dict[str, list[str]] = field(default_factory=dict)
    #: counter baselines at watch time (a controller watched mid-run
    #: starts conservation from its current totals).
    base: dict[str, int] = field(default_factory=dict)


@dataclass(slots=True)
class _LiveOpsState:
    """The auditor's mirror of one live-ops manager's upgrade ledger."""

    started: int = 0
    promoted: int = 0
    rolled_back: int = 0


@dataclass(slots=True)
class _MetricsState:
    """Baseline counters and the admitted-frame mirror for one collector."""

    base_entered: int = 0
    base_completed: int = 0
    base_dropped: int = 0
    clean_at_watch: bool = True
    in_flight: set = field(default_factory=set)
    entered: int = 0
    completed_admitted: int = 0
    dropped_admitted: int = 0
    dropped_unadmitted: int = 0


class InvariantAuditor:
    """Watches components and records :class:`Violation` objects.

    One auditor serves a whole home (mirror ``enable_tracing``:
    :meth:`repro.core.videopipe.VideoPipe.enable_audit` creates and wires
    it). Components call the ``on_*`` notification methods at the exact
    points their own bookkeeping changes; the auditor keeps an independent
    mirror and flags any disagreement.

    Attributes:
        violations: recorded violations, oldest first (capped by
            ``AuditConfig.max_violations``).
        dropped_violations: violations past the cap (counted, not stored).
        source: ``"explicit"`` for auditors built through the API,
            ``"env"`` for those auto-enabled by ``REPRO_AUDIT=1``.
    """

    def __init__(
        self,
        kernel: "Kernel",
        config: AuditConfig | None = None,
        source: str = "explicit",
    ) -> None:
        self.kernel = kernel
        self.config = config or AuditConfig()
        self.source = source
        self.violations: list[Violation] = []
        self.dropped_violations = 0
        self.checks_run = 0
        self._stores: dict[int, tuple["FrameStore", _StoreState]] = {}
        self._arenas: dict[int, tuple["FrameArena", _ArenaState]] = {}
        self._transports: dict[int, tuple["Transport", _TransportState]] = {}
        self._metrics: dict[int, tuple["MetricsCollector", _MetricsState]] = {}
        self._scalers: dict[int, tuple["AutoScaler", dict]] = {}
        self._slo: dict[int, tuple["SLOController", "_SloState"]] = {}
        self._liveops: dict[int, tuple[Any, _LiveOpsState]] = {}
        self._rpc_clients: list["RpcClient"] = []
        self._last_exec_time: float | None = None
        self._kernel_attached = False
        _LIVE_AUDITORS.add(self)

    # -- recording ------------------------------------------------------------
    @property
    def violation_count(self) -> int:
        """Total violations detected (stored + dropped past the cap)."""
        return len(self.violations) + self.dropped_violations

    def record(self, invariant: str, subject: str, detail: str) -> None:
        """Record one violation (or raise, in strict mode)."""
        violation = Violation(
            at=self.kernel.now, invariant=invariant, subject=subject, detail=detail
        )
        if self.config.strict:
            raise AuditError(violation.describe())
        if len(self.violations) < self.config.max_violations:
            self.violations.append(violation)
        else:
            self.dropped_violations += 1

    def report(self) -> str:
        """A human-readable multi-line report of everything detected."""
        if not self.violation_count:
            return "audit clean: no invariant violations detected"
        lines = [
            f"audit found {self.violation_count} violation(s)"
            + (f" ({self.dropped_violations} past the cap, not stored)"
               if self.dropped_violations else "")
        ]
        lines += [f"  {v.describe()}" for v in self.violations]
        return "\n".join(lines)

    # -- kernel hygiene ---------------------------------------------------------
    def attach_kernel(self, kernel: "Kernel") -> None:
        """Observe *kernel* for clock monotonicity and past-scheduling."""
        if not self._kernel_attached:
            kernel.add_observer(self)
            self._kernel_attached = True

    def on_schedule(self, now: float, event: "Event") -> None:
        if event.time < now - _EPS:
            self.record(
                "kernel-hygiene",
                "kernel",
                f"event scheduled in the past: event time {event.time:.6f}s"
                f" < now {now:.6f}s (seq {event.seq})",
            )

    def on_execute(self, now: float, event: "Event") -> None:
        if event.time < now - _EPS:
            self.record(
                "kernel-hygiene",
                "kernel",
                f"clock would run backwards: popped event at {event.time:.6f}s"
                f" with clock at {now:.6f}s (seq {event.seq}) — the event"
                " queue was corrupted after scheduling",
            )
        last = self._last_exec_time
        if last is not None and event.time < last - _EPS:
            self.record(
                "kernel-hygiene",
                "kernel",
                f"non-monotonic execution order: event at {event.time:.6f}s"
                f" after one at {last:.6f}s",
            )
        else:
            self._last_exec_time = event.time

    # -- frame-ref conservation ---------------------------------------------------
    def watch_store(self, store: "FrameStore") -> None:
        """Mirror *store*'s refcounts; flag negatives now and leaks at quiesce."""
        if id(store) in self._stores:
            return
        store.auditor = self
        state = _StoreState()
        # a store watched mid-run starts with its current live refs mirrored
        for ref_id, count in store._refcounts.items():
            if count > 0:
                state.refcounts[ref_id] = count
                state.held_since[ref_id] = self.kernel.now
        self._stores[id(store)] = (store, state)

    def on_ref_hold(self, store: "FrameStore", ref_id: int, refcount: int) -> None:
        entry = self._stores.get(id(store))
        if entry is None:
            return
        state = entry[1]
        state.holds += 1
        if ref_id not in state.refcounts:
            state.held_since[ref_id] = self.kernel.now
        state.refcounts[ref_id] = refcount

    def on_ref_release(self, store: "FrameStore", ref_id: int, refcount: int) -> None:
        entry = self._stores.get(id(store))
        if entry is None:
            return
        state = entry[1]
        state.releases += 1
        if refcount < 0:
            self.record(
                "frame-ref-conservation",
                f"framestore/{store.device}",
                f"refcount for ref #{ref_id} went negative ({refcount}):"
                " a reference was released more times than it was held",
            )
        if refcount <= 0:
            state.refcounts.pop(ref_id, None)
            state.held_since.pop(ref_id, None)
        else:
            state.refcounts[ref_id] = refcount

    # -- arena handle conservation ------------------------------------------------
    def watch_arena(self, arena: "FrameArena") -> None:
        """Mirror *arena*'s alloc/free accounting; flag stale handle
        accesses now and unreleased slots at quiesce."""
        if id(arena) in self._arenas:
            return
        arena.auditor = self
        state = _ArenaState(
            allocs=arena.allocs,
            frees=arena.frees,
            bytes_in_use=arena.bytes_in_use,
        )
        # an arena watched mid-run starts with its current live slots mirrored
        for offset, handle in arena._live.items():
            state.live[offset] = (handle.generation, handle.nbytes)
        self._arenas[id(arena)] = (arena, state)

    def on_arena_alloc(self, arena: "FrameArena", handle: "ArenaHandle") -> None:
        entry = self._arenas.get(id(arena))
        if entry is None:
            return
        state = entry[1]
        state.allocs += 1
        state.bytes_in_use += handle.nbytes
        if handle.offset in state.live:
            self.record(
                "arena-conservation",
                f"arena/{arena.arena_id}",
                f"offset {handle.offset} allocated while the auditor still"
                f" mirrors it live (generation"
                f" {state.live[handle.offset][0]}) — a free was never"
                " reported",
            )
        state.live[handle.offset] = (handle.generation, handle.nbytes)

    def on_arena_free(
        self, arena: "FrameArena", handle: "ArenaHandle", reason: str
    ) -> None:
        entry = self._arenas.get(id(arena))
        if entry is None:
            return
        state = entry[1]
        state.frees += 1
        state.bytes_in_use -= handle.nbytes
        mirrored = state.live.pop(handle.offset, None)
        if mirrored is None:
            self.record(
                "arena-conservation",
                f"arena/{arena.arena_id}",
                f"free({reason}) of offset {handle.offset} the auditor does"
                " not mirror as live — double free slipped past the"
                " generation check",
            )
        elif mirrored[0] != handle.generation:
            self.record(
                "arena-conservation",
                f"arena/{arena.arena_id}",
                f"free({reason}) of offset {handle.offset} at generation"
                f" {handle.generation} but the auditor mirrors generation"
                f" {mirrored[0]} — a stale handle reached the free path",
            )

    def on_stale_access(
        self, arena: "FrameArena", handle: "ArenaHandle", reason: str
    ) -> None:
        entry = self._arenas.get(id(arena))
        if entry is None:
            return
        entry[1].stale_accesses += 1
        self.record(
            "arena-stale-access",
            f"arena/{arena.arena_id}",
            f"stale handle {handle} dereferenced after the slot was retired"
            f" ({reason}) — a holder kept a handle across"
            f" {'eviction' if reason == 'evicted' else reason} instead of"
            " re-resolving through the frame store",
        )

    # -- message conservation ------------------------------------------------------
    def watch_transport(self, transport: "Transport") -> None:
        """Check ``sent == delivered + failed + in-flight`` on *transport*."""
        if id(transport) in self._transports:
            return
        transport.auditor = self
        state = _TransportState(
            base_sent=transport.sent_count,
            base_delivered=transport.delivered_count,
            base_failed=transport.failed_count,
        )
        self._transports[id(transport)] = (transport, state)

    def on_message_sent(self, transport: "Transport", message: Any) -> None:
        entry = self._transports.get(id(transport))
        if entry is not None:
            entry[1].in_flight[message.msg_id] = self.kernel.now

    def on_message_delivered(self, transport: "Transport", message: Any) -> None:
        entry = self._transports.get(id(transport))
        if entry is not None:
            entry[1].in_flight.pop(message.msg_id, None)

    def on_message_failed(self, transport: "Transport", message: Any) -> None:
        entry = self._transports.get(id(transport))
        if entry is not None:
            entry[1].in_flight.pop(message.msg_id, None)

    # -- metrics conservation -------------------------------------------------------
    def watch_metrics(self, collector: "MetricsCollector") -> None:
        """Check frames admitted == completed + dropped + in-flight on
        *collector*."""
        if id(collector) in self._metrics:
            return
        collector.auditor = self
        state = _MetricsState(
            base_entered=collector.counter("frames_entered"),
            base_completed=collector.counter("frames_completed"),
            base_dropped=collector.counter("frames_dropped"),
            clean_at_watch=collector.frames_in_flight == 0,
        )
        self._metrics[id(collector)] = (collector, state)

    def on_frame_entered(self, collector: "MetricsCollector", frame_id: int) -> None:
        entry = self._metrics.get(id(collector))
        if entry is None:
            return
        state = entry[1]
        state.entered += 1
        state.in_flight.add(frame_id)

    def on_frame_completed(self, collector: "MetricsCollector", frame_id: int) -> None:
        entry = self._metrics.get(id(collector))
        if entry is None:
            return
        state = entry[1]
        if frame_id in state.in_flight:
            state.in_flight.discard(frame_id)
            state.completed_admitted += 1

    def on_frame_dropped(self, collector: "MetricsCollector", frame_id: int) -> None:
        entry = self._metrics.get(id(collector))
        if entry is None:
            return
        state = entry[1]
        if frame_id in state.in_flight:
            state.in_flight.discard(frame_id)
            state.dropped_admitted += 1
        else:
            state.dropped_unadmitted += 1

    # -- autoscaler pacing ------------------------------------------------------------
    def watch_autoscaler(self, scaler: "AutoScaler") -> None:
        """Check cooldown pacing and replica bounds on *scaler*'s events."""
        if id(scaler) in self._scalers:
            return
        scaler.auditor = self
        self._scalers[id(scaler)] = (scaler, {})

    def on_scaling_event(self, scaler: "AutoScaler", event: "ScalingEvent") -> None:
        entry = self._scalers.get(id(scaler))
        if entry is None:
            return
        last_by_host = entry[1]
        key = (event.service, event.device)
        policy = scaler.policy
        subject = f"autoscaler/{event.service}@{event.device}"
        previous = last_by_host.get(key)
        if (
            previous is not None
            and event.at - previous < policy.cooldown_s - _EPS
        ):
            self.record(
                "autoscaler-pacing",
                subject,
                f"scaling events {previous:.3f}s and {event.at:.3f}s are"
                f" {event.at - previous:.3f}s apart, inside the"
                f" {policy.cooldown_s:.3f}s cooldown — the sampler is"
                " re-evaluating overlapping windows (one decision should"
                " consume its window)",
            )
        last_by_host[key] = event.at
        if not (1 <= event.to_replicas <= policy.max_replicas):
            self.record(
                "autoscaler-pacing",
                subject,
                f"replica count left [1, {policy.max_replicas}]:"
                f" {event.from_replicas} -> {event.to_replicas}",
            )

    # -- slo ladder & admission --------------------------------------------------------
    def watch_slo(self, controller: "SLOController") -> None:
        """Check ladder monotonicity and admission conservation on
        *controller*."""
        if id(controller) in self._slo:
            return
        controller.auditor = self
        state = _SloState()
        counters = controller.metrics.counters()
        for key in ("deploys_requested", "deploys_deployed",
                    "deploys_rejected", "deploys_withdrawn"):
            state.base[key] = counters.get(key, 0)
        state.base["queued_now"] = len(controller.queued)
        # enrollments that already carry applied rungs are mirrored as-is
        for enrollment in controller.enrollments:
            name = enrollment.pipeline.config.name
            state.stacks[name] = enrollment.applied_steps()
            if enrollment.last_action_at is not None:
                state.last_action_at[name] = enrollment.last_action_at
        self._slo[id(controller)] = (controller, state)

    def on_slo_action(
        self, controller: "SLOController", action: "LadderAction"
    ) -> None:
        entry = self._slo.get(id(controller))
        if entry is None:
            return
        state = entry[1]
        subject = f"slo/{action.pipeline}"
        previous = state.last_action_at.get(action.pipeline)
        hysteresis = controller.config.hysteresis_s
        if previous is not None and action.at - previous < hysteresis - _EPS:
            self.record(
                "slo-ladder",
                subject,
                f"ladder actions at {previous:.3f}s and {action.at:.3f}s are"
                f" {action.at - previous:.3f}s apart, inside the"
                f" {hysteresis:.3f}s hysteresis — the controller is flapping",
            )
        state.last_action_at[action.pipeline] = action.at
        expected_delta = 1 if action.direction == "degrade" else -1
        if action.depth_after - action.depth_before != expected_delta:
            self.record(
                "slo-ladder",
                subject,
                f"{action.direction} moved ladder depth"
                f" {action.depth_before} -> {action.depth_after}; every"
                " action must move it by exactly one rung",
            )
        stack = state.stacks.setdefault(action.pipeline, [])
        if len(stack) != action.depth_before:
            self.record(
                "slo-ladder",
                subject,
                f"action reports depth_before={action.depth_before} but the"
                f" auditor mirrors {len(stack)} applied rung(s)",
            )
        if action.direction == "degrade":
            stack.append(action.step)
        elif stack:
            top = stack.pop()
            if top != action.step:
                self.record(
                    "slo-ladder",
                    subject,
                    f"restore reverted {action.step!r} while the most"
                    f" recently applied rung is {top!r} — recovery must"
                    " retrace the ladder in reverse order",
                )
        else:
            self.record(
                "slo-ladder",
                subject,
                f"restore of {action.step!r} with no applied rung mirrored",
            )

    def on_admission(
        self, controller: "SLOController", decision: "AdmissionDecision"
    ) -> None:
        entry = self._slo.get(id(controller))
        if entry is None:
            return
        subject = f"slo/{decision.pipeline}"
        if decision.action not in ("admitted", "rejected", "queued"):
            self.record(
                "admission-conservation",
                subject,
                f"admission decision with unknown action {decision.action!r}",
            )
        elif (
            decision.action != "admitted"
            and decision.worst_utilization <= decision.threshold + _EPS
        ):
            self.record(
                "admission-conservation",
                subject,
                f"deploy {decision.action} with predicted utilization"
                f" {decision.worst_utilization:.3f} within threshold"
                f" {decision.threshold:.3f}",
            )

    def _check_slo(self, controller: "SLOController", state: _SloState) -> None:
        counters = controller.metrics.counters()
        requested = counters.get("deploys_requested", 0) - state.base["deploys_requested"]
        deployed = counters.get("deploys_deployed", 0) - state.base["deploys_deployed"]
        rejected = counters.get("deploys_rejected", 0) - state.base["deploys_rejected"]
        withdrawn = counters.get("deploys_withdrawn", 0) - state.base["deploys_withdrawn"]
        queued_now = len(controller.queued) - state.base["queued_now"]
        if requested != deployed + rejected + withdrawn + queued_now:
            self.record(
                "admission-conservation",
                "slo/controller",
                f"requested ({requested}) != deployed ({deployed}) +"
                f" rejected ({rejected}) + withdrawn ({withdrawn}) +"
                f" queued-now ({queued_now}) —"
                f" {requested - deployed - rejected - withdrawn - queued_now}"
                " deploy request(s) vanished between admission and the"
                " deployer",
            )
        for enrollment in controller.enrollments:
            name = enrollment.pipeline.config.name
            depth = enrollment.depth
            if not 0 <= depth <= len(enrollment.ladder):
                self.record(
                    "slo-ladder",
                    f"slo/{name}",
                    f"ladder depth {depth} outside"
                    f" [0, {len(enrollment.ladder)}]",
                )
            mirrored = state.stacks.get(name, [])
            if enrollment.applied_steps() != mirrored:
                self.record(
                    "slo-ladder",
                    f"slo/{name}",
                    f"applied rungs {enrollment.applied_steps()} disagree"
                    f" with the auditor's mirror {mirrored} — a rung was"
                    " applied or reverted without a recorded action",
                )

    # -- live-ops version swaps ---------------------------------------------------------
    def watch_liveops(self, manager: Any) -> None:
        """Check the version-swap conservation law on *manager*: every
        upgrade started either promotes, rolls back, or is still mirroring
        — and a finished upgrade leaves exactly one version of the module
        deployed, under the right version label."""
        if id(manager) in self._liveops:
            return
        manager.auditor = self
        state = _LiveOpsState()
        # a manager watched mid-run starts with its ledger mirrored as-is
        for upgrade in manager.upgrades:
            state.started += 1
            if upgrade.state == "promoted":
                state.promoted += 1
            elif upgrade.state == "rolled_back":
                state.rolled_back += 1
        self._liveops[id(manager)] = (manager, state)

    def on_upgrade_started(self, manager: Any, upgrade: Any) -> None:
        entry = self._liveops.get(id(manager))
        if entry is not None:
            entry[1].started += 1

    def on_upgrade_finished(self, manager: Any, upgrade: Any) -> None:
        entry = self._liveops.get(id(manager))
        if entry is None:
            return
        state = entry[1]
        subject = f"liveops/{upgrade.pipeline.name}/{upgrade.module_name}"
        if upgrade.state == "promoted":
            state.promoted += 1
        elif upgrade.state == "rolled_back":
            state.rolled_back += 1
        else:
            self.record(
                "liveops-version-swap",
                subject,
                f"upgrade finished in state {upgrade.state!r}; every finish"
                " must be a promotion or a rollback",
            )
            return
        # exactly one version of the module may remain live: the shadow
        # deployment and its sink must be gone, the real name deployed
        runtime = upgrade.pipeline.module(upgrade.module_name).runtime
        deployed_names = set(runtime.deployed_names())
        for ghost in (upgrade.shadow_name, upgrade.sink_name):
            if ghost in deployed_names:
                self.record(
                    "liveops-version-swap",
                    subject,
                    f"shadow deployment {ghost!r} still live after the"
                    f" upgrade {upgrade.state}; promotion/rollback must"
                    " retire the canary",
                )
        if upgrade.module_name not in deployed_names:
            self.record(
                "liveops-version-swap",
                subject,
                f"module {upgrade.module_name!r} is not deployed after the"
                f" upgrade {upgrade.state} — the swap dropped the module",
            )
        expected = (
            upgrade.to_version if upgrade.state == "promoted"
            else upgrade.from_version
        )
        labeled = upgrade.pipeline.wiring.version_of(upgrade.module_name)
        if labeled != expected:
            self.record(
                "liveops-version-swap",
                subject,
                f"wiring labels {upgrade.module_name!r} as {labeled!r} after"
                f" a {upgrade.state} upgrade; expected {expected!r}",
            )
        shadow = upgrade.shadow_metrics
        if shadow is not None and upgrade.mirrored_frames != (
            shadow.counter("frames_entered")
        ):
            self.record(
                "liveops-version-swap",
                subject,
                f"mirror tap copied {upgrade.mirrored_frames} frame(s) but"
                f" the shadow collector admitted"
                f" {shadow.counter('frames_entered')} — a mirrored frame"
                " bypassed shadow accounting",
            )

    def _check_liveops(self, manager: Any, state: _LiveOpsState) -> None:
        active = len(manager.active_upgrades())
        if state.started != active + state.promoted + state.rolled_back:
            self.record(
                "liveops-conservation",
                "liveops/manager",
                f"started ({state.started}) != active ({active}) + promoted"
                f" ({state.promoted}) + rolled-back ({state.rolled_back}) —"
                " an upgrade vanished without a verdict",
            )

    # -- rpc quiesce -----------------------------------------------------------------
    def watch_rpc(self, client: "RpcClient") -> None:
        """At quiesce, *client* must have no orphaned pending requests."""
        if client not in self._rpc_clients:
            self._rpc_clients.append(client)

    # -- checks -------------------------------------------------------------------------
    def check_now(self) -> list[Violation]:
        """Run every invariant that must hold at *any* instant.

        Returns the violations added by this call.
        """
        start = len(self.violations)
        self.checks_run += 1
        for arena, state in self._arenas.values():
            self._check_arena(arena, state)
        for transport, state in self._transports.values():
            self._check_transport(transport, state)
        for collector, state in self._metrics.values():
            self._check_metrics(collector, state)
        for controller, state in self._slo.values():
            self._check_slo(controller, state)
        for manager, state in self._liveops.values():
            self._check_liveops(manager, state)
        return self.violations[start:]

    def check_quiesce(self) -> list[Violation]:
        """Run every invariant, including the end-of-run ones: all frame
        refs released, no in-flight messages, no pending RPCs.

        Call when the home is done (the event queue has drained or the
        caller knows all work has settled). Returns the violations added.
        """
        start = len(self.violations)
        self.check_now()
        for store, state in self._stores.values():
            self._check_store_quiesce(store, state)
        for arena, state in self._arenas.values():
            self._check_arena_quiesce(arena)
        for transport, state in self._transports.values():
            if transport.in_flight and not transport.closed:
                self.record(
                    "message-conservation",
                    f"transport/{type(transport).__name__}",
                    f"{transport.in_flight} message(s) still in flight at"
                    " quiesce: a send's arrival signal never resolved",
                )
        for collector, state in self._metrics.values():
            if state.clean_at_watch and collector.frames_in_flight:
                self.record(
                    "metrics-conservation",
                    f"metrics/{collector.name}",
                    f"{collector.frames_in_flight} frame(s) still marked"
                    " in-flight at quiesce: frames_entered was never matched"
                    " by frame_completed/frame_dropped — a drop path is not"
                    " reporting to the collector",
                )
        for client in self._rpc_clients:
            pending = client.pending_count
            if pending:
                self.record(
                    "rpc-quiesce",
                    f"rpc/{client.reply_address}",
                    f"{pending} RPC request(s) still pending at quiesce:"
                    " a reply or timeout was lost",
                )
        return self.violations[start:]

    # -- check bodies ------------------------------------------------------------
    def _check_transport(self, transport: "Transport", state: _TransportState) -> None:
        subject = f"transport/{type(transport).__name__}"
        sent = transport.sent_count - state.base_sent
        delivered = transport.delivered_count - state.base_delivered
        failed = transport.failed_count - state.base_failed
        in_flight = transport.in_flight
        if sent != delivered + failed + in_flight:
            self.record(
                "message-conservation",
                subject,
                f"sent ({sent}) != delivered ({delivered}) + failed"
                f" ({failed}) + in-flight ({in_flight}) — "
                f"{sent - delivered - failed - in_flight} message(s)"
                " vanished without a delivery or failure",
            )
        if len(state.in_flight) != in_flight:
            examples = sorted(state.in_flight)[:5]
            self.record(
                "message-conservation",
                subject,
                f"auditor mirrors {len(state.in_flight)} in-flight message(s)"
                f" but the transport reports {in_flight}; unsettled msg ids"
                f" (up to 5): {examples} — a pending send was dropped"
                " without resolving its signal",
            )

    def _check_metrics(self, collector: "MetricsCollector", state: _MetricsState) -> None:
        subject = f"metrics/{collector.name}"
        entered = collector.counter("frames_entered") - state.base_entered
        completed = collector.counter("frames_completed") - state.base_completed
        dropped = collector.counter("frames_dropped") - state.base_dropped
        if entered != state.entered:
            self.record(
                "metrics-conservation",
                subject,
                f"frames_entered counter moved by {entered} but the"
                f" collector notified {state.entered} admissions",
            )
        if state.clean_at_watch:
            mirrored = len(state.in_flight)
            if collector.frames_in_flight != mirrored:
                self.record(
                    "metrics-conservation",
                    subject,
                    f"collector reports {collector.frames_in_flight} frame(s)"
                    f" in flight but admitted-minus-settled is {mirrored} —"
                    " frame_dropped/frame_completed is not pruning"
                    " _frame_started (the PR-3 leak class)",
                )
        accounted = (
            state.completed_admitted + state.dropped_admitted + len(state.in_flight)
        )
        if state.entered != accounted:
            self.record(
                "metrics-conservation",
                subject,
                f"admitted ({state.entered}) != completed ({state.completed_admitted})"
                f" + dropped ({state.dropped_admitted})"
                f" + in-flight ({len(state.in_flight)})",
            )
        if dropped < state.dropped_admitted:
            self.record(
                "metrics-conservation",
                subject,
                f"frames_dropped counter ({dropped}) is below the"
                f" admitted drops the collector reported"
                f" ({state.dropped_admitted})",
            )
        if completed < state.completed_admitted:
            self.record(
                "metrics-conservation",
                subject,
                f"frames_completed counter ({completed}) is below the"
                f" admitted completions the collector reported"
                f" ({state.completed_admitted})",
            )

    def _check_arena(self, arena: "FrameArena", state: _ArenaState) -> None:
        subject = f"arena/{arena.arena_id}"
        if arena.allocs != state.allocs or arena.frees != state.frees:
            self.record(
                "arena-conservation",
                subject,
                f"arena counts {arena.allocs} alloc(s) / {arena.frees}"
                f" free(s) but the auditor mirrors {state.allocs} /"
                f" {state.frees} — an alloc or free path skipped its"
                " notification",
            )
        if arena.bytes_in_use != state.bytes_in_use:
            self.record(
                "arena-conservation",
                subject,
                f"arena reports {arena.bytes_in_use} byte(s) in use but the"
                f" auditor mirrors {state.bytes_in_use} — per-slot sizes"
                " disagree between alloc and free",
            )
        if arena.live_count != len(state.live):
            self.record(
                "arena-conservation",
                subject,
                f"arena reports {arena.live_count} live slot(s) but the"
                f" auditor mirrors {len(state.live)}",
            )

    def _check_arena_quiesce(self, arena: "FrameArena") -> None:
        """At quiesce every live arena slot must back a stored frame.

        Retained dedup targets legitimately keep their slots, so the law is
        *no orphans* rather than ``live_count == 0``: a slot the backing
        store no longer maps is pixel memory nothing can ever free."""
        store = None
        for candidate, _ in self._stores.values():
            if candidate.arena is arena:
                store = candidate
                break
        if store is None:
            if arena.live_count:
                self.record(
                    "arena-conservation",
                    f"arena/{arena.arena_id}",
                    f"{arena.live_count} live slot(s) at quiesce on an arena"
                    " with no watched backing store",
                )
            return
        backed = {handle.offset for handle in store._by_handle}
        orphans = sorted(set(arena._live) - backed)
        if orphans:
            self.record(
                "arena-conservation",
                f"arena/{arena.arena_id}",
                f"{len(orphans)} orphaned arena slot(s) at quiesce with no"
                f" backing store entry (offsets, up to 5: {orphans[:5]}) —"
                " pixel memory nothing can ever free",
            )

    def _check_store_quiesce(self, store: "FrameStore", state: _StoreState) -> None:
        subject = f"framestore/{store.device}"
        if store.live_count == 0:
            return
        holders = []
        for ref_id in sorted(state.refcounts)[:5]:
            count = state.refcounts[ref_id]
            since = state.held_since.get(ref_id, 0.0)
            obj = store._objects.get(ref_id)
            holders.append(
                f"#{ref_id} {type(obj).__name__} x{count}"
                f" (held since t={since:.3f}s)"
            )
        attribution = "; ".join(holders) if holders else store._top_holders()
        self.record(
            "frame-ref-conservation",
            subject,
            f"{store.live_count} live reference(s) at quiesce after"
            f" {state.holds} hold(s) / {state.releases} release(s) — a"
            f" module or service is leaking holds. Leaked: {attribution}",
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<InvariantAuditor {len(self._stores)} stores,"
            f" {len(self._transports)} transports, {len(self._metrics)}"
            f" collectors, {self.violation_count} violations>"
        )
