"""Determinism scenarios: every ``examples/`` script as a harness scenario.

Each scenario mirrors one example's system shape — same devices, services,
pipeline(s) and features — at a shortened duration so the harness can run
each one twice in a few seconds. The mapping is enforced by
``tests/integration/test_determinism_examples.py``: a new example without a
scenario here fails the coverage test.

A scenario is ``scenario(seed) -> (home, run_fn)``; ``run_fn()`` drives the
run and returns a JSON-able fingerprint (frame counters, exact latency
lists, and where relevant trace/scaling digests). Model training is cached
per (seed, size) — training is deterministic, and reusing the trained model
keeps the harness fast without weakening the check (the kernel event
stream, not the training, is what the tap diffs).

This module imports :mod:`repro.apps`, so it is *not* re-exported from
``repro.audit`` (that would make ``repro`` import itself); import it
explicitly::

    from repro.audit.scenarios import EXAMPLE_SCENARIOS
"""

from __future__ import annotations

from functools import lru_cache

from ..core.videopipe import VideoPipe
from ..devices.spec import DeviceSpec
from ..faults.plan import FaultPlan
from ..pipeline.config import PipelineConfig
from ..pipeline.pipeline import Pipeline

DURATION_S = 4.0
RUN_UNTIL = 5.0


@lru_cache(maxsize=None)
def _activity_recognizer(seed: int = 1):
    from ..apps import train_activity_recognizer

    return train_activity_recognizer(seed=seed, train_subjects=3)


@lru_cache(maxsize=None)
def _gesture_recognizer(seed: int = 1):
    from ..apps import train_gesture_recognizer

    return train_gesture_recognizer(seed=seed, train_subjects=3)


def _fingerprint(pipeline: Pipeline) -> dict:
    """The bit-for-bit identity of one pipeline's run: exact counters and
    exact (un-rounded) latency streams."""
    metrics = pipeline.metrics
    return {
        "pipeline": pipeline.name,
        "entered": metrics.counter("frames_entered"),
        "completed": metrics.counter("frames_completed"),
        "dropped": metrics.counter("frames_dropped"),
        "latencies": list(metrics.total_latencies),
        "stage_means_ms": metrics.stage_means_ms(),
    }


def _run(home: VideoPipe, *pipelines: Pipeline, until: float = RUN_UNTIL):
    def run_fn() -> dict:
        home.run(until=until)
        return {
            "now": home.now,
            "pipelines": [_fingerprint(p) for p in pipelines],
        }

    return run_fn


def _deploy_fitness(home: VideoPipe, architecture: str = "videopipe",
                    fps: float = 10.0, config: PipelineConfig | None = None):
    from ..apps import (
        FitnessApp,
        fitness_pipeline_config,
        install_fitness_services,
    )

    services = install_fitness_services(
        home,
        recognizer=_activity_recognizer(),
        baseline_layout=(architecture == "baseline"),
    )
    app = FitnessApp(home, services, architecture=architecture)
    pipeline = app.deploy(
        config or fitness_pipeline_config(fps=fps, duration_s=DURATION_S)
    )
    return services, pipeline


def quickstart(seed: int):
    """examples/quickstart.py: the Fig. 4 fitness pipeline, co-located."""
    home = VideoPipe.paper_testbed(seed=seed)
    _, pipeline = _deploy_fitness(home)
    return home, _run(home, pipeline)


def fitness_app(seed: int):
    """examples/fitness_app.py: VideoPipe vs the Fig. 5 baseline. Both
    architectures run in one scenario so the diff covers the remote-service
    RPC path too."""
    home_vp = VideoPipe.paper_testbed(seed=seed)
    _, pipe_vp = _deploy_fitness(home_vp, architecture="videopipe")
    home_base = VideoPipe.paper_testbed(seed=seed)
    _, pipe_base = _deploy_fitness(home_base, architecture="baseline")

    run_vp = _run(home_vp, pipe_vp)
    run_base = _run(home_base, pipe_base)

    def run_fn() -> dict:
        return {"videopipe": run_vp(), "baseline": run_base()}

    # the tap observes home_vp's kernel; home_base rides along inside the
    # fingerprint (its determinism is covered by the fingerprint equality)
    return home_vp, run_fn


def gesture_control(seed: int):
    """examples/gesture_control.py: two pipelines sharing one pose service."""
    from ..apps import (
        FitnessApp,
        fitness_pipeline_config,
        gesture_pipeline_config,
        install_fitness_services,
        install_gesture_services,
    )

    home = VideoPipe.paper_testbed(seed=seed)
    home.add_device(DeviceSpec(name="camera", kind="phone", cpu_factor=2.5,
                               cores=8, supports_containers=False))
    fitness = install_fitness_services(home, recognizer=_activity_recognizer())
    gesture = install_gesture_services(home, recognizer=_gesture_recognizer())
    app = FitnessApp(home, fitness)
    fitness_pipe = app.deploy(
        fitness_pipeline_config(fps=10.0, duration_s=DURATION_S)
    )
    gesture_pipe = home.deploy_pipeline(
        gesture_pipeline_config(fps=10.0, duration_s=DURATION_S, motion="clap")
    )
    base_run = _run(home, fitness_pipe, gesture_pipe)

    def run_fn() -> dict:
        result = base_run()
        result["iot_log"] = [
            (event.at, event.target, event.new_state)
            for event in gesture.fleet.log
        ]
        return result

    return home, run_fn


def fall_detection(seed: int):
    """examples/fall_detection.py: the §4.3 fall detector (fall motion)."""
    from ..apps import (
        fall_pipeline_config,
        install_fitness_services,
        install_gesture_services,
    )

    home = VideoPipe.paper_testbed(seed=seed)
    home.add_device(DeviceSpec(name="camera", kind="phone", cpu_factor=2.5,
                               cores=8, supports_containers=False))
    install_fitness_services(home, recognizer=_activity_recognizer())
    install_gesture_services(home, recognizer=_gesture_recognizer())
    pipeline = home.deploy_pipeline(
        fall_pipeline_config(fps=10.0, duration_s=DURATION_S, motion="fall")
    )
    base_run = _run(home, pipeline)

    def run_fn() -> dict:
        result = base_run()
        result["falls"] = pipeline.metrics.counter("falls_detected")
        return result

    return home, run_fn


def custom_pipeline(seed: int):
    """examples/custom_pipeline.py: user-defined modules on constrained
    devices, Listing-1 text config (simulated-kernel half only)."""
    from ..pipeline.parser import parse_pipeline_text
    from ..runtime.module import Module
    from ..runtime.registry import register_module
    from ..services.base import FunctionService

    # the example's three modules, registered once per process
    if not hasattr(custom_pipeline, "_registered"):
        @register_module("./AuditTickerModule.js")
        class TickerModule(Module):
            def __init__(self, count=10, interval_s=0.2):
                self.count = count
                self.interval_s = interval_s

            def init(self, ctx):
                kernel = ctx._runtime.kernel

                def ticker():
                    for n in range(self.count):
                        ctx.call_next({"n": n, "sent_at": ctx.now})
                        yield self.interval_s

                kernel.process(ticker(), name="audit-ticker")

            def event_received(self, ctx, event):
                pass

        @register_module("./AuditSquarerModule.js")
        class SquarerModule(Module):
            def event_received(self, ctx, event):
                def flow():
                    result = yield ctx.call_service(
                        "squarer", event.payload["n"]
                    )
                    ctx.call_next(dict(event.payload, squared=result))

                return flow()

        @register_module("./AuditPrinterModule.js")
        class PrinterModule(Module):
            def __init__(self):
                self.results = []

            def event_received(self, ctx, event):
                self.results.append(
                    (event.payload["n"], event.payload["squared"],
                     ctx.now - event.payload["sent_at"])
                )

        custom_pipeline._registered = True

    config_text = """
    modules : [
        { name: ticker_module
          include ("./AuditTickerModule.js")
          endpoint: ["bind#tcp://*:5950"]
          next_module: squarer_module }
        { name: squarer_module
          include ("./AuditSquarerModule.js")
          service: ['squarer']
          endpoint: ["bind#tcp://*:5951"]
          next_module: printer_module }
        { name: printer_module
          include ("./AuditPrinterModule.js")
          endpoint: ["bind#tcp://*:5952"]
          next_module: [] }
    ]
    """
    home = VideoPipe(seed=seed)
    home.add_device("watch")
    home.add_device("laptop")
    home.add_device("fridge")
    home.deploy_service(
        FunctionService("squarer", lambda n, ctx: n * n,
                        reference_cost_s=0.005, default_port=7400),
        "laptop",
    )
    config = parse_pipeline_text(config_text, name="custom")
    config.module("ticker_module").device = "watch"
    config.module("printer_module").device = "fridge"
    pipeline = home.deploy_pipeline(config, default_device="watch")
    printer = pipeline.module_instance("printer_module")

    def run_fn() -> dict:
        home.run(until=RUN_UNTIL)
        return {"now": home.now, "results": list(printer.results)}

    return home, run_fn


def monitoring_autoscaling(seed: int):
    """examples/monitoring_autoscaling.py: monitor + autoscaler under a
    two-pipeline overload of the shared pose service."""
    from ..apps import (
        FitnessApp,
        fitness_pipeline_config,
        gesture_pipeline_config,
        install_fitness_services,
        install_gesture_services,
    )
    from ..services.scaling import ScalingPolicy

    home = VideoPipe.paper_testbed(seed=seed)
    home.add_device(DeviceSpec(name="camera", kind="phone", cpu_factor=2.5,
                               cores=8, supports_containers=False))
    fitness = install_fitness_services(home, recognizer=_activity_recognizer())
    install_gesture_services(home, recognizer=_gesture_recognizer())
    home.enable_monitoring(period_s=0.5)
    home.enable_autoscaling(ScalingPolicy(
        check_interval_s=0.5, queue_threshold=0.75, window=4, max_replicas=2,
    ))
    app = FitnessApp(home, fitness)
    p_fit = app.deploy(
        fitness_pipeline_config(fps=30.0, duration_s=DURATION_S)
    )
    p_gest = home.deploy_pipeline(
        gesture_pipeline_config(fps=30.0, duration_s=DURATION_S)
    )
    base_run = _run(home, p_fit, p_gest, until=RUN_UNTIL + 2.0)

    def run_fn() -> dict:
        result = base_run()
        result["scaling_events"] = [
            (e.at, e.service, e.from_replicas, e.to_replicas, e.reason)
            for e in home.autoscaler.events
        ]
        return result

    return home, run_fn


def object_tracking(seed: int):
    """examples/object_tracking.py: rendered-pixel detection + stateless
    tracking association."""
    from ..apps import scene_pipeline_config
    from ..services.builtin import (
        ObjectDetectionService,
        ObjectTrackingService,
    )

    home = VideoPipe.paper_testbed(seed=seed)
    home.add_device(DeviceSpec(name="camera", kind="phone", cpu_factor=2.5,
                               cores=8, supports_containers=False))
    home.deploy_service(ObjectDetectionService(), "desktop")
    home.deploy_service(ObjectTrackingService(), "desktop")
    pipeline = home.deploy_pipeline(
        scene_pipeline_config(fps=10.0, duration_s=DURATION_S)
    )
    tracker = pipeline.module_instance("object_tracking_module")
    base_run = _run(home, pipeline)

    def run_fn() -> dict:
        result = base_run()
        result["appeared"] = list(tracker.appeared)
        return result

    return home, run_fn


def multi_camera_scene(seed: int):
    """examples/multi_camera_scene.py: three cameras, fan-in fusion DAG,
    cross-camera re-ID association against shared ground truth."""
    from ..apps import install_scene_services, multi_camera_pipeline_config
    from ..vision import fusion_accuracy

    home = VideoPipe.paper_testbed(seed=seed)
    home.add_device(DeviceSpec(name="camera", kind="phone", cpu_factor=2.5,
                               cores=8, supports_containers=False))
    install_scene_services(home, "desktop")
    pipeline = home.deploy_pipeline(
        multi_camera_pipeline_config(fps=8.0, duration_s=DURATION_S)
    )
    fusion = pipeline.module_instance("scene_fusion_module")
    base_run = _run(home, pipeline)

    def run_fn() -> dict:
        result = base_run()
        accuracy = fusion_accuracy(fusion.history)
        result["fusion"] = {
            "accuracy": accuracy,
            "tracks": [t.as_dict() for t in fusion.core.tracks()],
            "scene_graph": fusion.scene_graph(),
        }
        return result

    return home, run_fn


def chaos_fitness(seed: int):
    """examples/chaos_fitness.py: crash the compute device mid-run, detect,
    evacuate, recover — the drop/failure paths under audit."""
    from ..apps import (
        FitnessApp,
        fitness_pipeline_config,
        install_fitness_services,
    )
    from ..services.builtin import (
        ActivityClassifierService,
        PoseDetectorService,
    )

    crash_at, down_for, duration = 2.0, 2.0, 7.0
    home = VideoPipe.paper_testbed(seed=seed)
    home.add_device("laptop")
    recognizer = _activity_recognizer()
    services = install_fitness_services(home, recognizer=recognizer)
    home.deploy_service(PoseDetectorService(), "laptop")
    home.deploy_service(ActivityClassifierService(recognizer), "laptop")
    config = fitness_pipeline_config(fps=10.0, duration_s=duration)
    config.module("pose_detector_module").device = "desktop"
    config.module("activity_detector_module").device = "desktop"
    config.module("video_streaming_module").params["credit_timeout_s"] = 1.0
    pipeline = FitnessApp(home, services).deploy(config)
    home.enable_failure_detection(home_device="tv", period_s=0.25,
                                  miss_threshold=2)
    home.enable_self_healing(pipeline, cooldown_s=0.5)
    injector = home.enable_fault_injection(
        FaultPlan().device_crash(crash_at, "desktop", down_for=down_for)
    )
    base_run = _run(home, pipeline, until=duration + 1.0)

    def run_fn() -> dict:
        result = base_run()
        result["fault_trace"] = list(injector.trace)
        result["detector_events"] = [
            (e.at, e.device, e.kind) for e in home.detector.events
        ]
        return result

    return home, run_fn


def canary_upgrade(seed: int):
    """examples/canary_upgrade.py: hot v1 -> v2 pose-detector upgrade,
    judged on mirrored live traffic, auto-promoted mid-stream."""
    from ..liveops import CanaryPolicy

    home = VideoPipe.paper_testbed(seed=seed)
    home.enable_liveops()
    _, pipeline = _deploy_fitness(home)
    base_run = _run(home, pipeline)

    def run_fn() -> dict:
        home.run(until=1.5)
        upgrade = home.upgrade_module(
            pipeline, "pose_detector_module",
            policy=CanaryPolicy(min_mirrored=4, decision_timeout_s=3.0),
        )
        result = base_run()
        result["upgrade"] = {
            "state": upgrade.state,
            "mirrored_frames": upgrade.mirrored_frames,
            "decided_at": upgrade.decided_at,
            "live_version": pipeline.wiring.version_of(
                "pose_detector_module"
            ),
        }
        result["lineage_frames"] = home.liveops.lineage.frame_count
        return result

    return home, run_fn


#: example filename -> scenario; the coverage test keeps this exhaustive.
EXAMPLE_SCENARIOS = {
    "quickstart.py": quickstart,
    "fitness_app.py": fitness_app,
    "gesture_control.py": gesture_control,
    "fall_detection.py": fall_detection,
    "custom_pipeline.py": custom_pipeline,
    "monitoring_autoscaling.py": monitoring_autoscaling,
    "object_tracking.py": object_tracking,
    "chaos_fitness.py": chaos_fitness,
    "multi_camera_scene.py": multi_camera_scene,
    "canary_upgrade.py": canary_upgrade,
}
