"""The determinism harness: run a scenario twice, diff the event streams.

The whole reproduction rests on the kernel being deterministic under a
seed: Table 2 numbers, Fig. 6 bars and every regression test assume that
re-running a scenario reproduces it exactly. Nondeterminism sneaks in
through Python identity — ``id()``-keyed dicts, set iteration, hash
randomization — and is invisible to output-level assertions until the
iteration order happens to differ. This harness catches it structurally:
an :class:`EventTap` records every kernel event as it is scheduled and
executed, two runs under the same seed are diffed record-by-record, and
the first divergence is reported with both sides' labels.

A scenario is any callable ``scenario(seed) -> (home, run_fn)`` where
``run_fn()`` drives the run and returns a JSON-able fingerprint (metrics
counters, latencies, trace digests...). :mod:`repro.audit.scenarios` wraps
every ``examples/`` script as one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

#: One tap record: (phase, event_time, priority, seq, label) where phase is
#: "S" (scheduled, stamped with the schedule-time clock) or "X" (executed).
TapRecord = tuple

#: A scenario factory: seed -> (home, run_fn). ``home`` exposes ``.kernel``;
#: ``run_fn()`` returns the scenario's fingerprint.
Scenario = Callable[[int], tuple]


class EventTap:
    """A passive kernel observer recording the full event stream.

    Labels are derived from the callback's qualified name plus the owning
    object's ``name`` attribute when present (e.g. a process or signal
    name) — enough to tell *which* component diverged without holding
    references to the objects themselves.
    """

    def __init__(self, limit: int = 2_000_000) -> None:
        self.limit = limit
        self.records: list[TapRecord] = []
        self.overflow = 0

    @staticmethod
    def _label(event: Any) -> str:
        callback = event.callback
        qualname = getattr(callback, "__qualname__", type(callback).__name__)
        owner = getattr(callback, "__self__", None)
        owner_name = getattr(owner, "name", None)
        if isinstance(owner_name, str):
            return f"{qualname}[{owner_name}]"
        return qualname

    def _record(self, phase: str, now: float, event: Any) -> None:
        if len(self.records) >= self.limit:
            self.overflow += 1
            return
        self.records.append(
            (phase, event.time, event.priority, event.seq, self._label(event))
        )

    def on_schedule(self, now: float, event: Any) -> None:
        self._record("S", now, event)

    def on_execute(self, now: float, event: Any) -> None:
        self._record("X", now, event)


@dataclass(slots=True)
class Divergence:
    """The first point where two same-seed runs disagree."""

    index: int
    first: TapRecord | None
    second: TapRecord | None

    def describe(self) -> str:
        def fmt(record: TapRecord | None) -> str:
            if record is None:
                return "<stream ended>"
            phase, time, priority, seq, label = record
            kind = "scheduled" if phase == "S" else "executed"
            return f"{kind} t={time:.9f}s prio={priority} seq={seq} {label}"

        return (
            f"event streams diverge at record {self.index}:\n"
            f"  run 1: {fmt(self.first)}\n"
            f"  run 2: {fmt(self.second)}"
        )


@dataclass(slots=True)
class RunRecord:
    """One recorded run: its event stream and the scenario fingerprint."""

    events: list[TapRecord]
    fingerprint: Any
    overflow: int = 0


@dataclass(slots=True)
class DeterminismReport:
    """The verdict on a scenario, plus enough detail to act on a failure."""

    scenario: str
    seed: int
    ok: bool
    event_count: int
    divergence: Divergence | None = None
    fingerprints_match: bool = True
    fingerprints: tuple = field(default_factory=tuple)

    def describe(self) -> str:
        if self.ok:
            return (
                f"{self.scenario} (seed {self.seed}): deterministic over"
                f" {self.event_count} kernel events"
            )
        lines = [f"{self.scenario} (seed {self.seed}): NOT deterministic"]
        if self.divergence is not None:
            lines.append(self.divergence.describe())
        if not self.fingerprints_match:
            lines.append(
                "fingerprints differ:\n"
                f"  run 1: {self.fingerprints[0]!r}\n"
                f"  run 2: {self.fingerprints[1]!r}"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-able form for CI artifacts."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "ok": self.ok,
            "event_count": self.event_count,
            "fingerprints_match": self.fingerprints_match,
            "divergence": (
                None if self.divergence is None else self.divergence.describe()
            ),
        }


def record_scenario(scenario: Scenario, seed: int) -> RunRecord:
    """Run *scenario* once under *seed* with an event tap attached."""
    home, run_fn = scenario(seed)
    tap = EventTap()
    home.kernel.add_observer(tap)
    try:
        fingerprint = run_fn()
    finally:
        home.kernel.remove_observer(tap)
    return RunRecord(events=tap.records, fingerprint=fingerprint,
                     overflow=tap.overflow)


def first_divergence(
    first: list[TapRecord], second: list[TapRecord]
) -> Divergence | None:
    """The first index where two event streams differ, or ``None``."""
    for index, (a, b) in enumerate(zip(first, second)):
        if a != b:
            return Divergence(index=index, first=a, second=b)
    if len(first) != len(second):
        shorter = min(len(first), len(second))
        return Divergence(
            index=shorter,
            first=first[shorter] if len(first) > shorter else None,
            second=second[shorter] if len(second) > shorter else None,
        )
    return None


def check_determinism(
    scenario: Scenario, seed: int = 7, name: str | None = None
) -> DeterminismReport:
    """Run *scenario* twice under *seed*; diff event streams and
    fingerprints; report the first divergence if any."""
    scenario_name = name or getattr(scenario, "__name__", "scenario")
    run1 = record_scenario(scenario, seed)
    run2 = record_scenario(scenario, seed)
    divergence = first_divergence(run1.events, run2.events)
    fingerprints_match = run1.fingerprint == run2.fingerprint
    ok = divergence is None and fingerprints_match
    return DeterminismReport(
        scenario=scenario_name,
        seed=seed,
        ok=ok,
        event_count=len(run1.events),
        divergence=divergence,
        fingerprints_match=fingerprints_match,
        fingerprints=(run1.fingerprint, run2.fingerprint),
    )
