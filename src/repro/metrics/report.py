"""Plain-text tables for benchmark output.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render an aligned monospace table."""
    def fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def format_comparison(
    label: str,
    paper_value: Any,
    measured_value: Any,
    note: str = "",
) -> str:
    """One 'paper vs measured' line for EXPERIMENTS.md-style output."""
    suffix = f"  ({note})" if note else ""
    return f"{label}: paper={paper_value} measured={measured_value}{suffix}"
