"""Instrumentation: latency summaries, rate meters, collectors, reports."""

from .collector import MetricsCollector
from .recovery import RecoveryTracker
from .report import format_comparison, format_table
from .stats import RateMeter, Summary, format_histogram, summarize, weighted_mean

__all__ = [
    "MetricsCollector",
    "RateMeter",
    "RecoveryTracker",
    "Summary",
    "format_histogram",
    "format_comparison",
    "format_table",
    "summarize",
    "weighted_mean",
]
