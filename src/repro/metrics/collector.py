"""Cross-component metrics collection.

One :class:`MetricsCollector` per pipeline gathers per-stage latencies
(Fig. 6's bars), end-to-end frame completions (Table 2's FPS), and free-form
counters. Components record through the module context; benchmarks read the
summaries.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from .stats import RateMeter, Summary, summarize


class MetricsCollector:
    """Per-pipeline timing and counting sink."""

    def __init__(self, name: str = "pipeline") -> None:
        self.name = name
        self._stages: dict[str, list[float]] = defaultdict(list)
        self._counters: dict[str, int] = defaultdict(int)
        self.completions = RateMeter()
        self._frame_started: dict[int, float] = {}
        self._frame_latencies: list[float] = []
        self._latency_events: list[tuple[float, float]] = []
        #: The home's :class:`~repro.audit.auditor.InvariantAuditor`, or
        #: ``None`` while auditing is off (set by ``watch_metrics``).
        self.auditor: Any = None

    # -- stage latencies ----------------------------------------------------
    def record_stage(self, stage: str, seconds: float) -> None:
        """One sample of a named pipeline stage's latency."""
        self._stages[stage].append(seconds)

    def stage_names(self) -> list[str]:
        return sorted(self._stages)

    def stage_samples(self, stage: str) -> list[float]:
        return list(self._stages[stage])

    def stage_summary(self, stage: str) -> Summary:
        """Summary for one stage; :meth:`Summary.empty` when no samples
        were recorded (e.g. every frame died under a chaos plan)."""
        samples = self._stages.get(stage)
        if not samples:
            return Summary.empty()
        return summarize(samples)

    def recent_stage_mean(self, stage: str, window: int = 20) -> float | None:
        """Mean of the last *window* samples of one stage, in seconds, or
        ``None`` when the stage has no samples. The online placement
        optimizer calibrates its cost model with this — recent samples
        track the running system where the all-time mean still remembers a
        cold start or a load spike long past."""
        samples = self._stages.get(stage)
        if not samples:
            return None
        tail = samples[-window:]
        return sum(tail) / len(tail)

    def stage_means_ms(self) -> dict[str, float]:
        """Mean latency per stage in milliseconds (Fig. 6's quantity)."""
        return {
            stage: summarize(samples).mean * 1e3
            for stage, samples in self._stages.items()
            if samples
        }

    # -- end-to-end frames ----------------------------------------------------
    def frame_entered(self, frame_id: int, now: float) -> None:
        """A frame was admitted into the pipeline at the source."""
        self._frame_started[frame_id] = now
        self._counters["frames_entered"] += 1
        if self.auditor is not None:
            self.auditor.on_frame_entered(self, frame_id)

    def frame_completed(self, frame_id: int, now: float) -> None:
        """The final module finished the frame; updates FPS and latency."""
        self.completions.tick(now)
        started = self._frame_started.pop(frame_id, None)
        if started is not None:
            self._frame_latencies.append(now - started)
            self._latency_events.append((now, now - started))
        self._counters["frames_completed"] += 1
        if self.auditor is not None:
            self.auditor.on_frame_completed(self, frame_id)

    def frame_dropped(self, frame_id: int, now: float) -> None:
        """A frame left the pipeline without completing (dropped at the
        source, lost with a crashed device's mailbox, discarded during a
        migration). Prunes the start entry — without this, every such frame
        leaks a ``_frame_started`` slot for the rest of the run — and
        counts it under ``frames_dropped``. Safe for frames that were never
        admitted (the source's pre-admission drops)."""
        self._frame_started.pop(frame_id, None)
        self._counters["frames_dropped"] += 1
        if self.auditor is not None:
            self.auditor.on_frame_dropped(self, frame_id)

    @property
    def frames_in_flight(self) -> int:
        """Frames admitted but neither completed nor dropped yet."""
        return len(self._frame_started)

    def frame_in_flight(self, frame_id: int) -> bool:
        """Whether *frame_id* is admitted and not yet completed or dropped.

        Drain paths (migration, crash, rollback, dead letters) guard their
        drop accounting on this: in a fan-out/fan-in DAG the same admitted
        frame can sit in several mailboxes at once, and only its *first*
        settlement may count — every event copy still releases its own
        frame references, but the frame leaves the pipeline exactly once."""
        return frame_id in self._frame_started

    def throughput_fps(self, end_time: float, warmup_s: float = 0.0) -> float:
        """Completed frames per second over the measurement window."""
        return self.completions.rate(end_time, warmup_s)

    def total_latency_summary(self) -> Summary:
        """Source-to-completion latency ('Total Duration' in Fig. 6);
        :meth:`Summary.empty` when no frame ever completed."""
        if not self._frame_latencies:
            return Summary.empty()
        return summarize(self._frame_latencies)

    @property
    def total_latencies(self) -> list[float]:
        return list(self._frame_latencies)

    def latency_events(self) -> list[tuple[float, float]]:
        """``(completion_time, latency_s)`` per completed frame, in
        completion order. The SLO machinery windows over this to compute
        delivered FPS and tail latency; treat the returned list as
        read-only (it is the live record, not a copy)."""
        return self._latency_events

    def delivered_fps(self, now: float, window_s: float) -> float:
        """Completed frames per second over the trailing *window_s*."""
        if window_s <= 0:
            return 0.0
        cutoff = now - window_s
        count = 0
        for at, _ in reversed(self._latency_events):
            if at <= cutoff:
                break
            count += 1
        return count / window_s

    # -- counters ------------------------------------------------------------
    def increment(self, counter: str, amount: int = 1) -> None:
        self._counters[counter] += amount

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def counters(self) -> dict[str, int]:
        return dict(self._counters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MetricsCollector {self.name}: {self.counter('frames_completed')}"
            f" frames, stages {self.stage_names()}>"
        )
