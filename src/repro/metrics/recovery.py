"""Recovery accounting: one place that answers "how did the home cope?".

Resilience counters live where the mechanisms live — retries on the RPC
clients, failovers on the stubs, detections and MTTR on the failure
detector, faults on the injector, migrations on pipeline metrics. The
:class:`RecoveryTracker` aggregates whichever of those a scenario wires in
and renders a single report dict, so chaos tests and the recovery benchmark
read one structure instead of spelunking five layers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.injector import ChaosInjector
    from ..monitor.failure_detector import FailureDetector
    from ..net.rpc import RpcClient
    from ..pipeline.pipeline import Pipeline
    from ..services.stubs import RemoteServiceStub


class RecoveryTracker:
    """Aggregates resilience counters from across the stack."""

    def __init__(self) -> None:
        self._detector: "FailureDetector | None" = None
        self._injector: "ChaosInjector | None" = None
        self._pipelines: list["Pipeline"] = []
        self._stubs: list["RemoteServiceStub"] = []
        self._clients: list["RpcClient"] = []

    # -- wiring ----------------------------------------------------------------
    def watch_detector(self, detector: "FailureDetector") -> "RecoveryTracker":
        self._detector = detector
        return self

    def watch_injector(self, injector: "ChaosInjector") -> "RecoveryTracker":
        self._injector = injector
        return self

    def watch_pipeline(self, pipeline: "Pipeline") -> "RecoveryTracker":
        self._pipelines.append(pipeline)
        return self

    def watch_stub(self, stub: "RemoteServiceStub") -> "RecoveryTracker":
        self._stubs.append(stub)
        self._clients.append(stub._client)
        return self

    def watch_client(self, client: "RpcClient") -> "RecoveryTracker":
        self._clients.append(client)
        return self

    # -- report ----------------------------------------------------------------
    def report(self) -> dict[str, Any]:
        """Everything a post-mortem wants, in one flat dict."""
        out: dict[str, Any] = {
            "faults_injected": 0,
            "detections": 0,
            "recoveries": 0,
            "mttr_mean_s": 0.0,
            "mttr_max_s": 0.0,
            "rpc_retries": 0,
            "rpc_timeouts": 0,
            "circuit_opens": 0,
            "circuit_rejections": 0,
            "failovers": 0,
            "recovery_migrations": 0,
        }
        if self._injector is not None:
            out["faults_injected"] = self._injector.faults_injected
        if self._detector is not None:
            out["detections"] = self._detector.detections
            out["recoveries"] = self._detector.recoveries
            out["mttr_mean_s"] = self._detector.mttr_mean()
            out["mttr_max_s"] = self._detector.mttr_max()
        out["rpc_retries"] = sum(c.retries for c in self._clients)
        out["rpc_timeouts"] = sum(c.timeouts for c in self._clients)
        out["circuit_opens"] = sum(c.circuit_opens for c in self._clients)
        out["circuit_rejections"] = sum(
            c.circuit_rejections for c in self._clients
        )
        out["failovers"] = sum(s.failovers for s in self._stubs)
        out["recovery_migrations"] = sum(
            p.metrics.counter("recovery_migrations") for p in self._pipelines
        )
        return out
