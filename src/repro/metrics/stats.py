"""Summary statistics for latency samples."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-plus summary of a sample set (seconds or any unit)."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p90: float
    p99: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.maximum,
        }

    @classmethod
    def empty(cls) -> "Summary":
        """The zero-sample summary (``count == 0``, all statistics 0.0).

        Returned by collector-level summaries when nothing was recorded —
        e.g. a chaos plan killed every frame — so report code can render a
        row instead of crashing. The bare :func:`summarize` still raises on
        empty input: silently producing zeros there would mask missing data
        at the call sites that *do* expect samples.
        """
        return cls(count=0, mean=0.0, std=0.0, minimum=0.0,
                   p50=0.0, p90=0.0, p99=0.0, maximum=0.0)

    def scaled(self, factor: float) -> "Summary":
        """Unit conversion (e.g. seconds -> milliseconds with factor=1e3)."""
        return Summary(
            count=self.count,
            mean=self.mean * factor,
            std=self.std * factor,
            minimum=self.minimum * factor,
            p50=self.p50 * factor,
            p90=self.p90 * factor,
            p99=self.p99 * factor,
            maximum=self.maximum * factor,
        )


def summarize(values) -> Summary:
    """Compute a :class:`Summary`; raises on an empty sample."""
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        count=int(data.size),
        mean=float(data.mean()),
        std=float(data.std()),
        minimum=float(data.min()),
        p50=float(np.percentile(data, 50)),
        p90=float(np.percentile(data, 90)),
        p99=float(np.percentile(data, 99)),
        maximum=float(data.max()),
    )


def weighted_mean(counts: dict) -> float:
    """Mean of a value -> count histogram (0.0 when empty). Used for the
    batch-size distributions the fast-path ablation reports."""
    total = sum(counts.values())
    if total == 0:
        return 0.0
    return sum(value * count for value, count in counts.items()) / total


def format_histogram(counts: dict) -> str:
    """Render a value -> count histogram compactly: ``1:x12 4:x3``."""
    if not counts:
        return "-"
    return " ".join(f"{value}:x{counts[value]}" for value in sorted(counts))


class RateMeter:
    """Counts events over simulated time; reports steady-state rates.

    ``rate(warmup_s)`` excludes an initial warmup window so cold-start
    effects (model loading, pipeline fill) don't bias FPS numbers.
    """

    def __init__(self) -> None:
        self.timestamps: list[float] = []

    def tick(self, now: float) -> None:
        self.timestamps.append(now)

    @property
    def count(self) -> int:
        return len(self.timestamps)

    def rate(self, end_time: float, warmup_s: float = 0.0) -> float:
        """Events per second between ``warmup_s`` and ``end_time``.

        Both window edges are enforced: ticks after ``end_time`` (a meter
        read mid-run, or reused across measurement windows) don't inflate
        the rate they are outside of.
        """
        window = end_time - warmup_s
        if window <= 0:
            raise ValueError("measurement window is empty")
        counted = sum(1 for t in self.timestamps if warmup_s <= t <= end_time)
        return counted / window
