"""Exception hierarchy for the VideoPipe reproduction.

Every package raises subclasses of :class:`ReproError` so callers can catch
library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event kernel (e.g. scheduling in
    the past, running a finished kernel)."""


class Interrupt(ReproError):
    """Thrown into a simulated process when another process interrupts it.

    The interrupting party may attach an arbitrary ``cause`` describing why
    the interrupt happened.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class NetworkError(ReproError):
    """Base class for transport-layer failures."""


class AddressError(NetworkError):
    """Raised for malformed or unresolvable endpoint addresses."""


class LinkDown(NetworkError):
    """Raised when a message is sent over a link that is administratively
    down or between unconnected devices."""


class DeliveryError(NetworkError):
    """Raised when a message could not be delivered (dropped, no listener)."""


class RpcError(NetworkError):
    """Raised when a remote procedure call fails on the remote side or
    times out."""

    def __init__(self, message: str, *, remote: bool = False) -> None:
        super().__init__(message)
        self.remote = remote


class CircuitOpenError(RpcError):
    """Raised (fast, without touching the network) when the per-target
    circuit breaker is open because the target kept failing."""

    def __init__(self, message: str) -> None:
        super().__init__(message, remote=False)


class FaultError(ReproError):
    """Raised for invalid fault plans (unknown fault kind, bad target,
    events scheduled in the past)."""


class ConfigError(ReproError):
    """Raised for invalid pipeline configuration (bad DAG, unknown service,
    unparsable config text)."""


class PlacementError(ReproError):
    """Raised when no valid assignment of modules/services to devices exists."""


class DeploymentError(ReproError):
    """Raised when deploying a validated pipeline onto devices fails."""


class AdmissionError(DeploymentError):
    """Raised when SLO admission control rejects a deploy whose predicted
    cost would overload a device and so violate existing pipelines' SLOs.
    Carries the typed :class:`~repro.slo.AdmissionDecision` as
    ``decision``."""

    def __init__(self, message: str, decision: object = None) -> None:
        super().__init__(message)
        self.decision = decision


class ServiceError(ReproError):
    """Raised by the service framework (unknown service, no live replica,
    a service handler crashed)."""


class FrameStoreError(ReproError):
    """Raised for invalid frame-reference usage (unknown id, double free)."""


class StaleHandleError(FrameStoreError):
    """Raised when an arena handle is dereferenced after its slot was
    retired (evicted, migrated off-device, or released) — the generation
    counter on the slot no longer matches the handle's. Carries the retire
    ``reason`` so the caller (and the auditor) can tell use-after-evict
    from use-after-migrate from double-release."""

    def __init__(self, message: str, reason: str = "unknown") -> None:
        super().__init__(message)
        self.reason = reason


class AuditError(ReproError):
    """Raised by the invariant auditor in strict mode when a conservation
    law or ordering invariant is violated (the default is to record the
    violation and keep running)."""


class DeviceError(ReproError):
    """Raised for invalid device operations (deploying a container service
    onto a device without container support, unknown device)."""


class FleetShardError(ReproError):
    """Raised by the fleet shard coordinator when a worker process dies or
    its kernel raises; names the failed shard so a 4000-home run doesn't
    fail with a bare pickle traceback."""

    def __init__(self, message: str, shard: int) -> None:
        super().__init__(message)
        self.shard = shard
