"""The device CPU model: contended, heterogeneous, slightly noisy.

Every piece of simulated work — codec passes, module logic, service
inference — occupies one core for the work's reference duration scaled by
the device's :attr:`~repro.devices.spec.DeviceSpec.cpu_factor`, with
lognormal jitter. Contention emerges naturally: more concurrent work than
cores means queueing, which is exactly why the paper offloads pose detection
from the phone ("computational resources on the phone are not adequate for
pose detection", §4.1).
"""

from __future__ import annotations

import numpy as np

from ..sim.kernel import Kernel
from ..sim.resources import Resource
from ..sim.rng import lognormal_around
from ..sim.signals import Signal
from .spec import DeviceSpec


class Cpu:
    """A core pool executing reference-time work items."""

    def __init__(self, kernel: Kernel, spec: DeviceSpec, rng: np.random.Generator) -> None:
        self.kernel = kernel
        self.spec = spec
        self.rng = rng
        self.cores = Resource(kernel, spec.cores, name=f"{spec.name}.cpu")
        self.jobs_completed = 0
        self.busy_seconds = 0.0

    def execute(self, reference_seconds: float, priority: int = 0) -> Signal:
        """Run a job that takes *reference_seconds* on the reference machine.

        Returns a signal resolving (with the actual duration) when the job
        finishes; the job queues if all cores are busy.
        """
        done = self.kernel.signal(name=f"{self.spec.name}.cpu.job")
        duration = self.sample_duration(reference_seconds)
        self.kernel.process(self._run(duration, priority, done), name="cpu.job")
        return done

    def execute_fixed(self, seconds: float, priority: int = 0) -> Signal:
        """Run a job whose duration does **not** scale with ``cpu_factor``
        — hardware-accelerated work such as JPEG encode/decode, which every
        device in the paper's testbed offloads to a codec block. The job
        still occupies a core (drives contention) and keeps jitter.
        """
        done = self.kernel.signal(name=f"{self.spec.name}.cpu.fixed")
        if seconds == 0.0:
            duration = 0.0
        else:
            duration = lognormal_around(self.rng, seconds, self.spec.compute_jitter_cv)
        self.kernel.process(self._run(duration, priority, done), name="cpu.fixed")
        return done

    def sample_duration(self, reference_seconds: float) -> float:
        """Draw the actual duration for a reference-time job (no queueing)."""
        scaled = self.spec.compute_time(reference_seconds)
        if scaled == 0.0:
            return 0.0
        return lognormal_around(self.rng, scaled, self.spec.compute_jitter_cv)

    def _run(self, duration: float, priority: int, done: Signal):
        grant = yield self.cores.request(priority=priority)
        yield duration
        self.cores.release(grant)
        self.jobs_completed += 1
        self.busy_seconds += duration
        done.succeed(duration)

    def utilization(self) -> float:
        """Average busy fraction across cores since creation."""
        return self.cores.utilization()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Cpu {self.spec.name} {self.cores.in_use}/{self.spec.cores} busy>"
