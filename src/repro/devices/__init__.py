"""Heterogeneous edge devices: specs, presets, CPU model."""

from .catalog import (
    CATALOG,
    cloud_server,
    desktop,
    flagship_phone_2018,
    laptop,
    make_spec,
    smart_fridge,
    smart_tv_4k,
    smartwatch,
)
from .cpu import Cpu
from .device import Device
from .spec import DeviceSpec

__all__ = [
    "CATALOG",
    "Cpu",
    "Device",
    "DeviceSpec",
    "cloud_server",
    "desktop",
    "flagship_phone_2018",
    "laptop",
    "make_spec",
    "smart_fridge",
    "smart_tv_4k",
    "smartwatch",
]
