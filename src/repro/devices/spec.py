"""Device specifications.

The paper's premise: the home is full of heterogeneous devices — phones and
tablets, TVs and fridges on Tizen-like OSes, laptops and desktops — some of
which "cannot run container-based applications but can support a high-level
language … sandboxed within a virtual execution environment" (§1). A
:class:`DeviceSpec` captures exactly the properties that matter to VideoPipe:
relative CPU speed, core count, and whether containers (hence services) can
run there.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeviceError


@dataclass(frozen=True, slots=True)
class DeviceSpec:
    """Static capabilities of one edge device.

    Attributes:
        name: unique device name (doubles as its network identity).
        kind: free-form class ("phone", "desktop", "tv", ...).
        cpu_factor: compute-time multiplier relative to the reference
            desktop (2.0 = takes twice as long).
        cores: number of CPU cores the runtime may occupy.
        memory_mb: main memory (placement constraint).
        supports_containers: whether container services can be deployed.
        os: descriptive OS label.
        compute_jitter_cv: coefficient of variation on compute times
            (thermal throttling, scheduler noise).
    """

    name: str
    kind: str = "generic"
    cpu_factor: float = 1.0
    cores: int = 4
    memory_mb: int = 4096
    supports_containers: bool = False
    os: str = "linux"
    compute_jitter_cv: float = 0.10

    def __post_init__(self) -> None:
        if not self.name:
            raise DeviceError("device needs a name")
        if self.cpu_factor <= 0:
            raise DeviceError("cpu_factor must be positive")
        if self.cores < 1:
            raise DeviceError("cores must be >= 1")
        if self.memory_mb < 1:
            raise DeviceError("memory_mb must be >= 1")

    def compute_time(self, reference_seconds: float) -> float:
        """Expected wall time on this device for work that takes
        *reference_seconds* on the reference desktop."""
        if reference_seconds < 0:
            raise DeviceError("compute time must be non-negative")
        return reference_seconds * self.cpu_factor
