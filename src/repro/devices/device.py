"""A device: the unit that joins the network and hosts runtime components.

Each :class:`Device` owns a CPU model, a frame store (the reference-id pool
shared by co-located modules and services), and — once the deployer places
them — a module runtime and zero or more service hosts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import DeviceError
from ..frames.framestore import FrameStore
from ..sim.kernel import Kernel
from ..sim.rng import RngStreams, ScopedRng
from .cpu import Cpu
from .spec import DeviceSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.moduleruntime import ModuleRuntime
    from ..services.host import ServiceHost


class Device:
    """One edge device participating in pipelines."""

    def __init__(
        self,
        kernel: Kernel,
        spec: DeviceSpec,
        rng: RngStreams | ScopedRng,
    ) -> None:
        self.kernel = kernel
        self.spec = spec
        self.rng = rng.spawn(f"device/{spec.name}")
        self.cpu = Cpu(kernel, spec, self.rng.stream("cpu"))
        self.frame_store = FrameStore(spec.name, capacity=512)
        #: Filled by the deployer.
        self.runtime: "ModuleRuntime | None" = None
        self.service_hosts: dict[str, "ServiceHost"] = {}
        #: The device's shared-memory frame arena, or ``None`` until
        #: :meth:`enable_arena` backs the frame store with one.
        self.arena = None
        #: The device's shared replica pool, or ``None`` until
        #: :meth:`enable_replica_pool` creates it.
        self.replica_pool = None
        #: Power state; flipped by :meth:`crash` / :meth:`restart`.
        self.up = True
        self.crash_count = 0

    @property
    def name(self) -> str:
        return self.spec.name

    # -- failure lifecycle -----------------------------------------------------
    def crash(self) -> None:
        """Power loss: every hosted service drops its in-flight work and
        unbinds its endpoint; queued module events are lost with RAM.
        Idempotent. The network side (refusing deliveries) is handled by
        :meth:`Topology.set_device_up`, which callers flip alongside this —
        see :meth:`repro.core.videopipe.VideoPipe.crash_device`."""
        if not self.up:
            return
        self.up = False
        self.crash_count += 1
        for host in self.service_hosts.values():
            host.crash()
        if self.runtime is not None:
            self.runtime.drop_queued_events()

    def restart(self) -> None:
        """Power restored: service hosts rebind and accept work again.
        Idempotent."""
        if self.up:
            return
        self.up = True
        for host in self.service_hosts.values():
            host.restart()

    # -- perf subsystems ------------------------------------------------------
    def enable_arena(self, capacity_bytes: int | None = None):
        """Back this device's frame store with a generation-counted
        :class:`~repro.frames.arena.FrameArena` (idempotent; returns it)."""
        if self.arena is None:
            from ..frames.arena import FrameArena

            self.arena = FrameArena(self.name, capacity_bytes=capacity_bytes)
            self.frame_store.attach_arena(self.arena)
        return self.arena

    def enable_replica_pool(self, slots: int | None = None):
        """Create the device's shared :class:`~repro.services.pool
        .ReplicaPool` (one slot per core by default; idempotent) and attach
        every currently idle service host to it. Returns the pool."""
        if self.replica_pool is None:
            from ..services.pool import ReplicaPool

            self.replica_pool = ReplicaPool.for_device(
                self.kernel, self, slots=slots
            )
        for host in self.service_hosts.values():
            if host.pool is None:
                host.attach_pool(self.replica_pool)
        return self.replica_pool

    @property
    def supports_containers(self) -> bool:
        return self.spec.supports_containers

    def local_rng(self, purpose: str) -> np.random.Generator:
        """A deterministic RNG stream scoped to this device and purpose."""
        return self.rng.stream(purpose)

    def register_service_host(self, host: "ServiceHost") -> None:
        """Attach a container service host (container-capable devices only)."""
        if not self.supports_containers:
            raise DeviceError(
                f"{self.name!r} ({self.spec.kind}) cannot run containers;"
                " services must be placed on a container-capable device"
            )
        if host.service_name in self.service_hosts:
            raise DeviceError(
                f"service {host.service_name!r} already hosted on {self.name!r}"
            )
        self.service_hosts[host.service_name] = host

    def register_native_service_host(self, host: "ServiceHost") -> None:
        """Attach a *native* service (paper Fig. 4's blue boxes): lightweight
        services that run outside containers and so fit any device."""
        if host.service_name in self.service_hosts:
            raise DeviceError(
                f"service {host.service_name!r} already hosted on {self.name!r}"
            )
        self.service_hosts[host.service_name] = host

    def has_service(self, service_name: str) -> bool:
        return service_name in self.service_hosts

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        containers = "containers" if self.supports_containers else "no-containers"
        return f"<Device {self.name} ({self.spec.kind}, {containers})>"
