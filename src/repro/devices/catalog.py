"""Preset device specs matching the paper's testbed and the wider home.

The evaluation hardware (§5.1): "The phone is one of the flagship Android
phones in 2018 with 6GB of main memory and 128 GB of storage", a desktop
that hosts the container services, and a 4K TV that renders the output.
"""

from __future__ import annotations

from .spec import DeviceSpec


def flagship_phone_2018(name: str = "phone") -> DeviceSpec:
    """The paper's capture device: capable, but no containers and a mobile
    SoC ≈2.5x slower than the desktop on vision workloads."""
    return DeviceSpec(
        name=name,
        kind="phone",
        cpu_factor=2.5,
        cores=8,
        memory_mb=6144,
        supports_containers=False,
        os="android",
        compute_jitter_cv=0.15,
    )


def desktop(name: str = "desktop") -> DeviceSpec:
    """The reference machine (cpu_factor 1.0); runs Docker services."""
    return DeviceSpec(
        name=name,
        kind="desktop",
        cpu_factor=1.0,
        cores=8,
        memory_mb=16384,
        supports_containers=True,
        os="linux",
        compute_jitter_cv=0.08,
    )


def laptop(name: str = "laptop") -> DeviceSpec:
    """A container-capable laptop, a bit slower than the desktop."""
    return DeviceSpec(
        name=name,
        kind="laptop",
        cpu_factor=1.4,
        cores=4,
        memory_mb=8192,
        supports_containers=True,
        os="linux",
        compute_jitter_cv=0.12,
    )


def tablet(name: str = "tablet") -> DeviceSpec:
    """A container-capable tablet: between the laptop and the phone —
    common as the second-fastest device in the fleet harness's
    heterogeneous homes."""
    return DeviceSpec(
        name=name,
        kind="tablet",
        cpu_factor=2.0,
        cores=6,
        memory_mb=4096,
        supports_containers=True,
        os="android",
        compute_jitter_cv=0.15,
    )


def smart_tv_4k(name: str = "tv") -> DeviceSpec:
    """The display device: a Tizen-like TV; modules only, no containers."""
    return DeviceSpec(
        name=name,
        kind="tv",
        cpu_factor=3.0,
        cores=4,
        memory_mb=3072,
        supports_containers=False,
        os="tizen",
        compute_jitter_cv=0.12,
    )


def smart_fridge(name: str = "fridge") -> DeviceSpec:
    """A constrained appliance that can still host lightweight modules."""
    return DeviceSpec(
        name=name,
        kind="fridge",
        cpu_factor=5.0,
        cores=2,
        memory_mb=1024,
        supports_containers=False,
        os="tizen",
        compute_jitter_cv=0.20,
    )


def cloud_server(name: str = "cloud") -> DeviceSpec:
    """A shared-cloud-tier slice: a metro edge-datacenter server class far
    faster than any home device, reachable only across a metered WAN link
    (:meth:`Topology.add_cloud <repro.net.topology.Topology.add_cloud>`).
    Many homes call replicas of heavy services hosted here; the fleet cost
    model bills its CPU seconds and WAN egress per home."""
    return DeviceSpec(
        name=name,
        kind="cloud",
        cpu_factor=0.4,
        cores=32,
        memory_mb=131072,
        supports_containers=True,
        os="linux",
        compute_jitter_cv=0.05,
    )


def smartwatch(name: str = "watch") -> DeviceSpec:
    """The most constrained runtime target."""
    return DeviceSpec(
        name=name,
        kind="watch",
        cpu_factor=8.0,
        cores=2,
        memory_mb=768,
        supports_containers=False,
        os="tizen",
        compute_jitter_cv=0.25,
    )


#: Factory lookup by kind.
CATALOG = {
    "phone": flagship_phone_2018,
    "desktop": desktop,
    "laptop": laptop,
    "tablet": tablet,
    "tv": smart_tv_4k,
    "fridge": smart_fridge,
    "watch": smartwatch,
    "cloud": cloud_server,
}


def make_spec(kind: str, name: str | None = None) -> DeviceSpec:
    """Instantiate a preset spec by kind, optionally renamed."""
    try:
        factory = CATALOG[kind]
    except KeyError:
        raise ValueError(f"unknown device kind {kind!r}; known: {sorted(CATALOG)}")
    return factory(name or kind)
