"""The uniform module runtime: Table 1's interface on every device."""

from .context import ModuleContext
from .events import DATA, READY_SIGNAL, ModuleEvent
from .module import FunctionModule, Module
from .moduleruntime import DeployedModule, ModuleRuntime
from .registry import (
    create_module,
    is_registered,
    register_module,
    registered_modules,
)
from .wiring import PipelineWiring

__all__ = [
    "DATA",
    "DeployedModule",
    "FunctionModule",
    "Module",
    "ModuleContext",
    "ModuleEvent",
    "ModuleRuntime",
    "PipelineWiring",
    "READY_SIGNAL",
    "create_module",
    "is_registered",
    "register_module",
    "registered_modules",
]
