"""The per-device module runtime.

"We design and implement the same runtime environments and input/output
interfaces … With this feature, any processing units in the video
processing pipeline can be executed on any device" (§1). Every device runs
one :class:`ModuleRuntime`; deployed modules get a mailbox and a worker
process that delivers events **one at a time** (the Duktape-context
single-threaded semantics), charging the device CPU for codec work and the
module's own logic.
"""

from __future__ import annotations

import inspect
from collections import deque
from typing import TYPE_CHECKING, Any, Callable

from ..devices.device import Device
from ..errors import DeploymentError
from ..frames.payloads import (
    decode_frames_from_wire,
    encode_refs_for_wire,
    frame_ids_in,
    release_refs,
)
from ..net.address import Address
from ..net.message import H_TRACE, KIND_SIGNAL, Message
from ..net.wire import ENVELOPE_OVERHEAD
from ..net.transport import Transport
from ..sim.kernel import Kernel
from ..sim.resources import Store
from ..sim.signals import Signal
from ..trace.span import CAT_COMPUTE, CAT_QUEUE, CAT_WIRE, SpanContext
from .context import ModuleContext
from .events import DATA, READY_SIGNAL, ModuleEvent
from .module import Module

if TYPE_CHECKING:  # pragma: no cover
    from ..services.stubs import ServiceStub
    from .wiring import PipelineWiring


class DeployedModule:
    """One module instance running on one device."""

    def __init__(
        self,
        runtime: "ModuleRuntime",
        name: str,
        module: Module,
        address: Address,
        ctx: ModuleContext,
    ) -> None:
        self.runtime = runtime
        self.name = name
        self.module = module
        self.address = address
        self.ctx = ctx
        self.mailbox = Store(runtime.kernel, name=f"{name}.mailbox")
        self.active = True
        self.events_processed = 0
        self.errors: list[Exception] = []
        self.max_mailbox_depth = 0
        #: Recent per-event sojourn times (enqueue -> handler done), the
        #: always-on health signal canary upgrades compare v1 vs v2 with.
        #: Pure bookkeeping: appending never schedules or charges anything.
        self.handler_samples: deque[float] = deque(maxlen=256)
        #: Canary mirror tap, or ``None``. When set, every arriving DATA
        #: event is offered to it after normal enqueue (the tap decides
        #: whether to copy the event to a shadow deployment — see
        #: :mod:`repro.liveops.upgrade`).
        self.mirror: Callable[[ModuleEvent], None] | None = None

    @property
    def mailbox_depth(self) -> int:
        return len(self.mailbox)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DeployedModule {self.name}@{self.address}>"


class ModuleRuntime:
    """Hosts deployed modules on one device and routes their traffic."""

    def __init__(self, kernel: Kernel, device: Device, transport: Transport) -> None:
        self.kernel = kernel
        self.device = device
        self.transport = transport
        self._deployed: dict[str, DeployedModule] = {}
        device.runtime = self

    # -- deployment ---------------------------------------------------------------
    def deploy(
        self,
        name: str,
        module: Module,
        address: Address,
        wiring: "PipelineWiring",
        stubs: dict[str, "ServiceStub"] | None = None,
        run_init: bool = True,
    ) -> DeployedModule:
        """Install a module at *address* and start its event loop.

        ``run_init=False`` re-hosts an already-initialized instance (live
        migration): its encapsulated state is preserved and ``init`` is not
        called again.
        """
        if address.device != self.device.name:
            raise DeploymentError(
                f"module {name!r} addressed to {address.device!r} cannot be"
                f" deployed on {self.device.name!r}"
            )
        if name in self._deployed:
            raise DeploymentError(
                f"module {name!r} already deployed on {self.device.name!r}"
            )
        ctx = ModuleContext(self, name, wiring, stubs or {})
        deployed = DeployedModule(self, name, module, address, ctx)
        self._deployed[name] = deployed
        self.transport.bind(address, lambda msg: self._on_message(deployed, msg))
        if run_init:
            module.init(ctx)
        self.kernel.process(self._worker(deployed), name=f"module:{name}")
        return deployed

    def undeploy(self, name: str) -> None:
        deployed = self._deployed.pop(name, None)
        if deployed is None:
            return
        deployed.active = False
        self.transport.unbind(deployed.address)

    def drop_queued_events(self) -> int:
        """Device-crash semantics: events still queued in mailboxes are lost
        with RAM; their frame references are released so the store doesn't
        leak, and the frames they carried are accounted as dropped (pruning
        their in-flight metrics entries and closing their traces). Returns
        the number of events dropped."""
        from ..frames.payloads import release_refs

        dropped = 0
        for deployed in self._deployed.values():
            for event in deployed.mailbox.drain():
                release_refs(event.payload, self.device.frame_store)
                # frame ids may sit below the top level (batched/enveloped
                # payloads) — walk like release_refs walks, or the metrics
                # in-flight table leaks one slot per nested frame. A frame
                # fanned out to several of this device's modules appears in
                # several mailboxes; the in-flight guard keeps its drop
                # accounting idempotent across them (first drain wins)
                for frame_id in frame_ids_in(event.payload):
                    if deployed.ctx.metrics.frame_in_flight(frame_id):
                        deployed.ctx.frame_dropped(frame_id)
                dropped += 1
        return dropped

    def deployed(self, name: str) -> DeployedModule:
        try:
            return self._deployed[name]
        except KeyError:
            raise DeploymentError(
                f"module {name!r} is not deployed on {self.device.name!r}"
            )

    def deployed_names(self) -> list[str]:
        return sorted(self._deployed)

    # -- sending --------------------------------------------------------------------
    def send_to_module(
        self,
        source_module: str,
        target_module: str,
        payload: Any,
        headers: dict[str, Any],
        kind: str = DATA,
        wiring: "PipelineWiring | None" = None,
    ) -> Signal:
        """Route a payload to a module anywhere in the pipeline.

        Same-device traffic keeps frame refs as refs (the zero-copy path);
        cross-device traffic pays JPEG encode on this device's CPU and the
        network transfer, with refs rematerialized on arrival.

        Callers that already hold the pipeline wiring pass it explicitly —
        a migrated-away module's last in-flight handler must still be able
        to forward its frame even though this runtime no longer lists the
        module as deployed.
        """
        if wiring is None:
            wiring = self._wiring_of(source_module)
        target_address = wiring.address_of(target_module)
        source_address = wiring.address_of(source_module)
        done = self.kernel.signal(name=f"send:{source_module}->{target_module}")
        local = target_address.device == self.device.name
        if kind == DATA:
            # a data message that dies in flight (listener unbound during a
            # migration, destination crashed) takes its frame with it: the
            # local path still owns the payload's refs, the remote path
            # released them at encode — either way the frame must be
            # accounted as dropped, like a drained mailbox
            done.wait(
                lambda _v, exc: self._dead_letter(
                    source_module, wiring, payload, release_local_refs=local
                ) if exc is not None else None
            )
        if local:
            message = self._build_message(
                kind, payload, source_address, target_address, headers,
                local=True,
            )
            self._forward(message, done)
        else:
            self.kernel.process(
                self._send_remote(
                    kind, payload, source_address, target_address, headers, done
                ),
                name=f"ship:{source_module}->{target_module}",
            )
        return done

    def _send_remote(
        self,
        kind: str,
        payload: Any,
        source_address: Address,
        target_address: Address,
        headers: dict[str, Any],
        done: Signal,
    ):
        wire_payload, encode_cost, shipped = encode_refs_for_wire(
            payload, self.device.frame_store
        )
        if encode_cost > 0:
            yield self.device.cpu.execute_fixed(encode_cost)
        message = self._build_message(
            kind, wire_payload, source_address, target_address, headers
        )
        try:
            yield self.transport.send(message)
        except Exception as exc:
            done.fail(exc)
            return
        done.succeed(self.kernel.now)

    def _dead_letter(
        self,
        source_module: str,
        wiring: "PipelineWiring",
        payload: Any,
        release_local_refs: bool,
    ) -> None:
        if release_local_refs:
            release_refs(payload, self.device.frame_store)
        wiring.metrics.increment("dead_letters")
        for frame_id in frame_ids_in(payload):
            # a sibling fan-out copy (or an earlier drain) may already have
            # settled this frame — only the first settlement counts
            if not wiring.metrics.frame_in_flight(frame_id):
                continue
            source = self._deployed.get(source_module)
            if source is not None:
                source.ctx.frame_dropped(frame_id)
            else:
                # the sender itself was undeployed meanwhile (its handler
                # outlived the migration); account on the shared collector
                wiring.metrics.frame_dropped(frame_id, self.kernel.now)

    #: Charged bytes for one intra-device hop through the arena frame
    #: plane: the envelope plus one ``(arena_id, offset, generation)``
    #: handle tuple. The payload itself lives in shared memory.
    ARENA_HOP_BYTES = ENVELOPE_OVERHEAD + 24

    def _build_message(
        self,
        kind: str,
        payload: Any,
        source_address: Address,
        target_address: Address,
        headers: dict[str, Any],
        local: bool = False,
    ) -> Message:
        wire_kind = KIND_SIGNAL if kind == READY_SIGNAL else kind
        headers = dict(headers)
        # the trace context joins event_kind *after* construction: runtime
        # metadata stays outside the charged envelope (message.size_bytes is
        # fixed in __post_init__), so tracing cannot change wire timing
        trace = headers.pop(H_TRACE, None)
        # with the arena frame plane on, an intra-device hop ships only a
        # handle tuple over shared memory: zero charged payload bytes, and
        # no per-hop payload-size tree walk at all
        size = (
            self.ARENA_HOP_BYTES
            if local and self.device.arena is not None else 0
        )
        message = Message(
            kind=wire_kind,
            dst=target_address,
            payload=payload,
            src=source_address,
            headers=headers,
            size_bytes=size,
        )
        message.headers["event_kind"] = kind
        if trace is not None:
            message.headers[H_TRACE] = trace
        return message

    def _forward(self, message: Message, done: Signal) -> None:
        sent = self.transport.send(message)
        sent.wait(
            lambda value, exc: done.fail(exc) if exc is not None else done.succeed(value)
        )

    # -- receiving ---------------------------------------------------------------------
    def _on_message(self, deployed: DeployedModule, message: Message) -> None:
        event = ModuleEvent(
            kind=message.headers.get("event_kind", DATA),
            payload=message.payload,
            source_module=None,
            headers=dict(message.headers),
            enqueued_at=self.kernel.now,
        )
        tracer = deployed.ctx.wiring.tracer
        if tracer is not None:
            parent = SpanContext.from_header(message.headers.get(H_TRACE))
            if (
                parent is not None
                and message.src is not None
                and message.src.device != self.device.name
                and message.sent_at is not None
                and message.delivered_at is not None
            ):
                tracer.record(
                    "wire.transfer", CAT_WIRE, parent=parent,
                    start=message.sent_at, end=message.delivered_at,
                    device=self.device.name, actor=deployed.name,
                    bytes=message.size_bytes, src=message.src.device,
                )
        deployed.mailbox.put(event)
        deployed.max_mailbox_depth = max(
            deployed.max_mailbox_depth, deployed.mailbox_depth
        )
        if deployed.mirror is not None and event.kind == DATA:
            # canary mirroring happens after the normal enqueue so v1's
            # delivery order is untouched; the tap copies the event to the
            # shadow deployment on its own (shadow) wiring
            deployed.mirror(event)

    def _worker(self, deployed: DeployedModule):
        module = deployed.module
        while deployed.active:
            event = yield deployed.mailbox.get()
            if not deployed.active:
                # undeployed while this get was in flight: the event already
                # left the mailbox (the migration drain missed it), so its
                # frame leaves the pipeline here
                payload = event.payload
                release_refs(payload, self.device.frame_store)
                dead_ids = frame_ids_in(payload)
                if dead_ids:
                    deployed.ctx.metrics.increment("dead_letters")
                    for frame_id in dead_ids:
                        # the migration drain (or a fan-out sibling) may
                        # have settled this frame already
                        if deployed.ctx.metrics.frame_in_flight(frame_id):
                            deployed.ctx.frame_dropped(frame_id)
                break
            # land any encoded frames into the local store (decode cost)
            payload, decode_cost, _ = decode_frames_from_wire(
                event.payload, self.device.frame_store
            )
            event.payload = payload
            if decode_cost > 0:
                yield self.device.cpu.execute_fixed(decode_cost)
            if module.event_overhead_s > 0:
                yield self.device.cpu.execute(module.event_overhead_s)
            # dequeued_at marks handler start: mailbox wait + arrival decode
            # + dispatch overhead are all 'time to load the data' (Fig. 6)
            event.dequeued_at = self.kernel.now
            ctx = deployed.ctx
            lineage = ctx.wiring.lineage
            if lineage is not None and event.kind == DATA:
                lineage.touch_event(ctx, payload)
            tracer = ctx.wiring.tracer
            handler_ctx = None
            if tracer is not None:
                root = SpanContext.from_header(event.headers.get(H_TRACE))
                ctx._trace_root = root
                ctx._trace_span = None
                if root is not None:
                    tracer.record(
                        "mailbox.wait", CAT_QUEUE, parent=root,
                        start=event.enqueued_at, end=self.kernel.now,
                        device=self.device.name, actor=deployed.name,
                    )
                    handler_ctx = tracer.child_context(root)
                    ctx._trace_root = root
                    ctx._trace_span = handler_ctx
                    handler_started = self.kernel.now
            failed = False
            try:
                if event.kind == READY_SIGNAL:
                    result = module.on_ready_signal(deployed.ctx, event)
                else:
                    result = module.event_received(deployed.ctx, event)
                if inspect.isgenerator(result):
                    yield self.kernel.process(
                        result, name=f"{deployed.name}.handler"
                    )
            except Exception as exc:  # a module crash must not kill the device
                failed = True
                deployed.errors.append(exc)
                deployed.ctx.metrics.increment("module_errors")
            if handler_ctx is not None:
                tracer.record_span(
                    handler_ctx, f"module.{deployed.name}", CAT_COMPUTE,
                    start=handler_started, end=self.kernel.now,
                    device=self.device.name, actor=deployed.name,
                    ok=not failed,
                )
            if tracer is not None:
                ctx._trace_root = None
                ctx._trace_span = None
            if event.kind == DATA:
                deployed.handler_samples.append(
                    self.kernel.now - event.enqueued_at
                )
            deployed.events_processed += 1

    def _wiring_of(self, module_name: str) -> "PipelineWiring":
        return self.deployed(module_name).ctx.wiring
