"""Pipeline wiring: the routing state shared by one deployed pipeline.

Built by the deployer from the configuration DAG: where every module lives,
who follows whom, which module is the source (the flow-control signal
target), and where this pipeline's metrics are collected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import DeploymentError
from ..metrics.collector import MetricsCollector
from ..net.address import Address


@dataclass(slots=True)
class PipelineWiring:
    """Routing and bookkeeping for one running pipeline."""

    pipeline_name: str
    #: module name -> bound address (after placement resolution).
    addresses: dict[str, Address] = field(default_factory=dict)
    #: module name -> configured downstream module names.
    next_modules: dict[str, list[str]] = field(default_factory=dict)
    #: the module that owns the video source (flow-control signal target).
    source_module: str | None = None
    metrics: MetricsCollector = field(default_factory=MetricsCollector)
    #: free-form log of (time, module, text) entries.
    logs: list[tuple[float, str, str]] = field(default_factory=list)
    #: the home's :class:`~repro.trace.recorder.TraceRecorder`, or ``None``
    #: while tracing is off (set by ``VideoPipe.enable_tracing``).
    tracer: Any = None
    #: module name -> deployed code version (mirrors the module configs at
    #: deploy time; a hot upgrade rewrites one entry at promotion).
    versions: dict[str, str] = field(default_factory=dict)
    #: the home's :class:`~repro.liveops.lineage.LineageRecorder`, or
    #: ``None`` while lineage is off (set by ``VideoPipe.enable_liveops``).
    lineage: Any = None

    def address_of(self, module_name: str) -> Address:
        try:
            return self.addresses[module_name]
        except KeyError:
            raise DeploymentError(
                f"pipeline {self.pipeline_name!r} has no module"
                f" {module_name!r}; known: {sorted(self.addresses)}"
            )

    def downstream_of(self, module_name: str) -> list[str]:
        return list(self.next_modules.get(module_name, []))

    def device_of(self, module_name: str) -> str:
        return self.address_of(module_name).device

    def version_of(self, module_name: str) -> str:
        return self.versions.get(module_name, "v1")

    def describe(self) -> dict[str, Any]:
        return {
            "pipeline": self.pipeline_name,
            "modules": {name: str(addr) for name, addr in self.addresses.items()},
            "edges": dict(self.next_modules),
            "source": self.source_module,
            "versions": dict(self.versions),
        }
