"""Module class registry.

The paper's configuration references module code by file
(``include("./PoseDetectorModule.js")``); here modules are registered
Python classes looked up by include-name, so configurations stay
declarative text.
"""

from __future__ import annotations

from typing import Callable, Type

from ..errors import ConfigError
from .module import Module

_REGISTRY: dict[str, Type[Module]] = {}


def register_module(include_name: str) -> Callable[[Type[Module]], Type[Module]]:
    """Class decorator: make a module class loadable by configuration.

    Example::

        @register_module("./PoseDetectorModule.js")
        class PoseDetectorModule(Module): ...
    """

    def decorator(cls: Type[Module]) -> Type[Module]:
        if not issubclass(cls, Module):
            raise ConfigError(f"{cls.__name__} is not a Module subclass")
        existing = _REGISTRY.get(include_name)
        if existing is not None and existing is not cls:
            raise ConfigError(f"include name {include_name!r} already registered")
        _REGISTRY[include_name] = cls
        return cls

    return decorator


def create_module(include_name: str, **kwargs) -> Module:
    """Instantiate the module class registered under *include_name*."""
    cls = _REGISTRY.get(include_name)
    if cls is None:
        raise ConfigError(
            f"no module registered for include {include_name!r};"
            f" known: {sorted(_REGISTRY)}"
        )
    return cls(**kwargs)


def registered_modules() -> dict[str, Type[Module]]:
    """A copy of the registry (inspection/testing)."""
    return dict(_REGISTRY)


def is_registered(include_name: str) -> bool:
    return include_name in _REGISTRY
