"""Events delivered to modules.

"Similar to other Function-as-a-Service platforms, modules in VideoPipe are
triggered on events. These events are either data arrival events or calls
from other modules" (§3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Event kinds.
DATA = "data"  # payload from an upstream module
READY_SIGNAL = "ready"  # flow-control: sink tells the source to send more


@dataclass(slots=True)
class ModuleEvent:
    """One triggering event for a module's ``event_received``."""

    kind: str
    payload: Any = None
    source_module: str | None = None
    headers: dict[str, Any] = field(default_factory=dict)
    enqueued_at: float = 0.0
    dequeued_at: float = 0.0

    @property
    def queueing_delay(self) -> float:
        """Seconds spent in the module's mailbox before processing."""
        return self.dequeued_at - self.enqueued_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ModuleEvent {self.kind} from={self.source_module}>"
