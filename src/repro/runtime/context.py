"""The module context: everything a module may do, and nothing more.

Implements the callable half of Table 1 (``call_service``, ``call_module``)
plus frame-reference management and the §2.3 flow-control signal. The
context is created per deployed module by the runtime; module code receives
it in every callback.

Frame-reference ownership contract (the paper's minimal-copy design):

* ``store_frame`` gives the module one hold on the new reference.
* ``call_module`` / ``call_next`` **move** every reference in the payload to
  the receiver(s); the sender must not use them afterwards.
* ``call_service`` **borrows**: refs stay owned by the module.
* a module that drops a frame without forwarding it calls ``release``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from ..errors import CircuitOpenError, ServiceError
from ..frames.frame import FrameRef, VideoFrame
from ..frames.payloads import add_refs
from ..sim.signals import Signal
from ..trace.span import (
    CAT_SERIALIZE,
    CAT_SERVICE,
    CAT_STAGE,
    SpanContext,
    trace_id_for,
)
from .events import DATA, READY_SIGNAL

if TYPE_CHECKING:  # pragma: no cover
    from ..services.stubs import ServiceStub
    from ..trace.recorder import TraceRecorder
    from .moduleruntime import ModuleRuntime
    from .wiring import PipelineWiring


class ModuleContext:
    """Per-deployed-module API surface."""

    def __init__(
        self,
        runtime: "ModuleRuntime",
        module_name: str,
        wiring: "PipelineWiring",
        stubs: dict[str, "ServiceStub"],
    ) -> None:
        self._runtime = runtime
        self.module_name = module_name
        self.wiring = wiring
        self._stubs = stubs
        # Ambient trace state for the event currently being handled. Safe
        # as instance state because the runtime worker delivers events one
        # at a time per module (single-threaded Duktape semantics): the
        # fields are set before the handler runs and cleared after it
        # finishes, including across generator suspensions.
        #: the frame's root span — what outgoing messages propagate.
        self._trace_root: SpanContext | None = None
        #: the current handler span — what child spans parent to.
        self._trace_span: SpanContext | None = None

    # -- identity & clock ------------------------------------------------------
    @property
    def device_name(self) -> str:
        return self._runtime.device.name

    @property
    def now(self) -> float:
        return self._runtime.kernel.now

    @property
    def metrics(self):
        return self.wiring.metrics

    @property
    def pipeline_name(self) -> str:
        return self.wiring.pipeline_name

    @property
    def tracer(self) -> "TraceRecorder | None":
        """The home's trace recorder, or ``None`` while tracing is off."""
        return self.wiring.tracer

    def rng(self, purpose: str) -> np.random.Generator:
        return self._runtime.device.local_rng(f"module/{self.module_name}/{purpose}")

    # -- Table 1: call_service ---------------------------------------------------
    def call_service(self, service_name: str, payload: Any) -> Signal:
        """Invoke a (co-located or remote) stateless service.

        Returns a signal with the service result; yield it from an
        ``event_received`` generator to wait.
        """
        stub = self._stubs.get(service_name)
        if stub is None:
            raise ServiceError(
                f"module {self.module_name!r} did not declare service"
                f" {service_name!r} in its configuration"
            )
        self.metrics.increment(f"service_calls.{service_name}")
        metrics = self.metrics

        def _count_rejection(_value: Any, exc: BaseException | None) -> None:
            # a breaker-open rejection arrives either directly or as the
            # __cause__ of the remote stub's ServiceError wrapper
            if isinstance(exc, CircuitOpenError) or isinstance(
                getattr(exc, "__cause__", None), CircuitOpenError
            ):
                metrics.increment("service_rejections")

        # local cache hits resolve synchronously inside call(), so a counter
        # snapshot attributes them to this pipeline's metrics
        host = getattr(stub, "host", None)
        hits_before = host.cache_hits if host is not None else 0
        tracer = self.tracer
        if tracer is not None and self._trace_span is not None:
            # pre-mint the call span's identity so the callee (local host or
            # remote server) can parent its queue/compute spans to it; the
            # span itself is recorded when the signal resolves
            call_ctx = tracer.child_context(self._trace_span)
            started = self.now
            signal = stub.call(payload, trace=call_ctx)
            device, actor = self.device_name, self.module_name
            is_local = stub.is_local

            def _record(_value: Any, exc: BaseException | None) -> None:
                if not is_local and stub.last_prepare_s > 0:
                    # the encode+marshal interval sits at the head of the
                    # call window (the stub stamps it before dispatching)
                    tracer.record(
                        "rpc.serialize", CAT_SERIALIZE, parent=call_ctx,
                        start=started, end=started + stub.last_prepare_s,
                        device=device, actor=actor,
                    )
                tracer.record_span(
                    call_ctx, f"service.call:{service_name}", CAT_SERVICE,
                    start=started, end=tracer.kernel.now,
                    device=device, actor=actor,
                    service=service_name, ok=exc is None,
                )

            signal.wait(_record)
        else:
            signal = stub.call(payload)
        signal.wait(_count_rejection)
        if host is not None and host.cache_hits > hits_before:
            self.metrics.increment(f"service_cache_hits.{service_name}")
        return signal

    def has_service(self, service_name: str) -> bool:
        return service_name in self._stubs

    def service_is_local(self, service_name: str) -> bool:
        stub = self._stubs.get(service_name)
        return stub is not None and stub.is_local

    def service_prepare_s(self, service_name: str) -> float:
        """Request-materialization time of the last call to this service
        (JPEG encode for remote frame payloads; ~0 for reference passing)."""
        stub = self._stubs.get(service_name)
        return stub.last_prepare_s if stub is not None else 0.0

    # -- Table 1: call_module ------------------------------------------------------
    def _trace_headers(self, headers: dict[str, Any] | None) -> dict[str, Any]:
        """Outgoing headers with the frame's root trace context attached
        (when tracing is on and this event belongs to a traced frame)."""
        from ..net.message import H_TRACE

        out = dict(headers) if headers else {}
        if self.tracer is not None and self._trace_root is not None:
            out[H_TRACE] = self._trace_root.header()
        return out

    def call_module(
        self,
        target_module: str,
        payload: Any,
        headers: dict[str, Any] | None = None,
    ) -> Signal:
        """Send a payload to another module (ownership of refs moves)."""
        return self._runtime.send_to_module(
            self.module_name, target_module, payload,
            self._trace_headers(headers), kind=DATA, wiring=self.wiring
        )

    def call_next(
        self, payload: Any, headers: dict[str, Any] | None = None
    ) -> list[Signal]:
        """Send the same payload to every configured ``next_module``.

        Fan-out takes the extra reference holds the receivers will each
        consume.
        """
        targets = self.wiring.downstream_of(self.module_name)
        if not targets:
            return []
        for _ in range(len(targets) - 1):
            add_refs(payload, self._runtime.device.frame_store)
        return [
            self._runtime.send_to_module(
                self.module_name, target, payload,
                self._trace_headers(headers), kind=DATA, wiring=self.wiring
            )
            for target in targets
        ]

    @property
    def next_modules(self) -> list[str]:
        return self.wiring.downstream_of(self.module_name)

    # -- §2.3 flow control -----------------------------------------------------------
    def signal_source(self) -> Signal | None:
        """Tell the pipeline source this frame is done (credit refill)."""
        source = self.wiring.source_module
        if source is None:
            return None
        self.metrics.increment("ready_signals")
        return self._runtime.send_to_module(
            self.module_name, source, None, {}, kind=READY_SIGNAL,
            wiring=self.wiring,
        )

    # -- frame references ---------------------------------------------------------------
    def store_frame(self, frame: VideoFrame | Any) -> FrameRef:
        """Park an object in the device store; the module owns one hold."""
        return self._runtime.device.frame_store.put(frame)

    def get_frame(self, ref: FrameRef) -> Any:
        """Resolve a reference without copying or consuming it."""
        return self._runtime.device.frame_store.get(ref)

    def add_ref(self, ref: FrameRef) -> FrameRef:
        return self._runtime.device.frame_store.add_ref(ref)

    def release(self, ref: FrameRef) -> None:
        self._runtime.device.frame_store.release(ref)

    # -- instrumentation -----------------------------------------------------------------
    def frame_entered(self, frame_id: int) -> None:
        """Admit *frame_id* into the pipeline: metrics bookkeeping plus —
        when tracing is on — the frame's root span, which this module's
        outgoing sends will propagate."""
        self.metrics.frame_entered(frame_id, self.now)
        tracer = self.tracer
        if tracer is not None:
            root = tracer.frame_started(
                self.pipeline_name, frame_id,
                device=self.device_name, actor=self.module_name,
            )
            self._trace_root = root
            self._trace_span = root

    def frame_completed(self, frame_id: int) -> None:
        """The pipeline is done with *frame_id*: metrics bookkeeping plus
        closing the frame's trace at the completion instant."""
        self.metrics.frame_completed(frame_id, self.now)
        tracer = self.tracer
        if tracer is not None:
            trace_id = trace_id_for(self.pipeline_name, frame_id)
            if self._trace_span is not None:
                tracer.annotate(
                    "frame.complete", parent=self._trace_span,
                    device=self.device_name, actor=self.module_name,
                )
            tracer.frame_finished(trace_id)

    def frame_dropped(self, frame_id: int) -> None:
        """*frame_id* left the pipeline without completing (source drop,
        crashed device, migration): prune its metrics entry and close its
        trace — if it ever had one — as dropped."""
        self.metrics.frame_dropped(frame_id, self.now)
        tracer = self.tracer
        if tracer is not None:
            tracer.frame_dropped(
                trace_id_for(self.pipeline_name, frame_id),
                device=self.device_name, actor=self.module_name,
            )

    def record_stage(self, stage: str, seconds: float) -> None:
        """Record one latency sample for a named pipeline stage.

        With tracing on, the sample is mirrored as a ``stage.<name>`` span
        ending now — so trace-derived stage means cross-check the
        collector's exactly (see ``docs/TRACING.md``).
        """
        self.metrics.record_stage(stage, seconds)
        tracer = self.tracer
        if tracer is not None and self._trace_span is not None:
            tracer.record(
                f"stage.{stage}", CAT_STAGE, parent=self._trace_span,
                start=self.now - seconds, end=self.now,
                device=self.device_name, actor=self.module_name,
            )

    def log(self, text: str) -> None:
        self.wiring.logs.append((self.now, self.module_name, text))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ModuleContext {self.module_name}@{self.device_name}>"
