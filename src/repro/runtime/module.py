"""The module abstraction — Table 1's interface, in Python.

A module is "a self-contained unit with encapsulated state" that "controls
the flow of video frames inside the video processing pipeline" (§2.1). The
paper runs each module's JavaScript in its own Duktape context; here each
module is a Python object whose callbacks run one event at a time on its
device's runtime (the same single-threaded-context semantics).

Table 1 mapping:

=====================================  =====================================
Paper (JavaScript)                     This library (Python)
=====================================  =====================================
``init()``                             :meth:`Module.init`
``event_received(message)``            :meth:`Module.event_received`
``call_service(service, message)``     ``ctx.call_service(name, payload)``
``call_module(module, message)``       ``ctx.call_module(name, payload)``
=====================================  =====================================

``event_received`` may be a plain method (fast, synchronous logic) or
return a generator — yield signals (e.g. service-call results) to suspend;
the runtime will not deliver the next event until the generator finishes,
preserving per-module serial execution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from .events import ModuleEvent

if TYPE_CHECKING:  # pragma: no cover
    from .context import ModuleContext


class Module:
    """Base class for pipeline modules. Subclass and override the hooks."""

    #: Reference CPU seconds of bookkeeping charged per delivered event
    #: (the interpreter/dispatch overhead of the Duktape context).
    event_overhead_s = 0.0002

    def init(self, ctx: "ModuleContext") -> None:
        """Called once at deployment on the target device (Table 1)."""

    def event_received(self, ctx: "ModuleContext", event: ModuleEvent) -> Any:
        """Called per arriving event (Table 1). Return a generator to run
        an asynchronous flow; anything else is treated as completed."""
        raise NotImplementedError

    def on_ready_signal(self, ctx: "ModuleContext", event: ModuleEvent) -> Any:
        """Flow-control hook: the sink's 'send next frame' signal (§2.3).

        Only meaningful on the source module; default ignores it.
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__}>"


class FunctionModule(Module):
    """Wrap a plain ``fn(ctx, event)`` as a module (tests, small pipelines)."""

    def __init__(self, fn, init_fn=None) -> None:
        self._fn = fn
        self._init_fn = init_fn

    def init(self, ctx: "ModuleContext") -> None:
        if self._init_fn is not None:
            self._init_fn(ctx)

    def event_received(self, ctx: "ModuleContext", event: ModuleEvent) -> Any:
        return self._fn(ctx, event)
