"""Critical-path analysis over span trees.

Answers Fig. 6's real question: *where did this frame's latency go?* For
each completed frame the analyzer walks the span tree backwards from the
completion time — at every level, child spans are visited latest-end first;
a child still running when the cursor reaches it joins the critical path
(the path recurses into it), any gap between children is charged to the
parent span's category, and children that finished before the path ever
needed them (parallel fan-out branches that were not the slowest) are
skipped. The result is an exact partition of the frame's end-to-end
duration into category buckets: ``queue`` (mailbox, worker-pool and batch
waits), ``compute`` (module handlers and service execution), ``wire``
(network transfers), ``serialize`` (encode/decode/marshal), ``service``
(the caller-side call envelope's own time: dispatch and the reply leg) and
``frame`` (inter-hop dispatch gaps on the root itself).

App-level stage spans (``stage.*``, mirrors of ``MetricsCollector``
samples) are aggregated separately — they overlap the tree and would
double-count inside the walk — which is exactly what makes
:meth:`CriticalPathReport.stage_means_ms` directly comparable to
:meth:`repro.metrics.collector.MetricsCollector.stage_means_ms`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .span import CAT_FRAME, CAT_MARK, CAT_STAGE, Span

_EPS = 1e-12


@dataclass(slots=True)
class FrameBreakdown:
    """One frame's end-to-end duration, partitioned by span category."""

    trace_id: str
    total_s: float
    by_category: dict[str, float] = field(default_factory=dict)

    def share(self, category: str) -> float:
        """Fraction of the frame's latency attributed to *category*."""
        if self.total_s <= 0:
            return 0.0
        return self.by_category.get(category, 0.0) / self.total_s


@dataclass(slots=True)
class CriticalPathReport:
    """The decomposition of every completed frame, plus stage aggregates."""

    frames: list[FrameBreakdown] = field(default_factory=list)
    #: stage name -> latency samples (seconds), from ``stage.*`` spans.
    stage_samples: dict[str, list[float]] = field(default_factory=dict)
    #: traces observed without a completed root span (dropped / in flight).
    unfinished: int = 0

    @property
    def frame_count(self) -> int:
        return len(self.frames)

    def category_totals_s(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for frame in self.frames:
            for category, seconds in frame.by_category.items():
                totals[category] = totals.get(category, 0.0) + seconds
        return totals

    def category_means_ms(self) -> dict[str, float]:
        """Mean per-frame milliseconds spent in each category."""
        if not self.frames:
            return {}
        count = len(self.frames)
        return {
            category: total / count * 1e3
            for category, total in sorted(self.category_totals_s().items())
        }

    def mean_total_ms(self) -> float:
        if not self.frames:
            return 0.0
        return sum(f.total_s for f in self.frames) / len(self.frames) * 1e3

    def stage_means_ms(self) -> dict[str, float]:
        """Mean latency per app-level stage in milliseconds — the same
        quantity ``MetricsCollector.stage_means_ms`` reports, but derived
        from the trace."""
        return {
            stage: sum(samples) / len(samples) * 1e3
            for stage, samples in self.stage_samples.items()
            if samples
        }


def critical_path(
    source: "Iterable[Span]", pipeline: str | None = None
) -> CriticalPathReport:
    """Decompose every completed frame in *source* (a span iterable or a
    :class:`~repro.trace.recorder.TraceRecorder`); *pipeline* restricts the
    analysis to one pipeline's traces."""
    spans = list(getattr(source, "spans", source))
    if pipeline is not None:
        prefix = f"{pipeline}/"
        spans = [s for s in spans if s.trace_id.startswith(prefix)]

    report = CriticalPathReport()
    roots: dict[str, Span] = {}
    children: dict[str, dict[int, list[Span]]] = {}
    trace_ids: set[str] = set()
    for span in spans:
        trace_ids.add(span.trace_id)
        if span.category == CAT_STAGE:
            stage = span.name.removeprefix("stage.")
            report.stage_samples.setdefault(stage, []).append(span.duration)
            continue
        if span.category == CAT_MARK:
            continue
        if span.category == CAT_FRAME and span.parent_id is None:
            roots[span.trace_id] = span
            continue
        if span.parent_id is not None:
            children.setdefault(span.trace_id, {}).setdefault(
                span.parent_id, []
            ).append(span)

    for trace_id in sorted(trace_ids):
        root = roots.get(trace_id)
        if root is None or root.attrs.get("outcome") != "completed":
            report.unfinished += 1
            continue
        segments: dict[str, float] = {}
        _walk(root, children.get(trace_id, {}), root.end, segments)
        report.frames.append(FrameBreakdown(
            trace_id=trace_id,
            total_s=root.duration,
            by_category=segments,
        ))
    return report


def _walk(
    span: Span,
    children: dict[int, list[Span]],
    cap: float,
    segments: dict[str, float],
) -> None:
    """Charge the window [span.start, min(span.end, cap)] to categories.

    *cap* clips children that outlive their parent's relevant window (e.g.
    a sink handler that keeps running after it marked the frame complete).
    """
    cursor = min(span.end, cap)
    kids = sorted(
        children.get(span.span_id, ()), key=lambda k: k.end, reverse=True
    )
    for kid in kids:
        kid_end = min(kid.end, cursor)
        kid_start = max(kid.start, span.start)
        if kid_end - kid_start <= _EPS:
            continue  # off the critical path (a faster parallel branch)
        gap = cursor - kid_end
        if gap > _EPS:
            segments[span.category] = segments.get(span.category, 0.0) + gap
        _walk(kid, children, kid_end, segments)
        cursor = kid_start
        if cursor - span.start <= _EPS:
            break
    remainder = cursor - span.start
    if remainder > _EPS:
        segments[span.category] = segments.get(span.category, 0.0) + remainder
