"""The span model: per-frame distributed traces.

A *trace* follows one frame through the pipeline, from source admission to
completion. Its id is ``"<pipeline>/<frame_id>"``, so traces from different
pipelines sharing a home (or a service) never collide. Every timed piece of
work the frame passes through — a mailbox wait, a module handler, an RPC
leg, a service-host queue — is recorded as a :class:`Span`; parent/child
links form the tree :func:`repro.trace.critical_path.critical_path` walks.

The propagation unit is :class:`SpanContext`: (trace id, span id, parent
id). It crosses process boundaries inside message headers (see
:data:`repro.net.message.H_TRACE`) as the wire-friendly pair
``[trace_id, span_id]``; the receiver parents its spans to the carried span
id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Span categories — the buckets of the Fig. 6 latency decomposition.
CAT_FRAME = "frame"          # the per-frame root span (admission → completion)
CAT_QUEUE = "queue"          # mailbox / worker-pool / batch-formation waits
CAT_COMPUTE = "compute"      # module handlers and service execution
CAT_WIRE = "wire"            # network transfer time
CAT_SERIALIZE = "serialize"  # encode/marshal and decode/unmarshal costs
CAT_SERVICE = "service"      # the caller-side service.call envelope
CAT_STAGE = "stage"          # app-level stage timers (mirror MetricsCollector)
CAT_MARK = "mark"            # zero-duration annotations (cache hits, completion)


def trace_id_for(pipeline: str, frame_id: int) -> str:
    """The canonical trace id of one frame of one pipeline."""
    return f"{pipeline}/{frame_id}"


@dataclass(frozen=True, slots=True)
class SpanContext:
    """The propagated identity of a span: enough to parent children to it."""

    trace_id: str
    span_id: int
    parent_id: int | None = None

    def header(self) -> list:
        """Wire-encodable form carried in message headers."""
        return [self.trace_id, self.span_id]

    @classmethod
    def from_header(cls, value: Any) -> "SpanContext | None":
        """Rebuild a context from a header value; None if malformed."""
        try:
            trace_id, span_id = value
            return cls(str(trace_id), int(span_id))
        except (TypeError, ValueError):
            return None


@dataclass(slots=True)
class Span:
    """One completed, timed piece of work attributed to a frame."""

    trace_id: str
    span_id: int
    parent_id: int | None
    name: str
    category: str
    start: float
    end: float
    device: str = ""
    actor: str = ""
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id, self.parent_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Span {self.name} [{self.category}] {self.trace_id}#{self.span_id}"
            f" {self.duration * 1e3:.3f}ms @{self.device}/{self.actor}>"
        )
