"""The per-kernel span sink.

One :class:`TraceRecorder` serves a whole home: every instrumented
component (module runtimes, service hosts, the module context) records into
it, reading time from the shared kernel. Root spans — one per admitted
frame — stay *open* from ``frame_started`` until ``frame_finished`` (or
``frame_dropped``), so a frame's end-to-end span has the true completion
time; child spans are recorded retrospectively with explicit start/end.

The recorder is intentionally passive: it never schedules kernel events and
never mutates what it observes, so tracing cannot perturb the simulation
(see ``docs/TRACING.md`` for the full no-observer-effect guarantee).

``max_spans`` bounds memory on long runs: past the cap new spans are
counted in ``dropped_spans`` and discarded (open frame roots still close
correctly — their slot was reserved at admission).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from .span import CAT_FRAME, CAT_MARK, Span, SpanContext, trace_id_for

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Kernel


@dataclass(slots=True)
class _OpenFrame:
    context: SpanContext
    start: float
    device: str
    actor: str


class TraceRecorder:
    """Collects spans for every traced frame running on one kernel."""

    def __init__(self, kernel: "Kernel", max_spans: int = 1_000_000) -> None:
        self.kernel = kernel
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self._ids = itertools.count(1)
        self._open_frames: dict[str, _OpenFrame] = {}
        # statistics
        self.dropped_spans = 0
        self.frames_started = 0
        self.frames_finished = 0
        self.frames_dropped = 0

    # -- identity ------------------------------------------------------------
    def child_context(self, parent: SpanContext) -> SpanContext:
        """A fresh span identity under *parent* (record it later with
        :meth:`record_span`, or ship it in a header first)."""
        return SpanContext(parent.trace_id, next(self._ids), parent.span_id)

    # -- frame lifecycle -------------------------------------------------------
    def frame_started(
        self, pipeline: str, frame_id: int, device: str = "", actor: str = ""
    ) -> SpanContext:
        """Open the root span for one admitted frame; returns its context
        (the parent of everything that happens to the frame)."""
        trace_id = trace_id_for(pipeline, frame_id)
        stale = self._open_frames.pop(trace_id, None)
        if stale is not None:  # duplicate admission: close the stale root
            self._close_frame(stale, self.kernel.now, outcome="superseded")
        context = SpanContext(trace_id, next(self._ids), None)
        self._open_frames[trace_id] = _OpenFrame(
            context, self.kernel.now, device, actor
        )
        self.frames_started += 1
        self.annotate("source.admit", parent=context, device=device, actor=actor)
        return context

    def frame_finished(self, trace_id: str, **attrs: Any) -> None:
        """Close a frame's root span at the current time (no-op when the
        frame was never traced — e.g. tracing enabled mid-run)."""
        open_frame = self._open_frames.pop(trace_id, None)
        if open_frame is None:
            return
        self.frames_finished += 1
        self._close_frame(open_frame, self.kernel.now, outcome="completed",
                          **attrs)

    def frame_dropped(self, trace_id: str, **attrs: Any) -> None:
        """Close a frame's root span as dropped (chaos, migration, source)."""
        open_frame = self._open_frames.pop(trace_id, None)
        if open_frame is None:
            return
        self.frames_dropped += 1
        self._close_frame(open_frame, self.kernel.now, outcome="dropped",
                          **attrs)

    def _close_frame(self, open_frame: _OpenFrame, end: float,
                     outcome: str, **attrs: Any) -> None:
        self._append(Span(
            trace_id=open_frame.context.trace_id,
            span_id=open_frame.context.span_id,
            parent_id=None,
            name="frame",
            category=CAT_FRAME,
            start=open_frame.start,
            end=end,
            device=open_frame.device,
            actor=open_frame.actor,
            attrs={"outcome": outcome, **attrs},
        ))

    # -- recording -------------------------------------------------------------
    def record(
        self,
        name: str,
        category: str,
        *,
        parent: SpanContext,
        start: float,
        end: float,
        device: str = "",
        actor: str = "",
        **attrs: Any,
    ) -> SpanContext:
        """Record a completed child span of *parent*; returns its context."""
        context = self.child_context(parent)
        self.record_span(context, name, category, start=start, end=end,
                         device=device, actor=actor, **attrs)
        return context

    def record_span(
        self,
        context: SpanContext,
        name: str,
        category: str,
        *,
        start: float,
        end: float,
        device: str = "",
        actor: str = "",
        **attrs: Any,
    ) -> None:
        """Record a span whose identity was created earlier (so children —
        possibly on other devices — could already parent to it)."""
        self._append(Span(
            trace_id=context.trace_id,
            span_id=context.span_id,
            parent_id=context.parent_id,
            name=name,
            category=category,
            start=start,
            end=end,
            device=device,
            actor=actor,
            attrs=dict(attrs),
        ))

    def annotate(
        self,
        name: str,
        *,
        parent: SpanContext,
        device: str = "",
        actor: str = "",
        **attrs: Any,
    ) -> None:
        """A zero-duration marker (cache hit, admission, completion)."""
        now = self.kernel.now
        self.record(name, CAT_MARK, parent=parent, start=now, end=now,
                    device=device, actor=actor, **attrs)

    def _append(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return
        self.spans.append(span)

    # -- introspection ----------------------------------------------------------
    @property
    def span_count(self) -> int:
        return len(self.spans)

    @property
    def open_frame_count(self) -> int:
        return len(self._open_frames)

    def traces(self) -> dict[str, list[Span]]:
        """Recorded spans grouped by trace id (insertion order preserved)."""
        grouped: dict[str, list[Span]] = {}
        for span in self.spans:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TraceRecorder {self.span_count} spans,"
            f" {self.frames_finished}/{self.frames_started} frames,"
            f" {self.open_frame_count} open>"
        )
