"""Per-frame distributed tracing (see ``docs/TRACING.md``).

Off by default; ``VideoPipe.enable_tracing()`` turns it on home-wide. The
span model lives in :mod:`repro.trace.span`, collection in
:mod:`repro.trace.recorder`, the ``chrome://tracing`` / Perfetto exporter
in :mod:`repro.trace.export`, and the Fig. 6 latency decomposition in
:mod:`repro.trace.critical_path`.
"""

from .critical_path import CriticalPathReport, FrameBreakdown, critical_path
from .export import chrome_trace_events, to_chrome_trace, write_chrome_trace
from .recorder import TraceRecorder
from .span import (
    CAT_COMPUTE,
    CAT_FRAME,
    CAT_MARK,
    CAT_QUEUE,
    CAT_SERIALIZE,
    CAT_SERVICE,
    CAT_STAGE,
    CAT_WIRE,
    Span,
    SpanContext,
    trace_id_for,
)

__all__ = [
    "CAT_COMPUTE",
    "CAT_FRAME",
    "CAT_MARK",
    "CAT_QUEUE",
    "CAT_SERIALIZE",
    "CAT_SERVICE",
    "CAT_STAGE",
    "CAT_WIRE",
    "CriticalPathReport",
    "FrameBreakdown",
    "Span",
    "SpanContext",
    "TraceRecorder",
    "chrome_trace_events",
    "critical_path",
    "to_chrome_trace",
    "trace_id_for",
    "write_chrome_trace",
]
