"""Chrome trace-event export.

Serializes recorded spans into the Trace Event Format consumed by
``chrome://tracing`` and Perfetto: a JSON object with a ``traceEvents``
list. Each timed span becomes a complete event (``"ph": "X"``) with
microsecond ``ts``/``dur``; zero-duration annotations become thread-scoped
instant events (``"ph": "i"``). Devices map to processes and actors
(modules, services) to threads, named through ``"M"`` metadata events, so
the viewer lays the home out as one swimlane per device with one row per
module/service — the frame's hop across devices reads left to right.

Span identity (trace/span/parent ids) and attributes ride in ``args``, so
clicking a slice in the viewer shows which frame it belongs to.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterable

from .span import Span

if TYPE_CHECKING:  # pragma: no cover
    from .recorder import TraceRecorder


def _lanes(spans: list[Span]) -> tuple[dict[str, int], dict[tuple[str, str], int]]:
    """Stable pid/tid assignment: devices and actors in sorted order."""
    devices = sorted({span.device or "home" for span in spans})
    pids = {device: index + 1 for index, device in enumerate(devices)}
    actors = sorted({(span.device or "home", span.actor or "-")
                     for span in spans})
    tids: dict[tuple[str, str], int] = {}
    per_device: dict[str, int] = {}
    for device, actor in actors:
        per_device[device] = per_device.get(device, 0) + 1
        tids[(device, actor)] = per_device[device]
    return pids, tids


def chrome_trace_events(spans: Iterable[Span]) -> list[dict[str, Any]]:
    """The ``traceEvents`` list for *spans* (metadata events included)."""
    spans = list(spans)
    pids, tids = _lanes(spans)
    events: list[dict[str, Any]] = []
    for device, pid in pids.items():
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": device},
        })
    for (device, actor), tid in tids.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": pids[device], "tid": tid,
            "args": {"name": actor},
        })
    for span in spans:
        device = span.device or "home"
        actor = span.actor or "-"
        event: dict[str, Any] = {
            "name": span.name,
            "cat": span.category,
            "pid": pids[device],
            "tid": tids[(device, actor)],
            "ts": span.start * 1e6,
            "args": {
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                **span.attrs,
            },
        }
        if span.end > span.start:
            event["ph"] = "X"
            event["dur"] = (span.end - span.start) * 1e6
        else:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        events.append(event)
    return events


def to_chrome_trace(spans: Iterable[Span]) -> dict[str, Any]:
    """The full Chrome-trace JSON object."""
    return {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.trace"},
    }


def write_chrome_trace(
    source: "TraceRecorder | Iterable[Span]", path: str
) -> str:
    """Write the trace of *source* (a recorder or a span iterable) to
    *path*; returns the path."""
    spans = getattr(source, "spans", source)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(spans), fh)
    return path
