"""Binary wire format and payload size accounting.

Two jobs:

* :func:`encode` / :func:`decode` — an actual self-describing binary codec
  for the value types that cross module/service boundaries (None, bool, int,
  float, str, bytes, list, tuple, dict, numpy arrays). The realtime runtime
  and the tests use it to prove payloads survive a real serialization
  boundary.
* :func:`payload_size` — the byte size the simulator charges to the link for
  a payload, which is simply the length of its encoding (computed without
  materializing the buffer for large arrays).
"""

from __future__ import annotations

import struct
from typing import Any

import numpy as np

from ..errors import NetworkError

_MAGIC = b"VP"
_VERSION = 1

# Type tags
_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3
_T_FLOAT = 4
_T_STR = 5
_T_BYTES = 6
_T_LIST = 7
_T_DICT = 8
_T_NDARRAY = 9
_T_TUPLE = 10

#: Fixed per-message envelope overhead in bytes (headers, framing); matches
#: a small ZeroMQ frame plus our envelope fields.
ENVELOPE_OVERHEAD = 64


class WireFormatError(NetworkError):
    """Raised when decoding malformed wire bytes."""


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        out.append(_T_INT)
        out += struct.pack("<q", value)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += struct.pack("<d", value)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(_T_STR)
        out += struct.pack("<I", len(data))
        out += data
    elif isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        out.append(_T_BYTES)
        out += struct.pack("<I", len(data))
        out += data
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST if isinstance(value, list) else _T_TUPLE)
        out += struct.pack("<I", len(value))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        out += struct.pack("<I", len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise WireFormatError(f"dict keys must be str, got {type(key).__name__}")
            _encode_into(key, out)
            _encode_into(item, out)
    elif isinstance(value, np.ndarray):
        header = value.dtype.str.encode("ascii")
        out.append(_T_NDARRAY)
        out += struct.pack("<B", len(header))
        out += header
        out += struct.pack("<B", value.ndim)
        out += struct.pack(f"<{value.ndim}q", *value.shape)
        data = np.ascontiguousarray(value).tobytes()
        out += struct.pack("<Q", len(data))
        out += data
    elif isinstance(value, (np.integer,)):
        _encode_into(int(value), out)
    elif isinstance(value, (np.floating,)):
        _encode_into(float(value), out)
    else:
        raise WireFormatError(f"unsupported wire type: {type(value).__name__}")


def encode(value: Any) -> bytes:
    """Serialize *value* to self-describing wire bytes."""
    out = bytearray()
    out += _MAGIC
    out.append(_VERSION)
    _encode_into(value, out)
    return bytes(out)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        if self.pos + count > len(self.data):
            raise WireFormatError("truncated wire data")
        chunk = self.data[self.pos : self.pos + count]
        self.pos += count
        return chunk

    def unpack(self, fmt: str) -> tuple:
        return struct.unpack(fmt, self.take(struct.calcsize(fmt)))


def _decode_from(reader: _Reader) -> Any:
    tag = reader.take(1)[0]
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return reader.unpack("<q")[0]
    if tag == _T_FLOAT:
        return reader.unpack("<d")[0]
    if tag == _T_STR:
        (length,) = reader.unpack("<I")
        return reader.take(length).decode("utf-8")
    if tag == _T_BYTES:
        (length,) = reader.unpack("<I")
        return bytes(reader.take(length))
    if tag in (_T_LIST, _T_TUPLE):
        (length,) = reader.unpack("<I")
        items = [_decode_from(reader) for _ in range(length)]
        return items if tag == _T_LIST else tuple(items)
    if tag == _T_DICT:
        (length,) = reader.unpack("<I")
        result = {}
        for _ in range(length):
            key = _decode_from(reader)
            result[key] = _decode_from(reader)
        return result
    if tag == _T_NDARRAY:
        (header_len,) = reader.unpack("<B")
        dtype = np.dtype(reader.take(header_len).decode("ascii"))
        (ndim,) = reader.unpack("<B")
        shape = reader.unpack(f"<{ndim}q") if ndim else ()
        (nbytes,) = reader.unpack("<Q")
        raw = reader.take(nbytes)
        return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    raise WireFormatError(f"unknown wire tag {tag}")


def decode(data: bytes) -> Any:
    """Deserialize wire bytes produced by :func:`encode`."""
    reader = _Reader(data)
    if reader.take(2) != _MAGIC:
        raise WireFormatError("bad magic; not VideoPipe wire data")
    version = reader.take(1)[0]
    if version != _VERSION:
        raise WireFormatError(f"unsupported wire version {version}")
    value = _decode_from(reader)
    if reader.pos != len(data):
        raise WireFormatError("trailing bytes after wire value")
    return value


def _size_of(value: Any) -> int:
    """Size of the encoding of *value*, without building the buffer."""
    if value is None or value is True or value is False:
        return 1
    if isinstance(value, (int, np.integer)):
        return 9
    if isinstance(value, (float, np.floating)):
        return 9
    if isinstance(value, str):
        return 5 + len(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray, memoryview)):
        return 5 + len(value)
    if isinstance(value, (list, tuple)):
        return 5 + sum(_size_of(item) for item in value)
    if isinstance(value, dict):
        return 5 + sum(_size_of(k) + _size_of(v) for k, v in value.items())
    if isinstance(value, np.ndarray):
        dtype_len = len(value.dtype.str.encode("ascii"))
        return 1 + 1 + dtype_len + 1 + 8 * value.ndim + 8 + value.nbytes
    # Objects with an explicit wire-size hint (e.g. encoded video frames
    # carry their compressed size without holding real pixel buffers).
    hint = getattr(value, "wire_size", None)
    if hint is not None:
        return int(hint)
    raise WireFormatError(f"unsupported wire type: {type(value).__name__}")


def payload_size(value: Any) -> int:
    """Bytes this payload occupies on the wire, including envelope overhead."""
    return ENVELOPE_OVERHEAD + 3 + _size_of(value)
