"""Request/reply RPC over the message transport.

Modules use this path when the service they call lives on a *different*
device — the remote-API-call pattern of the EdgeEye-style baseline. The
client correlates replies by request id on a per-client reply address; the
server runs its handler and sends the result (or a remote error) back.

Resilience (§7 "edge devices fail"): every call carries a default timeout
(:data:`DEFAULT_TIMEOUT_S`), its timer is cancelled the moment the reply
arrives so long runs don't accumulate dead kernel events, and a client can
be configured with a :class:`~repro.net.resilience.RetryPolicy` (capped
exponential backoff + jitter) and a per-target
:class:`~repro.net.resilience.CircuitBreaker` with half-open probing.
Transport-level failures (delivery errors, link partitions, timeouts) are
retryable; *remote* errors — the handler ran and raised — are not, and they
count as proof of liveness for the breaker.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

import numpy as np

from ..errors import CircuitOpenError, NetworkError, RpcError
from ..sim.events import Event
from ..sim.kernel import Kernel
from ..sim.signals import Signal
from .address import Address
from .message import KIND_REPLY, KIND_REQUEST, Message
from .resilience import CircuitBreaker, CircuitBreakerPolicy, RetryPolicy
from .transport import Transport

#: Header keys used by the RPC protocol.
H_REQUEST_ID = "rpc_id"
H_REPLY_TO = "reply_to"
H_ERROR = "rpc_error"

#: Safety-net timeout applied when a call gives no explicit one. Generous on
#: purpose: it exists so a dead endpoint cannot hang a caller forever, not to
#: police slow services (per-call budgets belong to the caller).
DEFAULT_TIMEOUT_S = 30.0

#: Default per-target breaker for clients that don't override it.
DEFAULT_BREAKER = CircuitBreakerPolicy(failure_threshold=5, reset_timeout_s=5.0)

_UNSET: Any = object()


class RpcClient:
    """Issues requests from one device; owns an ephemeral reply address.

    Args:
        kernel, transport, device: as before.
        default_timeout_s: timeout applied when :meth:`call` is not given
            one explicitly; ``None`` disables the safety net.
        retry: default :class:`RetryPolicy` for calls (``None`` = single
            attempt). Only transport-level failures are retried.
        breaker: per-target circuit-breaker policy; ``None`` disables
            circuit breaking for this client.
        rng: RNG used for backoff jitter (``None`` = jitter off).
    """

    def __init__(
        self,
        kernel: Kernel,
        transport: Transport,
        device: str,
        *,
        default_timeout_s: float | None = DEFAULT_TIMEOUT_S,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreakerPolicy | None = DEFAULT_BREAKER,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.kernel = kernel
        self.transport = transport
        self.device = device
        self.default_timeout_s = default_timeout_s
        self.retry = retry
        self.breaker_policy = breaker
        self._rng = rng
        self.reply_address = Address(device, transport.ephemeral_port(device))
        self._request_ids = itertools.count(1)
        self._pending: dict[int, Signal] = {}
        self._timers: dict[int, Event] = {}
        self._breakers: dict[Address, CircuitBreaker] = {}
        self._closed = False
        transport.bind(self.reply_address, self._on_reply)
        # statistics
        self.calls_sent = 0
        self.calls_failed = 0
        self.retries = 0
        self.retries_abandoned = 0
        self.timeouts = 0
        self.late_replies = 0

    @property
    def pending_count(self) -> int:
        """Requests awaiting a reply or timeout. Every request arms a
        timeout timer (when the client has one), so at quiesce this must be
        zero — the invariant auditor's ``watch_rpc`` checks it."""
        return len(self._pending)

    # -- public API -----------------------------------------------------------
    def call(
        self,
        target: Address,
        payload: Any,
        timeout: float | None = _UNSET,
        retry: RetryPolicy | None = _UNSET,
        headers: dict[str, Any] | None = None,
        deadline_s: float | None = None,
    ) -> Signal:
        """Send *payload* to *target*; the returned signal resolves with the
        reply payload, or fails with :class:`~repro.errors.RpcError` on a
        remote error, timeout, or (after any retries) delivery failure.

        ``timeout``/``retry`` default to the client-wide policies; pass
        ``None`` explicitly to disable either for one call. ``timeout`` is
        **per attempt**: each retry re-arms it. *headers* are extra request
        headers (e.g. a trace context) merged into every attempt, outside
        the charged envelope.

        ``deadline_s``, when given, is the overall budget for the whole
        call — retries never outlive it. Each retry attempt's own timer is
        capped at the budget remaining, and a retry whose backoff delay
        would start it at or past the deadline is abandoned instead of
        scheduled (``retries_abandoned`` counts those). Service stubs pass
        their derived service timeout here so a flaky link cannot stretch
        one logical call to ``attempts x timeout`` plus backoff.
        """
        timeout_s = self.default_timeout_s if timeout is _UNSET else timeout
        policy = self.retry if retry is _UNSET else retry
        deadline = None if deadline_s is None else self.kernel.now + deadline_s
        done = self.kernel.signal(name=f"rpc-call:{target.device}:{target.port}")
        self._start_attempt(target, payload, timeout_s, policy, done, 1,
                            headers=headers, deadline=deadline)
        return done

    def breaker_for(self, target: Address) -> CircuitBreaker | None:
        """The (lazily created) breaker guarding *target*; None if disabled."""
        if self.breaker_policy is None:
            return None
        breaker = self._breakers.get(target)
        if breaker is None:
            breaker = CircuitBreaker(self.breaker_policy, name=str(target))
            self._breakers[target] = breaker
        return breaker

    @property
    def circuit_opens(self) -> int:
        return sum(b.opens for b in self._breakers.values())

    @property
    def circuit_rejections(self) -> int:
        return sum(b.rejections for b in self._breakers.values())

    def close(self) -> None:
        """Idempotent teardown: unbind the reply address and fail every
        in-flight request (cancelling their timeout timers)."""
        if self._closed:
            return
        self._closed = True
        self.transport.unbind(self.reply_address)
        for request_id in list(self._pending):
            result = self._settle(request_id)
            if result is not None and result.pending:
                result.fail(RpcError("rpc client closed"))

    # -- attempt machinery -----------------------------------------------------
    def _start_attempt(
        self,
        target: Address,
        payload: Any,
        timeout_s: float | None,
        policy: RetryPolicy | None,
        done: Signal,
        attempt: int,
        headers: dict[str, Any] | None = None,
        deadline: float | None = None,
    ) -> None:
        if not done.pending:
            return
        if self._closed:
            done.fail(RpcError("rpc client closed"))
            return
        breaker = self.breaker_for(target)
        if breaker is not None and not breaker.allow(self.kernel.now):
            self.calls_failed += 1
            done.fail(CircuitOpenError(
                f"circuit open for {target} after"
                f" {breaker.consecutive_failures} consecutive failures"
            ))
            return
        attempt_timeout = timeout_s
        if deadline is not None:
            # a retry's timer is capped at the budget left on the original
            # call, so the overall call never outlives its deadline
            attempt_timeout = max(1e-9, deadline - self.kernel.now)
            if timeout_s is not None:
                attempt_timeout = min(timeout_s, attempt_timeout)
        result = self._attempt(target, payload, attempt_timeout, headers)
        result.wait(
            lambda value, exc: self._on_attempt_done(
                target, payload, timeout_s, policy, done, attempt, value, exc,
                headers, deadline,
            )
        )

    def _on_attempt_done(
        self,
        target: Address,
        payload: Any,
        timeout_s: float | None,
        policy: RetryPolicy | None,
        done: Signal,
        attempt: int,
        value: Any,
        exc: BaseException | None,
        headers: dict[str, Any] | None = None,
        deadline: float | None = None,
    ) -> None:
        if not done.pending:
            return
        breaker = self.breaker_for(target)
        if exc is None:
            if breaker is not None:
                breaker.record_success()
            done.succeed(value)
            return
        retryable = self._is_retryable(exc)
        if breaker is not None:
            if retryable:
                breaker.record_failure(self.kernel.now)
            else:
                breaker.record_success()  # a remote error proves liveness
        max_attempts = policy.max_attempts if policy is not None else 1
        if retryable and not self._closed and attempt < max_attempts:
            delay = policy.backoff_s(attempt, self._rng)
            if deadline is not None and not policy.deadline_allows(
                delay, self.kernel.now, deadline
            ):
                # the next attempt could not complete before the caller's
                # deadline — give up now instead of amplifying overload
                self.retries_abandoned += 1
            else:
                self.retries += 1
                self.kernel.schedule(
                    delay, self._start_attempt,
                    target, payload, timeout_s, policy, done, attempt + 1,
                    headers, deadline,
                )
                return
        self.calls_failed += 1
        done.fail(exc)

    @staticmethod
    def _is_retryable(exc: BaseException) -> bool:
        if isinstance(exc, RpcError) and exc.remote:
            return False  # the handler ran and raised; retrying won't help
        return isinstance(exc, NetworkError)

    # -- single attempt --------------------------------------------------------
    def _attempt(self, target: Address, payload: Any, timeout_s: float | None,
                 headers: dict[str, Any] | None = None) -> Signal:
        request_id = next(self._request_ids)
        result = self.kernel.signal(name=f"rpc#{request_id}")
        self._pending[request_id] = result
        message = Message(
            kind=KIND_REQUEST,
            dst=target,
            payload=payload,
            src=Address(self.device, self.reply_address.port),
            headers={H_REQUEST_ID: request_id, H_REPLY_TO: str(self.reply_address)},
        )
        if headers:
            # merged post-construction: caller metadata (trace contexts)
            # rides outside the charged envelope — see message.H_TRACE
            message.headers.update(headers)
        self.calls_sent += 1
        sent = self.transport.send(message)
        sent.wait(lambda _v, exc: self._on_send_failure(request_id, exc))
        if timeout_s is not None:
            self._timers[request_id] = self.kernel.schedule(
                timeout_s, self._on_timeout, request_id
            )
        return result

    def _settle(self, request_id: int) -> Signal | None:
        """Drop a request's bookkeeping; cancels its timeout timer so dead
        events don't linger in (and stretch) the kernel queue."""
        result = self._pending.pop(request_id, None)
        timer = self._timers.pop(request_id, None)
        if timer is not None:
            self.kernel.cancel(timer)
        return result

    def _on_send_failure(self, request_id: int, exc: BaseException | None) -> None:
        if exc is None:
            return
        result = self._settle(request_id)
        if result is not None and result.pending:
            result.fail(RpcError(f"request delivery failed: {exc}"))

    def _on_timeout(self, request_id: int) -> None:
        self._timers.pop(request_id, None)
        result = self._pending.pop(request_id, None)
        if result is not None and result.pending:
            self.timeouts += 1
            result.fail(RpcError(f"rpc request #{request_id} timed out"))

    def _on_reply(self, message: Message) -> None:
        request_id = message.headers.get(H_REQUEST_ID)
        result = self._settle(request_id)
        if result is None or not result.pending:
            self.late_replies += 1
            return  # late reply after timeout: discard
        error = message.headers.get(H_ERROR)
        if error is not None:
            result.fail(RpcError(str(error), remote=True))
        else:
            result.succeed(message.payload)


#: Server handlers receive (payload, message) and either return a plain
#: value, return a Signal that resolves with the value, or raise.
RpcHandler = Callable[[Any, Message], Any]


class RpcServer:
    """Binds an address and answers requests with a handler's result."""

    def __init__(
        self,
        kernel: Kernel,
        transport: Transport,
        address: Address,
        handler: RpcHandler,
    ) -> None:
        self.kernel = kernel
        self.transport = transport
        self.address = address
        self.handler = handler
        self.requests_served = 0
        self.requests_failed = 0
        transport.bind(address, self._on_request)

    def open(self) -> None:
        """(Re)bind the endpoint — the server half of a service restart.
        A no-op if the address is already bound."""
        if not self.transport.is_bound(self.address):
            self.transport.bind(self.address, self._on_request)

    def _on_request(self, message: Message) -> None:
        try:
            result = self.handler(message.payload, message)
        except Exception as exc:  # report handler crashes to the caller
            self._send_error(message, exc)
            return
        if isinstance(result, Signal):
            result.wait(lambda value, exc: self._on_async_result(message, value, exc))
        else:
            self._send_reply(message, result)

    def _on_async_result(self, request: Message, value: Any,
                         exc: BaseException | None) -> None:
        if exc is not None:
            self._send_error(request, exc)
        else:
            self._send_reply(request, value)

    def _send_reply(self, request: Message, value: Any) -> None:
        self.requests_served += 1
        self.transport.send(self._reply_message(request, value, error=None))

    def _send_error(self, request: Message, exc: BaseException) -> None:
        self.requests_failed += 1
        self.transport.send(
            self._reply_message(request, None, error=f"{type(exc).__name__}: {exc}")
        )

    def _reply_message(self, request: Message, value: Any, error: str | None) -> Message:
        headers: dict[str, Any] = {H_REQUEST_ID: request.headers.get(H_REQUEST_ID)}
        if error is not None:
            headers[H_ERROR] = error
        return Message(
            kind=KIND_REPLY,
            dst=request.reply_to(),
            payload=value,
            src=self.address,
            headers=headers,
        )

    def close(self) -> None:
        self.transport.unbind(self.address)
