"""Request/reply RPC over the message transport.

Modules use this path when the service they call lives on a *different*
device — the remote-API-call pattern of the EdgeEye-style baseline. The
client correlates replies by request id on a per-client reply address; the
server runs its handler and sends the result (or a remote error) back.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from ..errors import RpcError
from ..sim.kernel import Kernel
from ..sim.signals import Signal
from .address import Address
from .message import KIND_REPLY, KIND_REQUEST, Message
from .transport import Transport

#: Header keys used by the RPC protocol.
H_REQUEST_ID = "rpc_id"
H_REPLY_TO = "reply_to"
H_ERROR = "rpc_error"


class RpcClient:
    """Issues requests from one device; owns an ephemeral reply address."""

    def __init__(self, kernel: Kernel, transport: Transport, device: str) -> None:
        self.kernel = kernel
        self.transport = transport
        self.device = device
        self.reply_address = Address(device, transport.ephemeral_port(device))
        self._request_ids = itertools.count(1)
        self._pending: dict[int, Signal] = {}
        transport.bind(self.reply_address, self._on_reply)
        self.calls_sent = 0

    def call(self, target: Address, payload: Any, timeout: float | None = None) -> Signal:
        """Send *payload* to *target*; the returned signal resolves with the
        reply payload, or fails with :class:`~repro.errors.RpcError` on a
        remote error or timeout."""
        request_id = next(self._request_ids)
        result = self.kernel.signal(name=f"rpc#{request_id}")
        self._pending[request_id] = result
        message = Message(
            kind=KIND_REQUEST,
            dst=target,
            payload=payload,
            src=Address(self.device, self.reply_address.port),
            headers={H_REQUEST_ID: request_id, H_REPLY_TO: str(self.reply_address)},
        )
        self.calls_sent += 1
        sent = self.transport.send(message)
        sent.wait(lambda _v, exc: self._on_send_failure(request_id, exc))
        if timeout is not None:
            self.kernel.schedule(timeout, self._on_timeout, request_id)
        return result

    def _on_send_failure(self, request_id: int, exc: BaseException | None) -> None:
        if exc is None:
            return
        result = self._pending.pop(request_id, None)
        if result is not None and result.pending:
            result.fail(RpcError(f"request delivery failed: {exc}"))

    def _on_timeout(self, request_id: int) -> None:
        result = self._pending.pop(request_id, None)
        if result is not None and result.pending:
            result.fail(RpcError(f"rpc request #{request_id} timed out"))

    def _on_reply(self, message: Message) -> None:
        request_id = message.headers.get(H_REQUEST_ID)
        result = self._pending.pop(request_id, None)
        if result is None or not result.pending:
            return  # late reply after timeout: discard
        error = message.headers.get(H_ERROR)
        if error is not None:
            result.fail(RpcError(str(error), remote=True))
        else:
            result.succeed(message.payload)

    def close(self) -> None:
        self.transport.unbind(self.reply_address)


#: Server handlers receive (payload, message) and either return a plain
#: value, return a Signal that resolves with the value, or raise.
RpcHandler = Callable[[Any, Message], Any]


class RpcServer:
    """Binds an address and answers requests with a handler's result."""

    def __init__(
        self,
        kernel: Kernel,
        transport: Transport,
        address: Address,
        handler: RpcHandler,
    ) -> None:
        self.kernel = kernel
        self.transport = transport
        self.address = address
        self.handler = handler
        self.requests_served = 0
        self.requests_failed = 0
        transport.bind(address, self._on_request)

    def _on_request(self, message: Message) -> None:
        try:
            result = self.handler(message.payload, message)
        except Exception as exc:  # report handler crashes to the caller
            self._send_error(message, exc)
            return
        if isinstance(result, Signal):
            result.wait(lambda value, exc: self._on_async_result(message, value, exc))
        else:
            self._send_reply(message, result)

    def _on_async_result(self, request: Message, value: Any,
                         exc: BaseException | None) -> None:
        if exc is not None:
            self._send_error(request, exc)
        else:
            self._send_reply(request, value)

    def _send_reply(self, request: Message, value: Any) -> None:
        self.requests_served += 1
        self.transport.send(self._reply_message(request, value, error=None))

    def _send_error(self, request: Message, exc: BaseException) -> None:
        self.requests_failed += 1
        self.transport.send(
            self._reply_message(request, None, error=f"{type(exc).__name__}: {exc}")
        )

    def _reply_message(self, request: Message, value: Any, error: str | None) -> Message:
        headers: dict[str, Any] = {H_REQUEST_ID: request.headers.get(H_REQUEST_ID)}
        if error is not None:
            headers[H_ERROR] = error
        return Message(
            kind=KIND_REPLY,
            dst=request.reply_to(),
            payload=value,
            src=self.address,
            headers=headers,
        )

    def close(self) -> None:
        self.transport.unbind(self.address)
