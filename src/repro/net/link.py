"""Link models: how long bytes take to cross the network.

A :class:`LinkSpec` holds the physical parameters; a :class:`Link` is a
kernel-attached transmission channel with a serializing medium (transmissions
queue behind each other, which is what makes a busy Wi-Fi radio a shared
bottleneck). Several links may *share* one medium — that is how the home
Wi-Fi access point is modeled: every device's traffic contends for the same
airtime.

Loss is modeled as TCP-style retransmission delay rather than message drop,
because the paper's ZeroMQ transport runs over TCP: a lost packet delays the
message, it does not destroy it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.kernel import Kernel
from ..sim.resources import Resource
from ..sim.rng import lognormal_around
from ..sim.signals import Signal


@dataclass(frozen=True, slots=True)
class LinkSpec:
    """Physical link parameters.

    Attributes:
        latency_s: one-way propagation + protocol latency in seconds.
        jitter_cv: coefficient of variation of the latency (0 = none).
        bandwidth_bps: usable bandwidth in bits per second.
        loss_prob: probability a transmission needs one TCP retransmit.
        retransmit_penalty_s: extra delay charged per retransmit.
    """

    latency_s: float = 0.002
    jitter_cv: float = 0.2
    bandwidth_bps: float = 100e6
    loss_prob: float = 0.0
    retransmit_penalty_s: float = 0.05

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.bandwidth_bps <= 0:
            raise ValueError("latency must be >= 0 and bandwidth > 0")
        if not 0.0 <= self.loss_prob < 1.0:
            raise ValueError("loss_prob must be in [0, 1)")

    def transmission_time(self, nbytes: int) -> float:
        """Airtime needed to push *nbytes* through the link (no queueing)."""
        return nbytes * 8.0 / self.bandwidth_bps


#: Canonical home-network profiles, roughly matching the paper's testbed
#: (2018-era flagship phone, desktop and TV on the same 802.11ac network).
WIFI_HOME = LinkSpec(latency_s=0.0012, jitter_cv=0.25, bandwidth_bps=120e6, loss_prob=0.005)
ETHERNET_LAN = LinkSpec(latency_s=0.0003, jitter_cv=0.05, bandwidth_bps=1e9)
LOOPBACK = LinkSpec(latency_s=0.00005, jitter_cv=0.05, bandwidth_bps=20e9)

#: The uplink from a home's access point to a metro-area edge cloud: a few
#: milliseconds to a nearby point of presence over a fibre last mile. Heavy
#: services in the shared cloud tier are reachable behind this link; every
#: byte crossing it is metered as egress (``Topology.wan_egress_bytes``).
WAN_METRO = LinkSpec(latency_s=0.005, jitter_cv=0.15, bandwidth_bps=300e6, loss_prob=0.001)

#: A conservative regional-cloud profile for ablations: the latency of a
#: real WAN round trip to a regional datacenter, where shipping frames out
#: of the home rarely pays off.
WAN_REGIONAL = LinkSpec(latency_s=0.02, jitter_cv=0.25, bandwidth_bps=100e6, loss_prob=0.003)


class Link:
    """A transmission channel bound to the kernel.

    ``transfer(nbytes)`` returns a signal that resolves when the last byte
    arrives at the far end. Transmissions serialize on the link's medium
    resource; propagation of one message overlaps the next transmission.
    """

    def __init__(
        self,
        kernel: Kernel,
        spec: LinkSpec,
        rng: np.random.Generator,
        name: str = "link",
        medium: Resource | None = None,
    ) -> None:
        self.kernel = kernel
        self.spec = spec
        self.rng = rng
        self.name = name
        #: The airtime resource. Pass a shared Resource to model a shared
        #: medium (Wi-Fi); default is a private point-to-point medium.
        self.medium = medium if medium is not None else Resource(kernel, 1, f"{name}.medium")
        #: Additional per-message latency, mutable at runtime — the knob the
        #: fault injector turns for transient latency-spike faults.
        self.extra_latency_s = 0.0
        # counters
        self.messages_sent = 0
        self.bytes_sent = 0
        self.retransmits = 0

    def transfer(self, nbytes: int) -> Signal:
        """Start transferring *nbytes*; returns the arrival signal."""
        done = self.kernel.signal(name=f"{self.name}.transfer")
        self.kernel.process(self._transfer(nbytes, done), name=f"{self.name}.tx")
        return done

    def _transfer(self, nbytes: int, done: Signal):
        grant = yield self.medium.request()
        tx_time = self.spec.transmission_time(nbytes)
        if self.spec.loss_prob > 0 and self.rng.random() < self.spec.loss_prob:
            tx_time += self.spec.retransmit_penalty_s
            self.retransmits += 1
        yield tx_time
        self.medium.release(grant)
        self.messages_sent += 1
        self.bytes_sent += nbytes
        latency = lognormal_around(self.rng, self.spec.latency_s, self.spec.jitter_cv)
        yield latency + self.extra_latency_s
        done.succeed(self.kernel.now)

    def expected_delay(self, nbytes: int) -> float:
        """Uncontended expected transfer time (for planning/placement)."""
        return (self.spec.transmission_time(nbytes) + self.spec.latency_s
                + self.extra_latency_s)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name} {self.messages_sent} msgs {self.bytes_sent}B>"
