"""ZeroMQ-flavored socket patterns over a :class:`~repro.net.transport.Transport`.

The paper wires its pipeline with ZeroMQ sockets; this module provides the
same vocabulary:

* PUSH/PULL — one-way pipelined fan-out (module → next module),
* PUB/SUB — topic-filtered broadcast (used by the display/IoT fan-out),
* REQ/REP — request/reply, built on these primitives in :mod:`repro.net.rpc`.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import NetworkError
from ..sim.signals import Signal
from .address import Address
from .message import KIND_DATA, Message
from .transport import Transport


class PullSocket:
    """The receiving end of a PUSH/PULL pipe: binds an address, invokes a
    callback per payload."""

    def __init__(self, transport: Transport, address: Address,
                 callback: Callable[[Any, Message], None]) -> None:
        self.transport = transport
        self.address = address
        self._callback = callback
        self.received_count = 0
        transport.bind(address, self._on_message)

    def _on_message(self, message: Message) -> None:
        self.received_count += 1
        self._callback(message.payload, message)

    def close(self) -> None:
        self.transport.unbind(self.address)


class PushSocket:
    """The sending end of a PUSH/PULL pipe.

    Multiple connected peers receive messages round-robin, matching ZeroMQ
    PUSH semantics (and giving load-balancing across service replicas).
    """

    def __init__(self, transport: Transport, local: Address) -> None:
        self.transport = transport
        self.local = local
        self._peers: list[Address] = []
        self._next = 0
        self.sent_count = 0

    def connect(self, peer: Address) -> None:
        if peer in self._peers:
            raise NetworkError(f"already connected to {peer}")
        self._peers.append(peer)

    def disconnect(self, peer: Address) -> None:
        try:
            index = self._peers.index(peer)
        except ValueError:
            return
        del self._peers[index]
        if self._next > index:
            self._next -= 1

    @property
    def peers(self) -> tuple[Address, ...]:
        return tuple(self._peers)

    def send(self, payload: Any, kind: str = KIND_DATA,
             headers: dict[str, Any] | None = None) -> Signal:
        """Send to the next peer round-robin; returns the delivery signal."""
        if not self._peers:
            raise NetworkError("push socket has no connected peers")
        peer = self._peers[self._next % len(self._peers)]
        self._next += 1
        return self.send_to(peer, payload, kind=kind, headers=headers)

    def send_to(self, peer: Address, payload: Any, kind: str = KIND_DATA,
                headers: dict[str, Any] | None = None) -> Signal:
        """Send to a specific peer (used for addressed fan-out)."""
        message = Message(
            kind=kind, dst=peer, payload=payload, src=self.local,
            headers=dict(headers or {}),
        )
        self.sent_count += 1
        return self.transport.send(message)


class SubSocket:
    """A topic-filtered subscriber; binds an address and registers with
    publishers via :meth:`PubSocket.add_subscriber`."""

    def __init__(self, transport: Transport, address: Address,
                 callback: Callable[[str, Any, Message], None],
                 topics: tuple[str, ...] = ("",)) -> None:
        self.transport = transport
        self.address = address
        self.topics = topics
        self._callback = callback
        transport.bind(address, self._on_message)

    def accepts(self, topic: str) -> bool:
        """ZeroMQ prefix matching: subscribing to '' accepts everything."""
        return any(topic.startswith(prefix) for prefix in self.topics)

    def _on_message(self, message: Message) -> None:
        topic = str(message.headers.get("topic", ""))
        if self.accepts(topic):
            self._callback(topic, message.payload, message)

    def close(self) -> None:
        self.transport.unbind(self.address)


class PubSocket:
    """A publisher that fans every message out to all matching subscribers.

    ZeroMQ PUB drops messages for absent subscribers; likewise, publishing
    with no subscribers is a silent no-op.
    """

    def __init__(self, transport: Transport, local: Address) -> None:
        self.transport = transport
        self.local = local
        self._subscribers: list[SubSocket] = []
        self.published_count = 0

    def add_subscriber(self, sub: SubSocket) -> None:
        if sub not in self._subscribers:
            self._subscribers.append(sub)

    def remove_subscriber(self, sub: SubSocket) -> None:
        if sub in self._subscribers:
            self._subscribers.remove(sub)

    def publish(self, topic: str, payload: Any) -> list[Signal]:
        """Send to every subscriber whose filter matches *topic*."""
        self.published_count += 1
        signals = []
        for sub in self._subscribers:
            if sub.accepts(topic):
                message = Message(
                    kind=KIND_DATA, dst=sub.address, payload=payload,
                    src=self.local, headers={"topic": topic},
                )
                signals.append(self.transport.send(message))
        return signals
