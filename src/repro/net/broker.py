"""Broker-relayed transport: the architecture the paper argues against.

Publish/subscribe systems such as Kafka or RabbitMQ interpose a broker:
every message travels producer → broker → consumer, paying the network twice
plus broker processing. :class:`BrokeredTransport` models exactly that so
the benchmark in ``benchmarks/bench_ablation_broker.py`` can quantify the
overhead relative to the brokerless ZeroMQ-style path (§3.2 of the paper).
"""

from __future__ import annotations

from ..errors import NetworkError
from ..sim.kernel import Kernel
from ..sim.resources import Resource
from ..sim.signals import Signal
from .message import Message
from .topology import Topology
from .transport import Transport

#: Default per-message broker processing time (enqueue + index + dequeue).
DEFAULT_BROKER_OVERHEAD_S = 0.0015


class BrokeredTransport(Transport):
    """A transport that relays every message through a broker device.

    The broker device must exist in the topology (it is typically the most
    capable machine, e.g. the desktop). Broker processing is serialized
    through a worker pool to model queueing under load.
    """

    def __init__(
        self,
        kernel: Kernel,
        topology: Topology,
        broker_device: str,
        processing_s: float = DEFAULT_BROKER_OVERHEAD_S,
        workers: int = 4,
    ) -> None:
        super().__init__(kernel, topology)
        if not topology.has_device(broker_device):
            raise NetworkError(f"broker device {broker_device!r} not in topology")
        self.broker_device = broker_device
        self.processing_s = processing_s
        self._workers = Resource(kernel, workers, name=f"{broker_device}.broker")
        self.relayed_count = 0

    def _route(self, message: Message) -> Signal:
        done = self.kernel.signal(name=f"broker-route#{message.msg_id}")
        self.kernel.process(self._relay(message, done), name="broker.relay")
        return done

    def _relay(self, message: Message, done: Signal):
        assert message.src is not None
        # Leg 1: producer -> broker.
        yield self.topology.transfer(
            message.src.device, self.broker_device, message.size_bytes
        )
        # Broker processing (queues under load).
        grant = yield self._workers.request()
        yield self.processing_s
        self._workers.release(grant)
        # Leg 2: broker -> consumer.
        yield self.topology.transfer(
            self.broker_device, message.dst.device, message.size_bytes
        )
        self.relayed_count += 1
        done.succeed(self.kernel.now)
