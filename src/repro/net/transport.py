"""Message transports.

:class:`BrokerlessTransport` delivers directly along the topology route —
this is the ZeroMQ-style data path the paper uses. A brokered variant (see
:mod:`repro.net.broker`) relays every message through a broker device, the
Kafka/RabbitMQ architecture the paper argues adds avoidable hops.
"""

from __future__ import annotations

import itertools
from typing import Callable

from ..errors import DeliveryError, NetworkError
from ..sim.kernel import Kernel
from ..sim.signals import Signal
from .address import Address
from .message import Message
from .topology import Topology

Handler = Callable[[Message], None]

#: First ephemeral port handed out per device.
EPHEMERAL_BASE = 49152


class Transport:
    """Shared bind/deliver machinery; subclasses define the routing."""

    def __init__(self, kernel: Kernel, topology: Topology) -> None:
        self.kernel = kernel
        self.topology = topology
        self._handlers: dict[Address, Handler] = {}
        self._ephemeral: dict[str, itertools.count] = {}
        self.delivered_count = 0
        self.failed_count = 0

    # -- binding ---------------------------------------------------------------
    def bind(self, address: Address, handler: Handler) -> None:
        """Register *handler* to receive messages addressed to *address*."""
        if address in self._handlers:
            raise NetworkError(f"address {address} already bound")
        if not self.topology.has_device(address.device):
            raise NetworkError(f"cannot bind {address}: unknown device")
        self._handlers[address] = handler

    def unbind(self, address: Address) -> None:
        self._handlers.pop(address, None)

    def is_bound(self, address: Address) -> bool:
        return address in self._handlers

    def ephemeral_port(self, device: str) -> int:
        """Allocate a fresh ephemeral port on *device* (for reply sockets)."""
        counter = self._ephemeral.setdefault(device, itertools.count(EPHEMERAL_BASE))
        return next(counter)

    # -- sending -----------------------------------------------------------------
    def send(self, message: Message) -> Signal:
        """Transfer *message* and deliver it to the bound handler.

        Returns a signal resolving with the delivery time, or failing with
        :class:`~repro.errors.DeliveryError` if nothing is bound at the
        destination when the message arrives.
        """
        if message.src is None:
            raise NetworkError("message needs a src address for routing")
        message.sent_at = self.kernel.now
        done = self.kernel.signal(name=f"send#{message.msg_id}")
        arrival = self._route(message)
        arrival.wait(lambda _t, exc: self._deliver(message, done, exc))
        return done

    def _route(self, message: Message) -> Signal:
        """Return the arrival signal for the message's bytes. Overridden by
        brokered transports."""
        return self.topology.transfer(
            message.src.device, message.dst.device, message.size_bytes
        )

    def _deliver(self, message: Message, done: Signal, exc: BaseException | None) -> None:
        if exc is not None:
            self.failed_count += 1
            done.fail(exc)
            return
        handler = self._handlers.get(message.dst)
        if handler is None:
            self.failed_count += 1
            done.fail(DeliveryError(f"no listener bound at {message.dst}"))
            return
        message.delivered_at = self.kernel.now
        self.delivered_count += 1
        handler(message)
        done.succeed(self.kernel.now)


class BrokerlessTransport(Transport):
    """Direct peer-to-peer delivery (the ZeroMQ model): one route, no relay."""
