"""Message transports.

:class:`BrokerlessTransport` delivers directly along the topology route —
this is the ZeroMQ-style data path the paper uses. A brokered variant (see
:mod:`repro.net.broker`) relays every message through a broker device, the
Kafka/RabbitMQ architecture the paper argues adds avoidable hops.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from ..errors import DeliveryError, NetworkError
from ..sim.kernel import Kernel
from ..sim.signals import Signal
from .address import Address
from .message import Message
from .topology import Topology

Handler = Callable[[Message], None]

#: First ephemeral port handed out per device.
EPHEMERAL_BASE = 49152


class Transport:
    """Shared bind/deliver machinery; subclasses define the routing."""

    def __init__(self, kernel: Kernel, topology: Topology) -> None:
        self.kernel = kernel
        self.topology = topology
        self._handlers: dict[Address, Handler] = {}
        self._ephemeral: dict[str, itertools.count] = {}
        # insertion-ordered so close() fails pending sends deterministically
        self._pending_sends: dict[Signal, Message] = {}
        self._closed = False
        self.sent_count = 0
        self.delivered_count = 0
        self.failed_count = 0
        #: The home's :class:`~repro.audit.auditor.InvariantAuditor`, or
        #: ``None`` while auditing is off (set by ``watch_transport``).
        self.auditor: Any = None

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def in_flight(self) -> int:
        """Messages sent but neither delivered nor failed yet. The
        conservation law ``sent == delivered + failed + in_flight`` holds
        at every instant; the auditor checks it."""
        return len(self._pending_sends)

    # -- binding ---------------------------------------------------------------
    def bind(self, address: Address, handler: Handler) -> None:
        """Register *handler* to receive messages addressed to *address*."""
        if self._closed:
            raise NetworkError(f"cannot bind {address}: transport is closed")
        if address in self._handlers:
            raise NetworkError(f"address {address} already bound")
        if not self.topology.has_device(address.device):
            raise NetworkError(f"cannot bind {address}: unknown device")
        self._handlers[address] = handler

    def unbind(self, address: Address) -> None:
        self._handlers.pop(address, None)

    def is_bound(self, address: Address) -> bool:
        return address in self._handlers

    def ephemeral_port(self, device: str) -> int:
        """Allocate a fresh ephemeral port on *device* (for reply sockets)."""
        counter = self._ephemeral.setdefault(device, itertools.count(EPHEMERAL_BASE))
        return next(counter)

    # -- sending -----------------------------------------------------------------
    def send(self, message: Message) -> Signal:
        """Transfer *message* and deliver it to the bound handler.

        Returns a signal resolving with the delivery time, or failing with
        :class:`~repro.errors.DeliveryError` if nothing is bound at the
        destination when the message arrives.
        """
        if message.src is None:
            raise NetworkError("message needs a src address for routing")
        message.sent_at = self.kernel.now
        self.sent_count += 1
        if self.auditor is not None:
            self.auditor.on_message_sent(self, message)
        done = self.kernel.signal(name=f"send#{message.msg_id}")
        if self._closed:
            self._count_failure(message)
            done.fail(DeliveryError("transport is closed"))
            return done
        if not self.topology.device_is_up(message.src.device):
            self._count_failure(message)
            done.fail(DeliveryError(f"source device {message.src.device!r} is down"))
            return done
        try:
            arrival = self._route(message)
        except NetworkError as exc:
            # routing failures (partition, unknown route) surface through the
            # signal so retry/failover paths see them like any other failure
            self._count_failure(message)
            done.fail(exc)
            return done
        self._pending_sends[done] = message
        done.wait(lambda _v, _e: self._pending_sends.pop(done, None))
        arrival.wait(lambda _t, exc: self._deliver(message, done, exc))
        return done

    def _count_failure(self, message: Message) -> None:
        self.failed_count += 1
        if self.auditor is not None:
            self.auditor.on_message_failed(self, message)

    def _route(self, message: Message) -> Signal:
        """Return the arrival signal for the message's bytes. Overridden by
        brokered transports."""
        return self.topology.transfer(
            message.src.device, message.dst.device, message.size_bytes
        )

    def _deliver(self, message: Message, done: Signal, exc: BaseException | None) -> None:
        if not done.pending:
            return  # already failed (e.g. the transport closed mid-flight)
        if exc is not None:
            self._count_failure(message)
            done.fail(exc)
            return
        if self._closed:
            self._count_failure(message)
            done.fail(DeliveryError("transport closed while message in flight"))
            return
        if not self.topology.device_is_up(message.dst.device):
            self._count_failure(message)
            done.fail(DeliveryError(f"device {message.dst.device!r} is down"))
            return
        handler = self._handlers.get(message.dst)
        if handler is None:
            self._count_failure(message)
            done.fail(DeliveryError(f"no listener bound at {message.dst}"))
            return
        message.delivered_at = self.kernel.now
        self.delivered_count += 1
        if self.auditor is not None:
            self.auditor.on_message_delivered(self, message)
        handler(message)
        done.succeed(self.kernel.now)

    # -- teardown ----------------------------------------------------------------
    def close(self) -> None:
        """Idempotent shutdown: unbind every address and fail in-flight sends
        (instead of leaking forever-pending signals). Further ``bind``/``send``
        calls are rejected/failed."""
        if self._closed:
            return
        self._closed = True
        self._handlers.clear()
        pending = list(self._pending_sends.items())
        self._pending_sends.clear()
        for sig, message in pending:
            if sig.pending:
                self._count_failure(message)
                sig.fail(DeliveryError("transport closed"))


class BrokerlessTransport(Transport):
    """Direct peer-to-peer delivery (the ZeroMQ model): one route, no relay."""
