"""Network topology: which devices can reach which, over what links.

The home network is a graph (networkx) whose nodes are device names and
whose edges carry :class:`~repro.net.link.Link` objects. The common case is
a star around a Wi-Fi access point — created with :meth:`Topology.add_wifi`
— where all attached devices contend for one shared radio medium, exactly
the condition under which the paper's baseline (which ships frames back and
forth) loses to co-located modules.

Message delivery walks the shortest path hop by hop, so a two-hop
phone→AP→desktop transfer pays airtime twice on the shared medium, as a real
Wi-Fi frame relay does.
"""

from __future__ import annotations

import networkx as nx

from ..errors import LinkDown, NetworkError
from ..sim.kernel import Kernel
from ..sim.resources import Resource
from ..sim.rng import RngStreams, ScopedRng
from ..sim.signals import Signal
from .link import LOOPBACK, WAN_METRO, Link, LinkSpec


class Topology:
    """The device connectivity graph plus per-edge links."""

    def __init__(self, kernel: Kernel, rng: RngStreams | ScopedRng | None = None) -> None:
        self.kernel = kernel
        self.rng = rng if rng is not None else RngStreams(seed=0)
        self.graph = nx.Graph()
        self._loopbacks: dict[str, Link] = {}
        self._shared_media: dict[str, Resource] = {}
        self._down: set[str] = set()
        self._partitioned: set[str] = set()
        #: Metered WAN uplinks, keyed by the cloud device behind each.
        self._wan_links: dict[str, Link] = {}

    # -- construction --------------------------------------------------------
    def add_device(self, name: str) -> None:
        """Register a device node (idempotent)."""
        self.graph.add_node(name, kind="device")

    def add_wifi(self, name: str = "wifi", spec: LinkSpec | None = None) -> None:
        """Create a Wi-Fi access point with a single shared airtime medium."""
        if name in self._shared_media:
            raise NetworkError(f"wifi network {name!r} already exists")
        self.graph.add_node(name, kind="ap", spec=spec or LinkSpec())
        self._shared_media[name] = Resource(self.kernel, 1, f"{name}.medium")

    def attach(self, device: str, ap: str, spec: LinkSpec | None = None) -> None:
        """Attach *device* to access point *ap*, sharing the AP's medium."""
        medium = self._shared_media.get(ap)
        if medium is None:
            raise NetworkError(f"unknown wifi network {ap!r}")
        self.add_device(device)
        link_spec = spec or self.graph.nodes[ap]["spec"]
        link = Link(
            self.kernel,
            link_spec,
            self.rng.stream(f"link/{device}-{ap}"),
            name=f"{device}<->{ap}",
            medium=medium,
        )
        self.graph.add_edge(device, ap, link=link)

    def add_cloud(
        self,
        name: str = "cloud",
        spec: LinkSpec | None = None,
        ap: str | None = None,
    ) -> Link:
        """Attach a cloud-tier device behind the access point *ap* (default:
        the home's only AP) over a dedicated, metered WAN uplink.

        The cloud node is a regular device — services deploy to it and the
        shortest path from any home device crosses the AP and then the WAN
        link — but every byte on the WAN link counts toward
        :meth:`wan_egress_bytes`, which is what the fleet cost model bills
        as cloud egress. The uplink has its own medium (the last mile is
        not the home radio), so cloud traffic only contends for Wi-Fi
        airtime on its in-home hop.
        """
        if name in self._wan_links or name in self.graph:
            raise NetworkError(f"device {name!r} already attached")
        if ap is None:
            if not self._shared_media:
                raise NetworkError("add an access point before add_cloud()")
            ap = next(iter(self._shared_media))
        elif ap not in self._shared_media:
            raise NetworkError(f"unknown wifi network {ap!r}")
        self.add_device(name)
        link = Link(
            self.kernel,
            spec or WAN_METRO,
            self.rng.stream(f"wan/{name}"),
            name=f"{ap}<->{name}",
        )
        self.graph.add_edge(ap, name, link=link)
        self._wan_links[name] = link
        return link

    def is_cloud(self, name: str) -> bool:
        """True when *name* is a device attached via :meth:`add_cloud`."""
        return name in self._wan_links

    def cloud_devices(self) -> list[str]:
        """Cloud-tier devices, in attachment order."""
        return list(self._wan_links)

    def wan_egress_bytes(self) -> int:
        """Total bytes that crossed any metered WAN uplink (both
        directions — requests out of the home and replies back in)."""
        return sum(link.bytes_sent for link in self._wan_links.values())

    def add_wired(self, a: str, b: str, spec: LinkSpec | None = None) -> None:
        """Connect two devices with a dedicated point-to-point link."""
        self.add_device(a)
        self.add_device(b)
        link = Link(
            self.kernel,
            spec or LinkSpec(),
            self.rng.stream(f"link/{a}-{b}"),
            name=f"{a}<->{b}",
        )
        self.graph.add_edge(a, b, link=link)

    # -- failure surface --------------------------------------------------------
    def set_device_up(self, name: str, up: bool = True) -> None:
        """Mark a device as powered on/off. A down device neither sends nor
        receives; the :class:`~repro.net.transport.Transport` consults this
        flag at both ends of every delivery."""
        if name not in self.graph:
            raise NetworkError(f"unknown device {name!r}")
        if up:
            self._down.discard(name)
        else:
            self._down.add(name)

    def device_is_up(self, name: str) -> bool:
        return name not in self._down

    def partition(self, name: str) -> None:
        """Cut *name* off from the network (device stays up — the classic
        'fell off Wi-Fi' fault). Loopback traffic is unaffected."""
        if name not in self.graph:
            raise NetworkError(f"unknown node {name!r}")
        self._partitioned.add(name)

    def heal(self, name: str) -> None:
        """Undo :meth:`partition` (idempotent)."""
        self._partitioned.discard(name)

    def is_partitioned(self, name: str) -> bool:
        return name in self._partitioned

    def incident_links(self, name: str) -> list[Link]:
        """Every link touching *name* (for latency-spike fault injection)."""
        if name not in self.graph:
            raise NetworkError(f"unknown node {name!r}")
        return [
            self.graph.edges[name, nbr]["link"]
            for nbr in self.graph.neighbors(name)
        ]

    # -- queries ---------------------------------------------------------------
    def has_device(self, name: str) -> bool:
        return name in self.graph and self.graph.nodes[name].get("kind") == "device"

    def devices(self) -> list[str]:
        return [n for n, d in self.graph.nodes(data=True) if d.get("kind") == "device"]

    def loopback(self, device: str) -> Link:
        """The in-process 'link' used for same-device delivery."""
        link = self._loopbacks.get(device)
        if link is None:
            link = Link(
                self.kernel,
                LOOPBACK,
                self.rng.stream(f"loopback/{device}"),
                name=f"{device}.loopback",
            )
            self._loopbacks[device] = link
        return link

    def path_links(self, src: str, dst: str) -> list[Link]:
        """Links along the shortest path from *src* to *dst*.

        Same-device traffic returns the loopback link. Raises
        :class:`~repro.errors.LinkDown` when no path exists.
        """
        if src == dst:
            return [self.loopback(src)]
        if src not in self.graph or dst not in self.graph:
            raise LinkDown(f"unknown device in route {src!r} -> {dst!r}")
        for endpoint in (src, dst):
            if endpoint in self._partitioned:
                raise LinkDown(f"{endpoint!r} is partitioned from the network")
        graph = self.graph
        if self._partitioned:
            graph = nx.subgraph_view(
                self.graph, filter_node=lambda n: n not in self._partitioned
            )
        try:
            path = nx.shortest_path(graph, src, dst)
        except nx.NetworkXNoPath as exc:
            raise LinkDown(f"no route from {src!r} to {dst!r}") from exc
        return [
            self.graph.edges[a, b]["link"] for a, b in zip(path[:-1], path[1:])
        ]

    def expected_delay(self, src: str, dst: str, nbytes: int) -> float:
        """Uncontended expected transfer time along the route (planning)."""
        return sum(link.expected_delay(nbytes) for link in self.path_links(src, dst))

    # -- transfer ---------------------------------------------------------------
    def transfer(self, src: str, dst: str, nbytes: int) -> Signal:
        """Move *nbytes* from *src* to *dst* hop by hop.

        Returns a signal resolving with the arrival time. The route is
        resolved eagerly so routing errors raise at call time.
        """
        links = self.path_links(src, dst)
        done = self.kernel.signal(name=f"transfer:{src}->{dst}")
        self.kernel.process(self._relay(links, nbytes, done), name="relay")
        return done

    def _relay(self, links: list[Link], nbytes: int, done: Signal):
        for link in links:
            yield link.transfer(nbytes)
        done.succeed(self.kernel.now)
