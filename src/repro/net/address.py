"""Endpoint addressing.

The paper's pipeline configuration names endpoints with strings such as
``"bind#tcp://*:5861"`` (Listing 1). :func:`parse_endpoint` accepts exactly
that syntax; :class:`Address` is the resolved (device, port) pair used for
routing.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import AddressError

_ENDPOINT_RE = re.compile(
    r"^(?P<mode>bind|connect)#(?P<proto>tcp|inproc)://(?P<host>[\w.*-]+):(?P<port>\d+)$"
)


@dataclass(frozen=True, slots=True)
class Address:
    """A routable address: a device name plus a numeric port."""

    device: str
    port: int

    def __post_init__(self) -> None:
        if not self.device:
            raise AddressError("address requires a device name")
        if not 0 < self.port < 65536:
            raise AddressError(f"port {self.port} out of range")

    def __str__(self) -> str:
        return f"{self.device}:{self.port}"


@dataclass(frozen=True, slots=True)
class EndpointSpec:
    """A parsed endpoint string.

    ``mode`` is ``bind`` (listen on this device) or ``connect`` (dial a
    remote); ``host`` is ``*`` for bind-any or a device name.
    """

    mode: str
    proto: str
    host: str
    port: int

    def resolve(self, local_device: str) -> Address:
        """Turn the spec into a concrete :class:`Address`.

        A ``bind`` spec with host ``*`` resolves to the local device; a
        ``connect`` spec must name its target host explicitly.
        """
        if self.mode == "bind":
            device = local_device if self.host == "*" else self.host
            return Address(device, self.port)
        if self.host == "*":
            raise AddressError("connect endpoint requires an explicit host")
        return Address(self.host, self.port)

    def __str__(self) -> str:
        return f"{self.mode}#{self.proto}://{self.host}:{self.port}"


def parse_endpoint(text: str) -> EndpointSpec:
    """Parse an endpoint string like ``"bind#tcp://*:5861"``.

    Raises :class:`~repro.errors.AddressError` on malformed input.
    """
    match = _ENDPOINT_RE.match(text.strip())
    if match is None:
        raise AddressError(
            f"malformed endpoint {text!r}; expected e.g. 'bind#tcp://*:5861'"
        )
    port = int(match["port"])
    # port 0 means "assign at deployment" (only valid in endpoint specs,
    # never in resolved addresses)
    if not 0 <= port < 65536:
        raise AddressError(f"port {port} out of range in {text!r}")
    return EndpointSpec(match["mode"], match["proto"], match["host"], port)


def parse_address(text: str) -> Address:
    """Parse a plain ``device:port`` string into an :class:`Address`."""
    device, sep, port_text = text.rpartition(":")
    if not sep or not device:
        raise AddressError(f"malformed address {text!r}; expected 'device:port'")
    try:
        port = int(port_text)
    except ValueError as exc:
        raise AddressError(f"malformed port in {text!r}") from exc
    return Address(device, port)
