"""Client-side resilience policies: retry with backoff, circuit breaking.

The edge setting of the paper (§2, §7) is a home full of consumer devices
that reboot, drop off Wi-Fi, and come back.  A caller that simply blocks on
a dead endpoint stalls its whole pipeline; one that hammers a dead endpoint
wastes the medium for everyone else.  The two policies here are the classic
pair used by production RPC stacks:

* :class:`RetryPolicy` — capped exponential backoff with decorrelating
  jitter.  Jitter is drawn from a *named deterministic* RNG stream
  (see :mod:`repro.sim.rng`), so a seeded simulation produces an identical
  retry schedule on every run.
* :class:`CircuitBreaker` — a per-target failure counter that trips *open*
  after ``failure_threshold`` consecutive transport failures, rejects calls
  instantly while open, and after ``reset_timeout_s`` lets exactly one
  *half-open* probe through to test whether the target recovered.

Both are plain state machines with no kernel dependencies, which keeps them
trivially unit-testable; the :class:`~repro.net.rpc.RpcClient` drives them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Circuit breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Capped exponential backoff with optional jitter.

    Args:
        max_attempts: total attempts, including the first (1 = no retry).
        base_delay_s: delay before the first retry.
        multiplier: growth factor per retry.
        max_delay_s: ceiling on any single delay.
        jitter: relative jitter half-width; the delay is scaled by a factor
            uniform in ``[1 - jitter, 1 + jitter]``.  Requires an RNG at
            :meth:`backoff_s` time; with ``rng=None`` the schedule is the
            pure deterministic exponential.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def backoff_s(self, attempt: int, rng: np.random.Generator | None = None) -> float:
        """Delay before retry number *attempt* (1 = after the first failure)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = min(self.max_delay_s, self.base_delay_s * self.multiplier ** (attempt - 1))
        if self.jitter > 0.0 and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return max(0.0, delay)

    def deadline_allows(self, delay_s: float, now: float, deadline: float) -> bool:
        """Whether a retry delayed by *delay_s* is worth starting at all.

        An attempt that would begin at (or after) the caller's deadline
        cannot complete before it — retrying past that point only amplifies
        overload with work whose answer nobody is waiting for. The
        :class:`~repro.net.rpc.RpcClient` consults this before scheduling
        each retry and abandons the call when it returns ``False``."""
        return now + delay_s < deadline - 1e-9


@dataclass(frozen=True, slots=True)
class CircuitBreakerPolicy:
    """Knobs for :class:`CircuitBreaker`."""

    failure_threshold: int = 5
    reset_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be positive")


class CircuitBreaker:
    """The closed → open → half-open state machine for one target.

    ``allow(now)`` must be consulted before each attempt; the caller then
    reports the outcome with :meth:`record_success` / :meth:`record_failure`.
    While half-open, only a single probe is admitted at a time: its success
    closes the circuit, its failure re-opens it for another full
    ``reset_timeout_s``.
    """

    def __init__(self, policy: CircuitBreakerPolicy, name: str = "") -> None:
        self.policy = policy
        self.name = name
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = float("-inf")
        self._probe_in_flight = False
        # statistics
        self.opens = 0
        self.rejections = 0

    def allow(self, now: float) -> bool:
        """Whether an attempt may proceed at simulated time *now*."""
        if self.state == OPEN and now - self.opened_at >= self.policy.reset_timeout_s:
            self.state = HALF_OPEN
            self._probe_in_flight = False
        if self.state == CLOSED:
            return True
        if self.state == HALF_OPEN and not self._probe_in_flight:
            self._probe_in_flight = True
            return True
        self.rejections += 1
        return False

    def record_success(self) -> None:
        self.state = CLOSED
        self.consecutive_failures = 0
        self._probe_in_flight = False

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        self._probe_in_flight = False
        tripped = (
            self.state == HALF_OPEN
            or (self.state == CLOSED
                and self.consecutive_failures >= self.policy.failure_threshold)
        )
        if tripped:
            self.state = OPEN
            self.opened_at = now
            self.opens += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<CircuitBreaker {self.name or '?'} {self.state}"
                f" failures={self.consecutive_failures}>")
