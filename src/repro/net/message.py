"""Message envelopes carried by the transports.

A :class:`Message` wraps a payload with routing and tracing metadata. Sizes
are computed once at construction via the wire-format size model so every
transport charges links consistently.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from .address import Address
from .wire import payload_size

_message_ids = itertools.count(1)

#: Message kinds used by the runtime; free-form strings are also allowed.
KIND_DATA = "data"  # module-to-module data flow (call_module)
KIND_REQUEST = "request"  # RPC request (call_service, remote)
KIND_REPLY = "reply"  # RPC response
KIND_SIGNAL = "signal"  # flow-control ready signal (sink -> source)

#: Header key carrying a trace context (``[trace_id, span_id]``) across
#: module hops and RPC calls. Injected *after* message construction so it
#: never counts toward ``size_bytes``: the ~30 bytes a real tracer adds are
#: below the size model's resolution, and keeping them out guarantees a
#: traced run replays bit-for-bit like an untraced one (no observer effect).
H_TRACE = "trace"


@dataclass(slots=True)
class Message:
    """One unit of communication between two addresses.

    Attributes:
        kind: one of the ``KIND_*`` constants (or any string).
        src: sender address; ``None`` for anonymous senders.
        dst: destination address.
        payload: the wire-encodable body.
        headers: small string-keyed metadata (trace ids, frame ids, ...).
        size_bytes: bytes charged on the wire (payload + headers + envelope).
        sent_at / delivered_at: simulated timestamps filled by the transport.
    """

    kind: str
    dst: Address
    payload: Any = None
    src: Address | None = None
    headers: dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    size_bytes: int = 0
    sent_at: float | None = None
    delivered_at: float | None = None

    def __post_init__(self) -> None:
        if self.size_bytes == 0:
            self.size_bytes = payload_size(self.payload) + payload_size(self.headers)

    @property
    def latency(self) -> float:
        """Transfer latency in seconds; raises if not yet delivered."""
        if self.sent_at is None or self.delivered_at is None:
            raise ValueError("message has not completed a transfer")
        return self.delivered_at - self.sent_at

    def reply_to(self) -> Address:
        """The address replies should go to (from the ``reply_to`` header,
        falling back to the source address)."""
        header = self.headers.get("reply_to")
        if header is not None:
            device, _, port = str(header).rpartition(":")
            return Address(device, int(port))
        if self.src is None:
            raise ValueError("message has no reply address")
        return self.src

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Message #{self.msg_id} {self.kind} {self.src}->{self.dst}"
            f" {self.size_bytes}B>"
        )
