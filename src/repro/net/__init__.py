"""Network substrate: addressing, wire format, links, topology, transports.

This package stands in for the paper's physical home network (Wi-Fi between
phone, desktop and TV) and its ZeroMQ messaging layer, plus a broker-relayed
transport used as the architectural counterexample.
"""

from .address import Address, EndpointSpec, parse_address, parse_endpoint
from .broker import BrokeredTransport
from .link import (
    ETHERNET_LAN,
    LOOPBACK,
    WAN_METRO,
    WAN_REGIONAL,
    WIFI_HOME,
    Link,
    LinkSpec,
)
from .message import KIND_DATA, KIND_REPLY, KIND_REQUEST, KIND_SIGNAL, Message
from .resilience import CircuitBreaker, CircuitBreakerPolicy, RetryPolicy
from .rpc import DEFAULT_TIMEOUT_S, RpcClient, RpcServer
from .sockets import PubSocket, PullSocket, PushSocket, SubSocket
from .topology import Topology
from .transport import BrokerlessTransport, Transport
from .wire import WireFormatError, decode, encode, payload_size

__all__ = [
    "Address",
    "BrokeredTransport",
    "BrokerlessTransport",
    "CircuitBreaker",
    "CircuitBreakerPolicy",
    "DEFAULT_TIMEOUT_S",
    "ETHERNET_LAN",
    "EndpointSpec",
    "KIND_DATA",
    "KIND_REPLY",
    "KIND_REQUEST",
    "KIND_SIGNAL",
    "LOOPBACK",
    "Link",
    "LinkSpec",
    "Message",
    "PubSocket",
    "PullSocket",
    "PushSocket",
    "RetryPolicy",
    "RpcClient",
    "RpcServer",
    "SubSocket",
    "Topology",
    "Transport",
    "WAN_METRO",
    "WAN_REGIONAL",
    "WIFI_HOME",
    "WireFormatError",
    "decode",
    "encode",
    "parse_address",
    "parse_endpoint",
    "payload_size",
]
