"""VideoPipe: building video stream processing pipelines at the edge.

A full reproduction of Salehe et al., *Middleware Industry '19*
(DOI 10.1145/3366626.3368131). The package builds the paper's whole stack:

* :mod:`repro.sim` — deterministic discrete-event kernel (plus a wall-clock
  realtime mode);
* :mod:`repro.net` — home Wi-Fi model, ZeroMQ-style brokerless transport,
  broker baseline, RPC;
* :mod:`repro.frames` / :mod:`repro.motion` / :mod:`repro.vision` — the
  synthetic camera, human motion models, and the paper's actual algorithms
  (17-keypoint pose, kNN activity recognition, k-means rep counting);
* :mod:`repro.devices` — heterogeneous device models (2018 flagship phone,
  desktop, 4K TV, ...);
* :mod:`repro.runtime` — the uniform FaaS-style module runtime (Table 1);
* :mod:`repro.services` — stateless container/native services with
  replicas, sharing and autoscaling;
* :mod:`repro.pipeline` — DAG configuration (Listing 1 syntax included),
  placement (co-located vs single-host baseline) and deployment;
* :mod:`repro.apps` — the fitness, gesture-control and fall-detection
  applications the paper evaluates.

Quickstart::

    from repro import VideoPipe
    from repro.apps import (FitnessApp, fitness_pipeline_config,
                            install_fitness_services)

    home = VideoPipe.paper_testbed(seed=7)
    services = install_fitness_services(home)
    app = FitnessApp(home, services)
    pipeline = app.deploy(fitness_pipeline_config(fps=20.0, duration_s=30.0))
    home.run(until=31.0)
    print(pipeline.metrics.throughput_fps(31.0, warmup_s=2.0), "fps")
"""

from .core import VideoPipe
from .errors import (
    AdmissionError,
    AuditError,
    ConfigError,
    DeploymentError,
    DeviceError,
    FaultError,
    FrameStoreError,
    NetworkError,
    PlacementError,
    ReproError,
    ServiceError,
    SimulationError,
    StaleHandleError,
)
from .faults import ChaosInjector, FaultEvent, FaultPlan
from .liveops import CanaryPolicy, LineageRecorder, LiveOpsManager, ModuleUpgrade
from .pipeline import (
    AuditConfig,
    DataPlaneConfig,
    ModuleConfig,
    Pipeline,
    PerfConfig,
    PipelineConfig,
    TraceConfig,
    parse_pipeline_json,
    parse_pipeline_text,
)
from .runtime import Module, ModuleContext, ModuleEvent, register_module
from .services import Service, ServiceCallContext
from .slo import SLO, SLOConfig

__version__ = "1.0.0"

__all__ = [
    "AdmissionError",
    "AuditConfig",
    "AuditError",
    "CanaryPolicy",
    "ChaosInjector",
    "ConfigError",
    "DeploymentError",
    "DataPlaneConfig",
    "DeviceError",
    "FaultError",
    "FaultEvent",
    "FaultPlan",
    "FrameStoreError",
    "LineageRecorder",
    "LiveOpsManager",
    "Module",
    "ModuleConfig",
    "ModuleContext",
    "ModuleEvent",
    "ModuleUpgrade",
    "NetworkError",
    "Pipeline",
    "PerfConfig",
    "PipelineConfig",
    "PlacementError",
    "ReproError",
    "SLO",
    "SLOConfig",
    "Service",
    "ServiceCallContext",
    "ServiceError",
    "SimulationError",
    "StaleHandleError",
    "TraceConfig",
    "VideoPipe",
    "__version__",
    "parse_pipeline_json",
    "parse_pipeline_text",
    "register_module",
]
