"""The self-management loop: alarms drive scaling and migration.

§7 names three future components — automatic deployment, scheduling, and
monitoring. The :class:`Orchestrator` closes the loop between them: it
periodically evaluates *remedies* against the monitor's fresh state, so a
saturated service grows a replica and an overloaded device sheds a module,
without an operator in the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..sim.kernel import Kernel
from .monitor import Monitor

if TYPE_CHECKING:  # pragma: no cover
    from ..pipeline.pipeline import Pipeline
    from .failure_detector import FailureDetector


@dataclass(frozen=True, slots=True)
class Action:
    """One remediation the orchestrator executed."""

    at: float
    remedy: str
    description: str


@dataclass(slots=True)
class Remedy:
    """A named condition → action pair with a cooldown.

    ``condition`` reads the monitor and returns a description string when
    the remedy should fire (or None); ``action`` performs the change.
    """

    name: str
    condition: Callable[[Monitor], str | None]
    action: Callable[[], None]
    cooldown_s: float = 5.0
    max_firings: int | None = None
    _last_fired: float = -1e18
    _fired: int = 0

    def due(self, monitor: Monitor, now: float) -> str | None:
        if self.max_firings is not None and self._fired >= self.max_firings:
            return None
        if now - self._last_fired < self.cooldown_s:
            return None
        return self.condition(monitor)


class Orchestrator:
    """Evaluates remedies on a fixed period against the monitor."""

    def __init__(self, kernel: Kernel, monitor: Monitor,
                 period_s: float = 1.0) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.kernel = kernel
        self.monitor = monitor
        self.period_s = period_s
        self._remedies: list[Remedy] = []
        self.actions: list[Action] = []
        #: (time, remedy name, exception) for actions that raised; a broken
        #: remedy must not kill the control loop.
        self.action_failures: list[tuple[float, str, Exception]] = []
        self._running = False

    def add_remedy(self, remedy: Remedy) -> None:
        self._remedies.append(remedy)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.kernel.process(self._loop(), name="orchestrator")

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running:
            yield self.period_s
            if not self._running:
                break
            self.evaluate_once()

    def evaluate_once(self) -> list[Action]:
        """Check every remedy now; returns the actions taken."""
        fired = []
        now = self.kernel.now
        for remedy in self._remedies:
            description = remedy.due(self.monitor, now)
            if description is None:
                continue
            remedy._last_fired = now  # cooldown applies even to failures
            try:
                remedy.action()
            except Exception as exc:
                self.action_failures.append((now, remedy.name, exc))
                continue
            remedy._fired += 1
            action = Action(at=now, remedy=remedy.name, description=description)
            self.actions.append(action)
            fired.append(action)
        return fired


# -- ready-made remedies --------------------------------------------------------

def scale_service_remedy(
    host,
    monitor_probe: str,
    utilization_threshold: float = 0.85,
    max_replicas: int = 4,
    cooldown_s: float = 3.0,
) -> Remedy:
    """Grow *host* when the monitor shows it saturated."""

    def condition(monitor: Monitor) -> str | None:
        utilization = monitor.latest(monitor_probe, "utilization")
        if utilization is None or host.replicas >= max_replicas:
            return None
        if utilization > utilization_threshold:
            return (f"{host.service_name}@{host.device.name} at"
                    f" {utilization:.0%} utilization")
        return None

    return Remedy(
        name=f"scale:{host.service_name}",
        condition=condition,
        action=lambda: host.add_replica(1),
        cooldown_s=cooldown_s,
    )


def migrate_module_remedy(
    home,
    pipeline: "Pipeline",
    module_name: str,
    target_device: str,
    device_probe_name: str,
    cpu_threshold: float = 0.9,
    cooldown_s: float = 5.0,
) -> Remedy:
    """Move *module_name* to *target_device* when its current device's CPU
    stays saturated (fires at most once)."""

    def condition(monitor: Monitor) -> str | None:
        if pipeline.device_of(module_name) == target_device:
            return None
        utilization = monitor.latest(device_probe_name, "cpu_utilization")
        if utilization is not None and utilization > cpu_threshold:
            return (f"{module_name} leaving a {utilization:.0%}-busy device"
                    f" for {target_device}")
        return None

    return Remedy(
        name=f"migrate:{module_name}",
        condition=condition,
        action=lambda: home.migrate_module(pipeline, module_name, target_device),
        cooldown_s=cooldown_s,
        max_firings=1,
    )


def evacuate_dead_device_remedy(
    home,
    pipeline: "Pipeline",
    detector: "FailureDetector",
    cooldown_s: float = 1.0,
) -> Remedy:
    """Re-deploy modules off devices the failure detector declared dead.

    The recovery half of the §7 loop: the detector notices the outage, this
    remedy moves every stranded module of *pipeline* to the best surviving
    device (fastest CPU, ties by name; container-capable when any stranded
    module declares services). Per-module failures are isolated so one bad
    migration doesn't strand the rest.
    """

    def stranded_on(device: str) -> list[str]:
        return [
            m for m in pipeline.module_names()
            if pipeline.device_of(m) == device
        ]

    def needs_containers(module_name: str) -> bool:
        return bool(pipeline.config.module(module_name).services)

    def condition(monitor: Monitor) -> str | None:
        for device in detector.dead_devices():
            stranded = stranded_on(device)
            if stranded:
                return f"dead {device!r} still hosts {', '.join(stranded)}"
        return None

    def pick_target(avoid: set[str], containers: bool) -> str | None:
        candidates = [
            d for d in home.devices.values()
            if d.up and d.name not in avoid and not detector.is_dead(d.name)
            and (not containers or d.supports_containers)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda d: (d.spec.cpu_factor, d.name)).name

    def action() -> None:
        for device in detector.dead_devices():
            for module_name in stranded_on(device):
                target = pick_target({device}, needs_containers(module_name))
                if target is None:
                    continue  # nowhere to go; retry next evaluation
                try:
                    home.migrate_module(pipeline, module_name, target)
                except Exception:
                    continue  # isolate per-module failures
                pipeline.metrics.increment("recovery_migrations")

    return Remedy(
        name=f"evacuate:{pipeline.name}",
        condition=condition,
        action=action,
        cooldown_s=cooldown_s,
    )
