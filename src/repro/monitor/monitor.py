"""The monitoring component (§7 future work, implemented).

A :class:`Monitor` samples registered probes on a fixed period, stores the
time series, evaluates alarm rules against fresh samples, and can answer
rate queries (e.g. live pipeline FPS from the frames_completed counter).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable

from ..sim.kernel import Kernel
from .probes import ProbeFn, Sample


@dataclass(frozen=True, slots=True)
class AlarmRule:
    """Fire when ``metric`` of ``probe`` satisfies ``predicate`` for
    ``for_samples`` consecutive samples."""

    name: str
    probe: str
    metric: str
    predicate: Callable[[float], bool]
    for_samples: int = 1

    def __post_init__(self) -> None:
        if self.for_samples < 1:
            raise ValueError("for_samples must be >= 1")


@dataclass(frozen=True, slots=True)
class Alarm:
    """One fired alarm occurrence."""

    at: float
    rule: str
    probe: str
    metric: str
    value: float


class Monitor:
    """Periodic sampling + time series + alarms for the whole home."""

    def __init__(self, kernel: Kernel, period_s: float = 0.5,
                 keep_samples: int = 100_000) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.kernel = kernel
        self.period_s = period_s
        self.keep_samples = keep_samples
        self._probes: dict[str, ProbeFn] = {}
        self._rules: list[AlarmRule] = []
        self._streaks: dict[tuple[str, str], int] = defaultdict(int)
        self.samples: list[Sample] = []
        self.alarms: list[Alarm] = []
        self._running = False

    # -- registration -----------------------------------------------------------
    def add_probe(self, name: str, probe: ProbeFn) -> None:
        if name in self._probes:
            raise ValueError(f"probe {name!r} already registered")
        self._probes[name] = probe

    def add_rule(self, rule: AlarmRule) -> None:
        self._rules.append(rule)

    def probe_names(self) -> list[str]:
        return sorted(self._probes)

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.kernel.process(self._loop(), name="monitor")

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running:
            yield self.period_s
            if not self._running:  # stopped while sleeping
                break
            self.sample_once()

    # -- sampling -------------------------------------------------------------------
    def sample_once(self) -> list[Sample]:
        """Read every probe now; returns the fresh samples."""
        now = self.kernel.now
        fresh = []
        for probe_name, probe in self._probes.items():
            for metric, value in probe().items():
                sample = Sample(now, probe_name, metric, float(value))
                fresh.append(sample)
                self._check_rules(sample)
        self.samples.extend(fresh)
        if len(self.samples) > self.keep_samples:
            del self.samples[: len(self.samples) - self.keep_samples]
        return fresh

    def _check_rules(self, sample: Sample) -> None:
        for rule in self._rules:
            if rule.probe != sample.probe or rule.metric != sample.metric:
                continue
            key = (rule.name, sample.probe)
            if rule.predicate(sample.value):
                self._streaks[key] += 1
                if self._streaks[key] == rule.for_samples:
                    self.alarms.append(
                        Alarm(sample.at, rule.name, sample.probe,
                              sample.metric, sample.value)
                    )
            else:
                self._streaks[key] = 0

    # -- queries --------------------------------------------------------------------
    def series(self, probe: str, metric: str) -> list[tuple[float, float]]:
        """The (time, value) series of one metric."""
        return [
            (s.at, s.value)
            for s in self.samples
            if s.probe == probe and s.metric == metric
        ]

    def latest(self, probe: str, metric: str) -> float | None:
        for sample in reversed(self.samples):
            if sample.probe == probe and sample.metric == metric:
                return sample.value
        return None

    def rate(self, probe: str, metric: str, window_s: float) -> float | None:
        """Per-second growth of a counter metric over the trailing window
        (e.g. live FPS from ``frames_completed``)."""
        series = self.series(probe, metric)
        if not series:
            return None
        now = series[-1][0]
        window = [(t, v) for t, v in series if t >= now - window_s]
        if len(window) < 2:
            return None
        (t0, v0), (t1, v1) = window[0], window[-1]
        if t1 <= t0:
            return None
        return (v1 - v0) / (t1 - t0)

    def alarms_for(self, rule_name: str) -> list[Alarm]:
        return [a for a in self.alarms if a.rule == rule_name]
