"""Monitoring probes: point-in-time readings of the home's health.

Part of the paper's stated future work (§7): "we aim to include automatic
deployment, scheduling and monitoring components to VideoPipe". A probe
turns one observable (a device CPU, a service host, a pipeline) into a
stream of numeric samples the monitor collects on a fixed period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..devices.device import Device
from ..pipeline.pipeline import Pipeline
from ..services.host import ServiceHost


@dataclass(frozen=True, slots=True)
class Sample:
    """One reading: (time, probe name, metric, value)."""

    at: float
    probe: str
    metric: str
    value: float


#: A probe is a callable returning {metric: value} when sampled.
ProbeFn = Callable[[], dict[str, float]]


def device_probe(device: Device) -> ProbeFn:
    """CPU occupancy and frame-store pressure for one device."""

    def read() -> dict[str, float]:
        store = device.frame_store
        return {
            "cpu_in_use": float(device.cpu.cores.in_use),
            "cpu_queue": float(device.cpu.cores.queue_length),
            "cpu_utilization": device.cpu.utilization(),
            "frame_store_used": float(len(store)),
            "frame_store_retained": float(store.retained_count),
            "dedup_hits": float(store.dedup_hits),
            "dedup_ratio": store.dedup_ratio(),
        }

    return read


def service_probe(host: ServiceHost) -> ProbeFn:
    """Replica occupancy and queue for one service host."""

    def read() -> dict[str, float]:
        return {
            "busy_workers": float(host.busy_workers),
            "queue_length": float(host.queue_length),
            "replicas": float(host.replicas),
            "utilization": host.utilization(),
            "errors": float(host.errors),
            "cache_hits": float(host.cache_hits),
            "cache_hit_rate": host.cache_hit_rate(),
            "avg_batch_size": host.avg_batch_size(),
        }

    return read


def pipeline_probe(pipeline: Pipeline) -> ProbeFn:
    """Progress and error counters for one pipeline."""

    def read() -> dict[str, float]:
        metrics = pipeline.metrics
        mailboxes = 0
        errors = 0
        for name in pipeline.module_names():
            deployed = pipeline.module(name)
            mailboxes += deployed.mailbox_depth
            errors += len(deployed.errors)
        return {
            "frames_entered": float(metrics.counter("frames_entered")),
            "frames_completed": float(metrics.counter("frames_completed")),
            "frames_dropped": float(metrics.counter("frames_dropped")),
            "frames_in_flight": float(metrics.frames_in_flight),
            "module_errors": float(errors),
            "queued_events": float(mailboxes),
            "service_rejections": float(metrics.counter("service_rejections")),
        }

    return read


def audit_probe(auditor) -> ProbeFn:
    """Violation accounting for the home's invariant auditor. Sampling runs
    the instant-checks (message/metrics conservation) so a violation shows
    up on the next monitor period, not only at quiesce."""

    def read() -> dict[str, float]:
        auditor.check_now()
        return {
            "violations": float(auditor.violation_count),
            "dropped_violations": float(auditor.dropped_violations),
            "checks_run": float(auditor.checks_run),
        }

    return read


def slo_probe(controller) -> ProbeFn:
    """Enrollment states, ladder depth and admission counters for the
    home's SLO controller."""

    def read() -> dict[str, float]:
        counters = controller.metrics.counters()
        enrollments = controller.enrollments
        return {
            "enrolled": float(len(enrollments)),
            "overloaded": float(
                sum(1 for e in enrollments if e.state == "overloaded")
            ),
            "strained": float(
                sum(1 for e in enrollments if e.state == "strained")
            ),
            "ladder_depth": float(sum(e.depth for e in enrollments)),
            "actions": float(len(controller.actions)),
            "deploys_requested": float(counters.get("deploys_requested", 0)),
            "deploys_rejected": float(counters.get("deploys_rejected", 0)),
            "deploys_withdrawn": float(counters.get("deploys_withdrawn", 0)),
            "deploys_deployed": float(counters.get("deploys_deployed", 0)),
            "deploys_queued_now": float(len(controller.queued)),
        }

    return read


def tracing_probe(recorder) -> ProbeFn:
    """Span volume and frame accounting for the home's trace recorder."""

    def read() -> dict[str, float]:
        return {
            "spans": float(recorder.span_count),
            "open_frames": float(recorder.open_frame_count),
            "dropped_spans": float(recorder.dropped_spans),
            "frames_traced": float(recorder.frames_started),
            "frames_finished": float(recorder.frames_finished),
            "frames_dropped": float(recorder.frames_dropped),
        }

    return read
