"""Heartbeat-based failure detection (§7: "monitoring of the pipelines").

Every device runs a tiny :class:`HeartbeatResponder` (a native RPC
endpoint). The :class:`FailureDetector` — typically on the home's most
reliable device — pings each watched device on a fixed period; after
``miss_threshold`` consecutive misses the device is declared **dead**,
``on_down`` hooks fire (the orchestrator's evacuation remedy hangs off
this), and when heartbeats come back the device is declared recovered and
an MTTR sample is recorded (first miss → recovery, the detector's honest
view of the outage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..net.address import Address
from ..net.rpc import RpcClient, RpcServer
from ..net.transport import Transport
from ..sim.kernel import Kernel
from .probes import ProbeFn

#: Well-known port for the heartbeat endpoint on every device.
HEARTBEAT_PORT = 190


class HeartbeatResponder:
    """The per-device heartbeat endpoint: answers pings while the device is
    up (a down device simply never sees the request — the transport refuses
    delivery)."""

    def __init__(self, kernel: Kernel, transport: Transport, device: str) -> None:
        self.kernel = kernel
        self.device = device
        self.address = Address(device, HEARTBEAT_PORT)
        self.pings_answered = 0
        self._rpc = RpcServer(kernel, transport, self.address, self._on_ping)

    def _on_ping(self, payload: object, message: object) -> dict:
        self.pings_answered += 1
        return {"device": self.device, "t": self.kernel.now}

    def close(self) -> None:
        self._rpc.close()


@dataclass(slots=True)
class _WatchState:
    misses: int = 0
    dead: bool = False
    first_miss_at: float | None = None
    detected_at: float | None = None
    outages: int = 0


@dataclass(frozen=True, slots=True)
class DetectionEvent:
    """One detector state transition, for the deterministic event log."""

    at: float
    device: str
    kind: str  # "down" | "up"
    mttr_s: float | None = None


class FailureDetector:
    """Timeout-based failure detector over heartbeat probes."""

    def __init__(
        self,
        kernel: Kernel,
        transport: Transport,
        home_device: str,
        period_s: float = 0.5,
        timeout_s: float | None = None,
        miss_threshold: int = 3,
    ) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.kernel = kernel
        self.home_device = home_device
        self.period_s = period_s
        #: Per-probe timeout; defaults to one period so a hung probe can't
        #: overlap more than one round.
        self.timeout_s = timeout_s if timeout_s is not None else period_s
        self.miss_threshold = miss_threshold
        # probes must not themselves retry or trip breakers: the detector IS
        # the component that interprets failures
        self._client = RpcClient(
            kernel, transport, home_device,
            default_timeout_s=self.timeout_s, retry=None, breaker=None,
        )
        self._watched: dict[str, _WatchState] = {}
        self._running = False
        #: Hooks fired on transitions: callbacks receive the device name.
        self.on_down: list[Callable[[str], None]] = []
        self.on_up: list[Callable[[str], None]] = []
        #: Deterministic transition log.
        self.events: list[DetectionEvent] = []
        #: Outage durations (first missed heartbeat → recovery), seconds.
        self.mttr_samples: list[float] = []
        # statistics
        self.probes_sent = 0
        self.probes_failed = 0
        self.detections = 0
        self.recoveries = 0

    # -- registration -----------------------------------------------------------
    def watch(self, device: str) -> None:
        """Start monitoring *device* (idempotent)."""
        if device != self.home_device:
            self._watched.setdefault(device, _WatchState())

    def watched(self) -> list[str]:
        return sorted(self._watched)

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.kernel.process(self._loop(), name="failure-detector")

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running:
            for device in sorted(self._watched):
                self._probe(device)
            yield self.period_s

    # -- probing -----------------------------------------------------------------
    def _probe(self, device: str) -> None:
        self.probes_sent += 1
        result = self._client.call(
            Address(device, HEARTBEAT_PORT), {"t": self.kernel.now}
        )
        result.wait(lambda _v, exc: self._on_probe(device, exc))

    def _on_probe(self, device: str, exc: BaseException | None) -> None:
        state = self._watched.get(device)
        if state is None:
            return
        if exc is None:
            if state.dead:
                state.dead = False
                self.recoveries += 1
                mttr = (self.kernel.now - state.first_miss_at
                        if state.first_miss_at is not None else 0.0)
                self.mttr_samples.append(mttr)
                self.events.append(DetectionEvent(
                    self.kernel.now, device, "up", mttr_s=mttr,
                ))
                for hook in self.on_up:
                    hook(device)
            state.misses = 0
            state.first_miss_at = None
            return
        self.probes_failed += 1
        if state.misses == 0:
            state.first_miss_at = self.kernel.now
        state.misses += 1
        if not state.dead and state.misses >= self.miss_threshold:
            state.dead = True
            state.detected_at = self.kernel.now
            state.outages += 1
            self.detections += 1
            self.events.append(DetectionEvent(self.kernel.now, device, "down"))
            for hook in self.on_down:
                hook(device)

    # -- queries -----------------------------------------------------------------
    def is_dead(self, device: str) -> bool:
        state = self._watched.get(device)
        return state.dead if state is not None else False

    def dead_devices(self) -> list[str]:
        return sorted(d for d, s in self._watched.items() if s.dead)

    def mttr_mean(self) -> float:
        if not self.mttr_samples:
            return 0.0
        return sum(self.mttr_samples) / len(self.mttr_samples)

    def mttr_max(self) -> float:
        return max(self.mttr_samples, default=0.0)


def failure_probe(detector: FailureDetector) -> ProbeFn:
    """A monitor probe surfacing the detector's state as metrics, so MTTR
    and outage counts land in the monitor's time series like any other
    signal."""

    def probe() -> dict[str, float]:
        return {
            "watched": float(len(detector.watched())),
            "dead_devices": float(len(detector.dead_devices())),
            "detections": float(detector.detections),
            "recoveries": float(detector.recoveries),
            "probes_failed": float(detector.probes_failed),
            "mttr_mean_s": detector.mttr_mean(),
            "mttr_max_s": detector.mttr_max(),
        }

    return probe
