"""Monitoring (§7 future work): probes, time series, alarms."""

from .failure_detector import (
    HEARTBEAT_PORT,
    DetectionEvent,
    FailureDetector,
    HeartbeatResponder,
    failure_probe,
)
from .monitor import Alarm, AlarmRule, Monitor
from .orchestrator import (
    Action,
    Orchestrator,
    Remedy,
    evacuate_dead_device_remedy,
    migrate_module_remedy,
    scale_service_remedy,
)
from .probes import (
    Sample,
    device_probe,
    pipeline_probe,
    service_probe,
    slo_probe,
    tracing_probe,
)

__all__ = [
    "Action",
    "Alarm",
    "AlarmRule",
    "DetectionEvent",
    "FailureDetector",
    "HEARTBEAT_PORT",
    "HeartbeatResponder",
    "Monitor",
    "Orchestrator",
    "Remedy",
    "Sample",
    "device_probe",
    "evacuate_dead_device_remedy",
    "failure_probe",
    "migrate_module_remedy",
    "pipeline_probe",
    "scale_service_remedy",
    "service_probe",
    "slo_probe",
    "tracing_probe",
]
