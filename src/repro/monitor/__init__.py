"""Monitoring (§7 future work): probes, time series, alarms."""

from .monitor import Alarm, AlarmRule, Monitor
from .orchestrator import (
    Action,
    Orchestrator,
    Remedy,
    migrate_module_remedy,
    scale_service_remedy,
)
from .probes import Sample, device_probe, pipeline_probe, service_probe

__all__ = [
    "Action",
    "Alarm",
    "AlarmRule",
    "Monitor",
    "Orchestrator",
    "Remedy",
    "Sample",
    "device_probe",
    "migrate_module_remedy",
    "pipeline_probe",
    "scale_service_remedy",
    "service_probe",
]
