"""Generator-based simulated processes.

A process is an ordinary Python generator that ``yield``s awaitables to
suspend itself:

* a :class:`~repro.sim.signals.Signal` — resume when it resolves (the yield
  expression evaluates to the signal's value; a failed signal raises inside
  the generator);
* another :class:`Process` — resume when that process terminates (join);
* a number — shorthand for ``kernel.timeout(number)``.

Example::

    def worker(kernel, cpu):
        grant = yield cpu.request()
        yield 0.050                      # hold the CPU for 50 ms
        cpu.release(grant)
        return "done"

    proc = kernel.process(worker(kernel, cpu))
    kernel.run()
    assert proc.done.value == "done"
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from ..errors import Interrupt, SimulationError
from .events import URGENT
from .signals import Signal

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel

ProcessGenerator = Generator[Any, Any, Any]


class Process:
    """A running simulated process wrapping a generator.

    Attributes:
        done: a :class:`Signal` that resolves with the generator's return
            value, or fails with the exception that escaped it.
    """

    __slots__ = ("kernel", "name", "_gen", "done", "_epoch", "_waiting_on")

    def __init__(self, kernel: "Kernel", gen: ProcessGenerator, name: str | None = None) -> None:
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(gen).__name__}; "
                "did you call the function instead of passing its generator?"
            )
        self.kernel = kernel
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self.done: Signal = kernel.signal(name=f"{self.name}.done")
        #: Incremented on every resume; stale wakeups from abandoned waits
        #: (e.g. after an interrupt) carry an older epoch and are dropped.
        self._epoch = 0
        self._waiting_on: Signal | None = None
        kernel.schedule(0.0, self._resume, self._epoch, None, None)

    # -- state ---------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.done.pending

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name} {state}>"

    # -- control -------------------------------------------------------------
    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`~repro.errors.Interrupt` into the process.

        The process resumes (urgently, at the current simulated time) with the
        interrupt raised at its current ``yield``. Interrupting a terminated
        process is a no-op.
        """
        if not self.alive:
            return
        waiting = self._waiting_on
        if waiting is not None and waiting.pending:
            waiting.cancel_timer()  # abandoned timeouts must not hold the clock
        self._epoch += 1
        self._waiting_on = None
        self.kernel.schedule(
            0.0, self._resume, self._epoch, None, Interrupt(cause), priority=URGENT
        )

    # -- engine --------------------------------------------------------------
    def _resume(self, epoch: int, value: Any, exc: BaseException | None) -> None:
        if epoch != self._epoch or not self.alive:
            return  # stale wakeup (process was interrupted or already ended)
        self._waiting_on = None
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        except Interrupt as unhandled:
            self.done.fail(unhandled)
            return
        except Exception as error:
            self.done.fail(error)
            return
        try:
            self._wait_on(target)
        except SimulationError as error:
            # An invalid yield: deliver the error back at the offending
            # yield so the process can handle (or die from) it.
            self.kernel.schedule(
                0.0, self._resume, self._epoch, None, error, priority=URGENT
            )

    def _wait_on(self, target: Any) -> None:
        signal = self._as_signal(target)
        self._epoch += 1
        epoch = self._epoch
        self._waiting_on = signal

        def waiter(value: Any, exc: BaseException | None) -> None:
            self._resume(epoch, value, exc)

        signal.wait(waiter)

    def _as_signal(self, target: Any) -> Signal:
        if isinstance(target, Signal):
            return target
        if isinstance(target, Process):
            return target.done
        if isinstance(target, (int, float)):
            return self.kernel.timeout(float(target))
        raise SimulationError(
            f"process {self.name!r} yielded {target!r}; expected a Signal, "
            "a Process, or a number of seconds"
        )
