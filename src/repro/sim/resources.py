"""Contended resources for the discrete-event kernel.

:class:`Resource` models a fixed pool of identical slots (e.g. CPU cores or
service worker threads); :class:`Store` is an unbounded FIFO hand-off queue
(used for mailboxes). Both hand out :class:`~repro.sim.signals.Signal`
objects so processes can ``yield`` on them.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any

from ..errors import SimulationError
from .kernel import Kernel
from .signals import Signal


class Grant:
    """A handle proving ownership of one resource slot.

    Returned (as the signal value) by :meth:`Resource.request`; must be given
    back to :meth:`Resource.release` exactly once.
    """

    __slots__ = ("resource", "id", "priority", "released", "requested_at", "granted_at")

    def __init__(self, resource: "Resource", grant_id: int, priority: int, now: float) -> None:
        self.resource = resource
        self.id = grant_id
        self.priority = priority
        self.released = False
        self.requested_at = now
        self.granted_at: float | None = None

    @property
    def wait_time(self) -> float:
        """Seconds spent queued before the grant was issued."""
        if self.granted_at is None:
            raise SimulationError("grant not yet issued")
        return self.granted_at - self.requested_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "released" if self.released else "held"
        return f"<Grant #{self.id} {state}>"


class Resource:
    """A pool of ``capacity`` identical slots with a priority request queue.

    Requests with lower ``priority`` values are served first; ties are FIFO.
    Utilization accounting is integrated over time so benchmarks can report
    average busy fraction.
    """

    def __init__(self, kernel: Kernel, capacity: int = 1, name: str | None = None) -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.kernel = kernel
        self.capacity = capacity
        self.name = name or "resource"
        self._ids = itertools.count(1)
        self._in_use = 0
        self._waiting: list[tuple[int, int, Signal, Grant]] = []
        # utilization integral bookkeeping
        self._busy_integral = 0.0
        self._last_change = kernel.now
        self._started = kernel.now

    # -- introspection -------------------------------------------------------
    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def utilization(self) -> float:
        """Average fraction of capacity busy since the resource was created."""
        elapsed = self.kernel.now - self._started
        if elapsed <= 0:
            return 0.0
        integral = self._busy_integral + self._in_use * (self.kernel.now - self._last_change)
        return integral / (elapsed * self.capacity)

    def _account(self) -> None:
        now = self.kernel.now
        self._busy_integral += self._in_use * (now - self._last_change)
        self._last_change = now

    # -- protocol -------------------------------------------------------------
    def request(self, priority: int = 0) -> Signal:
        """Request one slot; the returned signal succeeds with a :class:`Grant`."""
        sig = self.kernel.signal(name=f"{self.name}.request")
        grant = Grant(self, next(self._ids), priority, self.kernel.now)
        if self._in_use < self.capacity and not self._waiting:
            self._issue(sig, grant)
        else:
            # a heap keyed on (priority, id): priority order with FIFO
            # tie-break, without re-sorting the queue on every request
            heapq.heappush(self._waiting, (priority, grant.id, sig, grant))
        return sig

    def owns(self, grant: Grant) -> bool:
        """True when *grant* was issued by this resource and is still held.

        The guard cleanup paths use before releasing: a grant from a
        discarded pre-crash pool (or another resource entirely) must not be
        returned here. :class:`~repro.services.pool.PoolLease` duck-types
        this for leased grants."""
        return grant.resource is self and not grant.released

    def release(self, grant: Grant) -> None:
        """Return a slot to the pool and wake the next waiter, if any."""
        if grant.resource is not self:
            raise SimulationError("grant belongs to a different resource")
        if grant.released:
            raise SimulationError(f"grant #{grant.id} released twice")
        grant.released = True
        self._account()
        self._in_use -= 1
        if self._waiting and self._in_use < self.capacity:
            _, _, sig, next_grant = heapq.heappop(self._waiting)
            self._issue(sig, next_grant)

    def grow(self, extra: int = 1) -> None:
        """Add capacity at runtime (used by service autoscaling) and serve
        as many queued waiters as the new slots allow."""
        if extra < 1:
            raise SimulationError("grow() requires a positive amount")
        self._account()
        self.capacity += extra
        while self._waiting and self._in_use < self.capacity:
            _, _, sig, grant = heapq.heappop(self._waiting)
            self._issue(sig, grant)

    def shrink(self, amount: int = 1) -> None:
        """Remove capacity at runtime (service scale-down). Lazy: busy
        slots are not revoked, so ``in_use`` may transiently exceed the new
        capacity; the pool converges as holders release (``release`` only
        wakes waiters while ``in_use < capacity``)."""
        if amount < 1:
            raise SimulationError("shrink() requires a positive amount")
        if self.capacity - amount < 1:
            raise SimulationError("cannot shrink below one slot")
        self._account()
        self.capacity -= amount

    def _issue(self, sig: Signal, grant: Grant) -> None:
        self._account()
        self._in_use += 1
        grant.granted_at = self.kernel.now
        sig.succeed(grant)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Resource {self.name} {self._in_use}/{self.capacity} busy,"
            f" {len(self._waiting)} queued>"
        )


class Store:
    """An unbounded FIFO store of items, with blocking ``get``.

    ``put`` never blocks (the store is used as a mailbox where senders must
    not stall); ``get`` returns a signal that succeeds with the next item,
    immediately if one is buffered.
    """

    def __init__(self, kernel: Kernel, name: str | None = None) -> None:
        self.kernel = kernel
        self.name = name or "store"
        self._items: deque[Any] = deque()
        self._getters: deque[Signal] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit *item*, waking the oldest waiting getter if present."""
        while self._getters:
            sig = self._getters.popleft()
            if sig.pending:  # skip abandoned/interrupted getters
                sig.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Signal:
        """Return a signal that succeeds with the next item (FIFO)."""
        sig = self.kernel.signal(name=f"{self.name}.get")
        if self._items:
            sig.succeed(self._items.popleft())
        else:
            self._getters.append(sig)
        return sig

    def drain(self) -> list[Any]:
        """Remove and return all buffered items without blocking."""
        items = list(self._items)
        self._items.clear()
        return items
