"""Event queue primitives for the discrete-event kernel.

An :class:`Event` is a callback scheduled at an absolute simulated time.
Events at the same time are ordered by ``priority`` (lower runs first) and
then by insertion sequence, which makes execution fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

#: Priority for urgent events (e.g. interrupts) that must run before normal
#: events scheduled at the same instant.
URGENT = 0
#: Default priority for ordinary events.
NORMAL = 1
#: Priority for housekeeping events that should run after everything else
#: at the same instant (e.g. metric flushes).
LOW = 2


class Event:
    """A single scheduled callback.

    Instances are created by :meth:`repro.sim.kernel.Kernel.schedule`; user
    code only ever holds them to :meth:`cancel <repro.sim.kernel.Kernel.cancel>`
    them.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def _key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self._key() < other._key()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} p={self.priority} {name}{state}>"


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects.

    Cancellation is lazy: cancelled events stay in the heap and are skipped
    when popped, which keeps :meth:`cancel` O(1).
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, event)
        self._live += 1

    def cancel(self, event: Event) -> None:
        """Mark *event* so it will be skipped when it reaches the front."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises :class:`IndexError` when the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._live -= 1
                return event
        raise IndexError("pop from empty event queue")

    def peek_time(self) -> float | None:
        """Return the time of the earliest live event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
