"""Deterministic, named random-number streams.

Every stochastic component (each link's jitter, each service's compute-time
noise, each motion generator) draws from its **own named stream** derived from
one root seed. Adding a new component therefore never perturbs the draws seen
by existing components, which keeps calibrated benchmark results stable.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _stream_key(name: str) -> int:
    """Map a stream name to a stable 64-bit integer."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """A factory of independent :class:`numpy.random.Generator` streams.

    Streams are keyed by name; requesting the same name twice returns the
    same generator instance (so sequential draws continue, they don't
    restart).
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it deterministically."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence([self.seed, _stream_key(name)])
            gen = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = gen
        return gen

    def spawn(self, prefix: str) -> "ScopedRng":
        """Return a view that namespaces all stream names under *prefix*."""
        return ScopedRng(self, prefix)


class ScopedRng:
    """A namespaced view over :class:`RngStreams`."""

    def __init__(self, root: RngStreams, prefix: str) -> None:
        self._root = root
        self._prefix = prefix

    def stream(self, name: str) -> np.random.Generator:
        return self._root.stream(f"{self._prefix}/{name}")

    def spawn(self, prefix: str) -> "ScopedRng":
        return ScopedRng(self._root, f"{self._prefix}/{prefix}")


def lognormal_around(rng: np.random.Generator, mean: float, cv: float) -> float:
    """Draw a lognormal sample with the given *mean* and coefficient of
    variation *cv* (std/mean). ``cv=0`` returns *mean* exactly.

    Used for service compute times: real inference latencies are positively
    skewed, and the paper's sub-source frame rates at low FPS (e.g. 8.21
    measured at a 10 FPS source) arise from exactly this kind of jitter
    interacting with the one-frame-in-flight protocol.
    """
    if mean < 0:
        raise ValueError("mean must be non-negative")
    if cv < 0:
        raise ValueError("cv must be non-negative")
    if mean == 0 or cv == 0:
        return mean
    sigma2 = np.log(1.0 + cv * cv)
    mu = np.log(mean) - sigma2 / 2.0
    return float(rng.lognormal(mean=mu, sigma=np.sqrt(sigma2)))
