"""Discrete-event simulation kernel.

This package is the execution substrate for the whole reproduction: device
CPUs, Wi-Fi links, module runtimes and services all schedule their work on a
shared :class:`Kernel`. Swapping in :class:`RealtimeKernel` runs the same
system paced against the wall clock.
"""

from .events import LOW, NORMAL, URGENT, Event, EventQueue
from .kernel import Kernel, RealtimeKernel
from .process import Process
from .resources import Grant, Resource, Store
from .rng import RngStreams, ScopedRng, lognormal_around
from .signals import Signal, all_of, any_of

__all__ = [
    "Event",
    "EventQueue",
    "Grant",
    "Kernel",
    "LOW",
    "NORMAL",
    "Process",
    "RealtimeKernel",
    "Resource",
    "RngStreams",
    "ScopedRng",
    "Signal",
    "Store",
    "URGENT",
    "all_of",
    "any_of",
    "lognormal_around",
]
