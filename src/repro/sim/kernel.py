"""The discrete-event kernel and its wall-clock variant.

:class:`Kernel` executes scheduled events in deterministic time order.
:class:`RealtimeKernel` runs the same event queue but paces execution against
the wall clock, which lets the exact same pipeline code drive either fast
deterministic benchmarks or live demonstrations.
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable

from ..errors import SimulationError
from .events import NORMAL, Event, EventQueue
from .process import Process, ProcessGenerator
from .signals import Signal


class Kernel:
    """A deterministic discrete-event executor.

    Time is a float in **seconds** starting at 0.0. All library components
    (links, CPUs, services, module runtimes) schedule their work through a
    shared kernel, which is what makes whole-system simulations reproducible.
    """

    #: Set to True by the realtime subclass; components may consult this to
    #: decide whether to do real work (e.g. rendering) inline.
    realtime = False

    def __init__(self) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self._seq = 0
        self._running = False
        self._stopped = False
        # passive observers notified on schedule/execute; a tuple so the hot
        # path pays one truthiness check when nobody is watching
        self._observers: tuple = ()

    # -- time -----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Events still queued (cancelled ones may be counted until popped)."""
        return len(self._queue)

    # -- observation ------------------------------------------------------------
    def add_observer(self, observer: Any) -> None:
        """Register a passive observer: ``on_schedule(now, event)`` is called
        after every :meth:`schedule`, ``on_execute(now, event)`` before every
        event's callback runs. Observers must never mutate kernel state —
        they exist for auditing and determinism checking, and an observed
        run is bit-for-bit identical to an unobserved one."""
        if observer not in self._observers:
            self._observers = self._observers + (observer,)

    def remove_observer(self, observer: Any) -> None:
        """Unregister an observer (no-op when not registered)."""
        self._observers = tuple(o for o in self._observers if o is not observer)

    # -- scheduling -------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        self._seq += 1
        event = Event(self._now + delay, priority, self._seq, callback, args)
        self._queue.push(event)
        if self._observers:
            for observer in self._observers:
                observer.on_schedule(self._now, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (no-op if it already ran)."""
        self._queue.cancel(event)

    # -- factories ---------------------------------------------------------------
    def signal(self, name: str | None = None) -> Signal:
        """Create a pending one-shot :class:`Signal` bound to this kernel."""
        return Signal(self, name)

    def timeout(self, delay: float, value: Any = None) -> Signal:
        """Return a signal that succeeds with *value* after *delay* seconds."""
        sig = self.signal(name=f"timeout({delay:.6f})")
        sig._timer_event = self.schedule(delay, self._fire_timeout, sig, value)
        return sig

    @staticmethod
    def _fire_timeout(sig: Signal, value: Any) -> None:
        if sig.pending:
            sig.succeed(value)

    def process(self, gen: ProcessGenerator, name: str | None = None) -> Process:
        """Start a generator as a simulated :class:`Process`."""
        return Process(self, gen, name)

    # -- execution -----------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single earliest event. Returns False if none remain."""
        try:
            event = self._queue.pop()
        except IndexError:
            return False
        if self._observers:
            # notified before the monotonicity check so an auditor records
            # the violation even when the kernel aborts the run
            for observer in self._observers:
                observer.on_execute(self._now, event)
        if event.time < self._now:
            raise SimulationError("event queue corrupted: time went backwards")
        self._now = event.time
        event.callback(*event.args)
        return True

    def run(self, until: float | None = None) -> float:
        """Run events until the queue drains or simulated time reaches *until*.

        Returns the simulated time at which execution stopped. When *until*
        is given and events remain beyond it, the clock is advanced exactly
        to *until*.
        """
        if self._running:
            raise SimulationError("kernel is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                self._wait_until(next_time)
                self.step()
            else:
                return self._now
            if until is not None and self._now < until and not self._queue:
                self._now = until
            return self._now
        finally:
            self._running = False

    def run_until_resolved(self, signal: Signal, limit: float | None = None) -> Any:
        """Run until *signal* resolves; return its value (or raise its error).

        ``limit`` bounds simulated time; exceeding it raises
        :class:`SimulationError`.
        """
        while signal.pending:
            next_time = self._queue.peek_time()
            if next_time is None:
                raise SimulationError("event queue drained before signal resolved")
            if limit is not None and next_time > limit:
                raise SimulationError(f"signal unresolved at time limit {limit}")
            self._wait_until(next_time)
            self.step()
        return signal.value

    def stop(self) -> None:
        """Request that a running :meth:`run` loop return after the current
        event."""
        self._stopped = True

    def _wait_until(self, sim_time: float) -> None:
        """Hook for realtime pacing; the pure simulator advances instantly."""


class RealtimeKernel(Kernel):
    """A kernel that paces event execution against the wall clock.

    ``speed`` scales simulated seconds to wall seconds (2.0 = twice as fast
    as real time). Execution overruns — events that take longer to process
    than the available wall time — are tolerated: the kernel simply stops
    sleeping and runs as fast as it can, like SimPy's strict=False mode.
    """

    realtime = True

    def __init__(self, speed: float = 1.0) -> None:
        super().__init__()
        if speed <= 0:
            raise SimulationError("realtime speed must be positive")
        self.speed = speed
        self._wall_start: float | None = None
        self._sim_start = 0.0

    def _wait_until(self, sim_time: float) -> None:
        if self._wall_start is None:
            self._wall_start = _time.monotonic()
            self._sim_start = self._now
        deadline = self._wall_start + (sim_time - self._sim_start) / self.speed
        remaining = deadline - _time.monotonic()
        if remaining > 0:
            _time.sleep(remaining)
