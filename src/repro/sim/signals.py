"""One-shot signals: the synchronization primitive processes wait on.

A :class:`Signal` resolves exactly once, either with a value (:meth:`succeed`)
or an exception (:meth:`fail`). Processes yield signals to suspend until
resolution; plain callbacks can also be attached with :meth:`wait`.

:func:`all_of` and :func:`any_of` build composite signals for fan-in waits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel

PENDING = "pending"
SUCCEEDED = "succeeded"
FAILED = "failed"

Waiter = Callable[[Any, "BaseException | None"], None]


class Signal:
    """A one-shot resolvable event.

    Waiter callbacks receive ``(value, exc)``: exactly one of them is
    meaningful depending on whether the signal succeeded or failed. Callbacks
    attached after resolution fire on the next kernel step at the current
    simulated time (never synchronously), so ordering stays deterministic.
    """

    __slots__ = ("kernel", "name", "_state", "_value", "_exc", "_waiters", "_timer_event")

    def __init__(self, kernel: "Kernel", name: str | None = None) -> None:
        self.kernel = kernel
        self.name = name
        self._state = PENDING
        self._value: Any = None
        self._exc: BaseException | None = None
        self._waiters: list[Waiter] = []
        #: Set by Kernel.timeout(): the scheduled event that will fire this
        #: signal, so abandoned timeouts can be cancelled (see cancel_timer).
        self._timer_event = None

    # -- introspection -----------------------------------------------------
    @property
    def pending(self) -> bool:
        return self._state == PENDING

    @property
    def resolved(self) -> bool:
        return self._state != PENDING

    @property
    def succeeded(self) -> bool:
        return self._state == SUCCEEDED

    @property
    def failed(self) -> bool:
        return self._state == FAILED

    @property
    def value(self) -> Any:
        """The success value; raises if the signal is pending or failed."""
        if self._state == SUCCEEDED:
            return self._value
        if self._state == FAILED:
            assert self._exc is not None
            raise self._exc
        raise SimulationError(f"signal {self.name!r} is still pending")

    @property
    def exception(self) -> BaseException | None:
        return self._exc

    # -- resolution ---------------------------------------------------------
    def succeed(self, value: Any = None) -> "Signal":
        """Resolve successfully with *value* and wake all waiters."""
        if self._state != PENDING:
            raise SimulationError(f"signal {self.name!r} already {self._state}")
        self._state = SUCCEEDED
        self._value = value
        self._dispatch()
        return self

    def fail(self, exc: BaseException) -> "Signal":
        """Resolve with an exception and wake all waiters."""
        if self._state != PENDING:
            raise SimulationError(f"signal {self.name!r} already {self._state}")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() requires an exception, got {exc!r}")
        self._state = FAILED
        self._exc = exc
        self._dispatch()
        return self

    def _dispatch(self) -> None:
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self.kernel.schedule(0.0, waiter, self._value, self._exc)

    # -- waiting ------------------------------------------------------------
    def wait(self, callback: Waiter) -> None:
        """Invoke ``callback(value, exc)`` once the signal resolves.

        If already resolved, the callback is scheduled immediately (at the
        current simulated time) rather than called synchronously.
        """
        if self._state == PENDING:
            self._waiters.append(callback)
        else:
            self.kernel.schedule(0.0, callback, self._value, self._exc)

    def cancel_timer(self) -> None:
        """If this signal is a pending timeout, cancel its underlying event.

        Used when the only waiter has abandoned the wait (e.g. it was
        interrupted): without this, an abandoned long timeout would keep the
        kernel's clock running toward it.
        """
        if self._timer_event is not None and self._state == PENDING:
            self.kernel.cancel(self._timer_event)
            self._timer_event = None

    def discard(self, callback: Waiter) -> None:
        """Remove a previously attached waiter, if still registered."""
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Signal {self.name or id(self):} {self._state}>"


def all_of(kernel: "Kernel", signals: Sequence[Signal]) -> Signal:
    """Return a signal that succeeds with the list of all values once every
    input succeeds, or fails with the first failure."""
    result = kernel.signal(name="all_of")
    remaining = len(signals)
    values: list[Any] = [None] * remaining
    if remaining == 0:
        return result.succeed([])

    def make_waiter(index: int) -> Waiter:
        def waiter(value: Any, exc: BaseException | None) -> None:
            nonlocal remaining
            if not result.pending:
                return
            if exc is not None:
                result.fail(exc)
                return
            values[index] = value
            remaining -= 1
            if remaining == 0:
                result.succeed(list(values))

        return waiter

    for i, sig in enumerate(signals):
        sig.wait(make_waiter(i))
    return result


def any_of(kernel: "Kernel", signals: Sequence[Signal]) -> Signal:
    """Return a signal that resolves like the first input to resolve.

    The success value is an ``(index, value)`` tuple identifying the winner.
    """
    result = kernel.signal(name="any_of")
    if not signals:
        raise SimulationError("any_of() requires at least one signal")

    def make_waiter(index: int) -> Waiter:
        def waiter(value: Any, exc: BaseException | None) -> None:
            if not result.pending:
                return
            if exc is not None:
                result.fail(exc)
            else:
                result.succeed((index, value))

        return waiter

    for i, sig in enumerate(signals):
        sig.wait(make_waiter(i))
    return result
