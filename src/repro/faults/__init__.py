"""Fault injection: declarative failure timelines for the simulated home.

The paper's edge setting (§2, §7) is a network of flaky consumer devices.
This package makes that flakiness a first-class, *deterministic* input:

* :class:`FaultPlan` — a declarative timeline of fault events (device
  crash/restart, link partition/heal, flapping, service-replica crash,
  transient latency spikes), built fluently and serializable to/from dicts.
* :class:`ChaosInjector` — schedules a plan's events on the simulation
  kernel against a :class:`~repro.core.videopipe.VideoPipe` home and records
  the exact trace of what fired when.

Same plan + same seed ⇒ identical event trace and identical simulation,
which is what lets chaos scenarios live in the regression suite.
"""

from .injector import ChaosInjector
from .plan import (
    DEVICE_CRASH,
    DEVICE_RESTART,
    LATENCY_SPIKE,
    LINK_HEAL,
    LINK_PARTITION,
    SERVICE_CRASH,
    SERVICE_RESTART,
    FaultEvent,
    FaultPlan,
)

__all__ = [
    "ChaosInjector",
    "DEVICE_CRASH",
    "DEVICE_RESTART",
    "FaultEvent",
    "FaultPlan",
    "LATENCY_SPIKE",
    "LINK_HEAL",
    "LINK_PARTITION",
    "SERVICE_CRASH",
    "SERVICE_RESTART",
]
