"""The chaos injector: schedules a :class:`FaultPlan` on the sim kernel.

The injector is armed against a :class:`~repro.core.videopipe.VideoPipe`
home (any object with ``kernel``, ``topology``, ``devices`` and the
``crash_device``/``restart_device`` pair works). Each plan event becomes one
kernel event; when it fires, the injector applies the fault and appends
``(time, kind, target)`` to :attr:`trace` — the record the determinism test
compares across runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import FaultError
from .plan import (
    DEVICE_CRASH,
    DEVICE_RESTART,
    LATENCY_SPIKE,
    LINK_HEAL,
    LINK_PARTITION,
    SERVICE_CRASH,
    SERVICE_RESTART,
    FaultEvent,
    FaultPlan,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..core.videopipe import VideoPipe


class ChaosInjector:
    """Applies a fault plan to a home, deterministically."""

    def __init__(self, home: "VideoPipe", plan: FaultPlan) -> None:
        self.home = home
        self.kernel = home.kernel
        self.plan = plan
        self.armed = False
        #: (sim_time, kind, target) per fault actually applied — the
        #: deterministic event trace.
        self.trace: list[tuple[float, str, str]] = []
        self.faults_injected = 0

    # -- control ---------------------------------------------------------------
    def arm(self) -> None:
        """Validate targets and schedule every plan event. Call once, before
        (or during — events in the past raise) the run."""
        if self.armed:
            raise FaultError("injector already armed")
        self.armed = True
        now = self.kernel.now
        for event in self.plan.events():
            self._validate(event)
            if event.at < now:
                raise FaultError(
                    f"fault at t={event.at} is in the past (now={now})"
                )
            self.kernel.schedule(event.at - now, self._fire, event)

    def _validate(self, event: FaultEvent) -> None:
        if event.kind in (SERVICE_CRASH, SERVICE_RESTART):
            service, _, device = event.target.partition("@")
            dev = self.home.devices.get(device)
            if dev is None:
                raise FaultError(f"unknown device {device!r} in {event.target!r}")
            if service not in dev.service_hosts:
                raise FaultError(
                    f"device {device!r} hosts no service {service!r}"
                )
        else:
            if event.target not in self.home.devices:
                raise FaultError(f"unknown device {event.target!r}")

    # -- firing ----------------------------------------------------------------
    def _fire(self, event: FaultEvent) -> None:
        if event.kind == DEVICE_CRASH:
            self.home.crash_device(event.target)
        elif event.kind == DEVICE_RESTART:
            self.home.restart_device(event.target)
        elif event.kind == LINK_PARTITION:
            self.home.topology.partition(event.target)
        elif event.kind == LINK_HEAL:
            self.home.topology.heal(event.target)
        elif event.kind in (SERVICE_CRASH, SERVICE_RESTART):
            service, _, device = event.target.partition("@")
            host = self.home.devices[device].service_hosts[service]
            if event.kind == SERVICE_CRASH:
                host.crash()
            else:
                host.restart()
        elif event.kind == LATENCY_SPIKE:
            delta = float(event.params["extra_latency_s"])
            for link in self.home.topology.incident_links(event.target):
                link.extra_latency_s = max(0.0, link.extra_latency_s + delta)
        else:  # pragma: no cover - plan validation forbids this
            raise FaultError(f"unknown fault kind {event.kind!r}")
        self.faults_injected += 1
        self.trace.append((self.kernel.now, event.kind, event.target))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "armed" if self.armed else "idle"
        return f"<ChaosInjector {state}, {self.faults_injected} fired>"
