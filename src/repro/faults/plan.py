"""The declarative fault timeline.

A :class:`FaultPlan` is a list of primitive :class:`FaultEvent` entries —
*when*, *what kind*, *which target* — plus fluent builders for the common
compound patterns (a crash that heals itself, a flapping link). Plans are
pure data: they know nothing about the kernel or the home, which keeps them
serializable, diffable, and reusable across seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import FaultError

#: Primitive fault kinds understood by the injector.
DEVICE_CRASH = "device_crash"
DEVICE_RESTART = "device_restart"
LINK_PARTITION = "link_partition"
LINK_HEAL = "link_heal"
SERVICE_CRASH = "service_crash"
SERVICE_RESTART = "service_restart"
LATENCY_SPIKE = "latency_spike"

KINDS = (
    DEVICE_CRASH, DEVICE_RESTART, LINK_PARTITION, LINK_HEAL,
    SERVICE_CRASH, SERVICE_RESTART, LATENCY_SPIKE,
)

#: Kinds whose target is ``"service@device"`` rather than a device name.
_SERVICE_KINDS = (SERVICE_CRASH, SERVICE_RESTART)


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One primitive fault: *kind* hits *target* at simulated time *at*.

    Targets are device names, except for service faults where the target is
    ``"service@device"``. ``params`` carries kind-specific knobs (e.g.
    ``extra_latency_s`` for :data:`LATENCY_SPIKE`).
    """

    at: float
    kind: str
    target: str
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultError(f"fault time must be >= 0, got {self.at}")
        if self.kind not in KINDS:
            raise FaultError(f"unknown fault kind {self.kind!r}; known: {KINDS}")
        if not self.target:
            raise FaultError(f"{self.kind} event needs a target")
        if self.kind in _SERVICE_KINDS and "@" not in self.target:
            raise FaultError(
                f"{self.kind} target must be 'service@device', got {self.target!r}"
            )
        if self.kind == LATENCY_SPIKE:
            extra = self.params.get("extra_latency_s")
            if not isinstance(extra, (int, float)) or extra == 0:
                raise FaultError("latency_spike needs a nonzero extra_latency_s")
            if extra < 0 and not self.params.get("_restore"):
                raise FaultError("latency_spike needs extra_latency_s > 0")

    def as_dict(self) -> dict[str, Any]:
        return {
            "at": self.at, "kind": self.kind, "target": self.target,
            "params": dict(self.params),
        }


class FaultPlan:
    """A timeline of fault events with fluent builders.

    Builders return ``self`` so plans read like a schedule::

        plan = (FaultPlan()
                .device_crash(4.0, "desktop", down_for=8.0)
                .partition(6.0, "tv", heal_after=2.0)
                .latency_spike(10.0, "phone", extra_latency_s=0.2,
                               duration_s=3.0))
    """

    def __init__(self, events: list[FaultEvent] | None = None) -> None:
        self._events: list[FaultEvent] = list(events or [])

    # -- fluent builders -------------------------------------------------------
    def add(self, event: FaultEvent) -> "FaultPlan":
        self._events.append(event)
        return self

    def device_crash(self, at: float, device: str,
                     down_for: float | None = None) -> "FaultPlan":
        """Power-cycle fault: *device* dies at *at*; with ``down_for`` it
        restarts that many seconds later (else it stays dead)."""
        self.add(FaultEvent(at, DEVICE_CRASH, device))
        if down_for is not None:
            self._check_duration(down_for, "down_for")
            self.add(FaultEvent(at + down_for, DEVICE_RESTART, device))
        return self

    def device_restart(self, at: float, device: str) -> "FaultPlan":
        return self.add(FaultEvent(at, DEVICE_RESTART, device))

    def partition(self, at: float, device: str,
                  heal_after: float | None = None) -> "FaultPlan":
        """*device* falls off the network at *at* (it stays powered); with
        ``heal_after`` connectivity returns that many seconds later."""
        self.add(FaultEvent(at, LINK_PARTITION, device))
        if heal_after is not None:
            self._check_duration(heal_after, "heal_after")
            self.add(FaultEvent(at + heal_after, LINK_HEAL, device))
        return self

    def heal(self, at: float, device: str) -> "FaultPlan":
        return self.add(FaultEvent(at, LINK_HEAL, device))

    def flap(self, at: float, device: str, *, count: int,
             down_s: float, up_s: float) -> "FaultPlan":
        """A flapping link: *count* partition/heal cycles starting at *at*,
        each ``down_s`` seconds off followed by ``up_s`` seconds on."""
        if count < 1:
            raise FaultError("flap needs count >= 1")
        self._check_duration(down_s, "down_s")
        self._check_duration(up_s, "up_s")
        t = at
        for _ in range(count):
            self.partition(t, device, heal_after=down_s)
            t += down_s + up_s
        return self

    def service_crash(self, at: float, service: str, device: str,
                      down_for: float | None = None) -> "FaultPlan":
        """The service process (one replica host) dies; the device survives."""
        target = f"{service}@{device}"
        self.add(FaultEvent(at, SERVICE_CRASH, target))
        if down_for is not None:
            self._check_duration(down_for, "down_for")
            self.add(FaultEvent(at + down_for, SERVICE_RESTART, target))
        return self

    def service_restart(self, at: float, service: str, device: str) -> "FaultPlan":
        return self.add(FaultEvent(at, SERVICE_RESTART, f"{service}@{device}"))

    def latency_spike(self, at: float, device: str, *, extra_latency_s: float,
                      duration_s: float | None = None) -> "FaultPlan":
        """Add ``extra_latency_s`` to every link touching *device*; with
        ``duration_s`` the spike subsides after that long."""
        self.add(FaultEvent(
            at, LATENCY_SPIKE, device,
            {"extra_latency_s": float(extra_latency_s)},
        ))
        if duration_s is not None:
            self._check_duration(duration_s, "duration_s")
            self.add(FaultEvent(
                at + duration_s, LATENCY_SPIKE, device,
                {"extra_latency_s": -float(extra_latency_s), "_restore": True},
            ))
        return self

    @staticmethod
    def _check_duration(value: float, name: str) -> None:
        if value <= 0:
            raise FaultError(f"{name} must be positive, got {value}")

    # -- access ----------------------------------------------------------------
    def events(self) -> list[FaultEvent]:
        """The timeline in firing order (time, then insertion order)."""
        indexed = sorted(enumerate(self._events), key=lambda p: (p[1].at, p[0]))
        return [event for _, event in indexed]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events())

    def targets(self) -> list[str]:
        """Every distinct target in the plan, sorted."""
        return sorted({e.target for e in self._events})

    # -- (de)serialization ------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        return {"events": [e.as_dict() for e in self.events()]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        events = [
            FaultEvent(
                at=entry["at"], kind=entry["kind"], target=entry["target"],
                params=dict(entry.get("params", {})),
            )
            for entry in data.get("events", [])
        ]
        return cls(events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultPlan {len(self._events)} events>"
