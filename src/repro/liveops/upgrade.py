"""Hot in-place module upgrades with canary mirroring.

The uniform runtime exists so "any processing units in the video
processing pipeline can be executed on any device" (§1) — and, by the same
token, *replaced* without rebuilding the home (§7 "automatic deployment").
The live-operations manager performs that replacement the way production
fleets do:

1. **Shadow deploy** — the candidate version (v2) is deployed *beside* the
   incumbent (v1) on the same device, wired into a private shadow wiring
   whose downstream is a canary sink and whose ``source_module`` is
   ``None`` — so nothing the candidate does can touch the §2.3 credit
   path, and every mirrored frame is conserved on a dedicated shadow
   metrics collector.
2. **Mirror** — a tap on the incumbent's mailbox copies a configurable,
   deterministic fraction of arriving DATA events to the candidate
   (extra frame-store holds, no extra credits).
3. **Judge** — a kernel-paced decision loop compares the candidate's
   health against the incumbent using the runtime's existing signals:
   p99 event sojourn, handler error rate, mailbox backlog
   (:class:`~repro.liveops.policy.CanaryPolicy` holds the thresholds).
4. **Promote or roll back** — promotion atomically swaps the warm
   candidate into the incumbent's address via
   :meth:`~repro.pipeline.deployer.Deployer.swap_module` (queued events
   are salvaged, not dropped — zero frame loss); rollback retires the
   shadow deployment and leaves v1 untouched. Either way exactly one
   version of the module remains live, which the auditor's
   ``watch_liveops`` law checks.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Any

from ..errors import ConfigError
from ..frames.payloads import add_refs, frame_ids_in, release_refs
from ..metrics.collector import MetricsCollector
from ..net.address import Address
from ..runtime.events import DATA, ModuleEvent
from ..runtime.module import Module
from ..runtime.registry import create_module
from ..runtime.wiring import PipelineWiring
from ..slo.spec import quantile
from .lineage import LineageRecorder
from .policy import CanaryPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..pipeline.pipeline import Pipeline
    from ..runtime.moduleruntime import DeployedModule

#: Upgrade lifecycle states.
MIRRORING = "mirroring"
PROMOTED = "promoted"
ROLLED_BACK = "rolled_back"


class CanarySinkModule(Module):
    """Terminal module of a shadow wiring: absorbs everything the
    candidate forwards, releasing payload refs and completing each frame
    exactly once on the shadow metrics collector.

    This closes the mirror-conservation loop: the tap *enters* every
    mirrored frame on the shadow collector, the sink (or the candidate's
    own drop path) settles it, and the standard metrics-conservation law
    on the shadow collector becomes the mirror law for free.
    """

    #: The sink is bookkeeping, not simulated work.
    event_overhead_s = 0.0

    def __init__(self) -> None:
        self._completed: set[int] = set()

    def event_received(self, ctx, event: ModuleEvent) -> Any:
        payload = event.payload
        release_refs(payload, ctx._runtime.device.frame_store)
        for frame_id in frame_ids_in(payload):
            # a fan-out DAG reaches the sink once per edge; complete once
            if frame_id not in self._completed:
                self._completed.add(frame_id)
                ctx.frame_completed(frame_id)


class MirrorTap:
    """The per-upgrade mailbox tap installed on the incumbent.

    Called by the module runtime for every DATA event *after* normal
    enqueue (v1's delivery order is untouched). A deterministic fraction
    accumulator — no randomness, so mirrored runs replay exactly — decides
    which events to copy; copies take extra frame-store holds and travel
    on the shadow wiring, so the credit path never sees them.
    """

    def __init__(self, upgrade: "ModuleUpgrade") -> None:
        self.upgrade = upgrade
        self._acc = 0.0

    def __call__(self, event: ModuleEvent) -> None:
        upgrade = self.upgrade
        if upgrade.state != MIRRORING:
            return
        self._acc += upgrade.policy.mirror_fraction
        if self._acc < 1.0 - 1e-12:
            return
        self._acc -= 1.0
        primary = upgrade.primary_deployed
        runtime = primary.runtime
        payload = event.payload
        frame_ids = frame_ids_in(payload)
        add_refs(payload, runtime.device.frame_store)
        now = runtime.kernel.now
        for frame_id in frame_ids:
            upgrade.shadow_metrics.frame_entered(frame_id, now)
        upgrade.mirrored_events += 1
        upgrade.mirrored_frames += len(frame_ids)
        # the tap alias (never deployed) is the shadow wiring's name for
        # the incumbent's address; a mirror copy that dies in flight dead-
        # letters onto the *shadow* collector, not the live pipeline's
        runtime.send_to_module(
            upgrade.tap_name, upgrade.shadow_name, payload, {},
            kind=DATA, wiring=upgrade.shadow_wiring,
        )


class ModuleUpgrade:
    """One hot upgrade of one module: state, shadow deployment, verdict."""

    def __init__(
        self,
        pipeline: "Pipeline",
        module_name: str,
        from_version: str,
        to_version: str,
        new_instance: Module,
        policy: CanaryPolicy,
        started_at: float,
    ) -> None:
        self.pipeline = pipeline
        self.module_name = module_name
        self.from_version = from_version
        self.to_version = to_version
        self.new_instance = new_instance
        self.policy = policy
        self.started_at = started_at
        self.state = MIRRORING
        self.decided_at: float | None = None
        self.reason: str | None = None
        self.mirrored_events = 0
        self.mirrored_frames = 0
        self.shadow_name = f"{module_name}!{to_version}"
        self.sink_name = f"{module_name}!canary-sink"
        self.tap_name = f"{module_name}!tap"
        self.shadow_wiring: PipelineWiring | None = None
        self.shadow_metrics: MetricsCollector | None = None
        self.primary_deployed: "DeployedModule | None" = None
        self.shadow_deployed: "DeployedModule | None" = None
        self.sink_deployed: "DeployedModule | None" = None

    @property
    def active(self) -> bool:
        return self.state == MIRRORING

    def describe(self) -> dict[str, Any]:
        shadow = self.shadow_metrics
        return {
            "pipeline": self.pipeline.name,
            "module": self.module_name,
            "from_version": self.from_version,
            "to_version": self.to_version,
            "state": self.state,
            "reason": self.reason,
            "started_at": self.started_at,
            "decided_at": self.decided_at,
            "mirrored_events": self.mirrored_events,
            "mirrored_frames": self.mirrored_frames,
            "mirror_completed": (
                shadow.counter("frames_completed") if shadow else 0
            ),
            "mirror_dropped": (
                shadow.counter("frames_dropped") if shadow else 0
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ModuleUpgrade {self.pipeline.name}/{self.module_name}"
            f" {self.from_version}->{self.to_version} {self.state}>"
        )


def _bump_version(version: str) -> str:
    """``v1`` -> ``v2``; anything else gets a ``.next`` suffix."""
    match = re.fullmatch(r"([A-Za-z_.-]*?)(\d+)", version)
    if match:
        return f"{match.group(1)}{int(match.group(2)) + 1}"
    return f"{version}.next"


class LiveOpsManager:
    """Home-wide live-operations coordinator (one per
    :class:`~repro.core.videopipe.VideoPipe`, created by
    ``enable_liveops``).

    Attributes:
        upgrades: every upgrade ever started, oldest first.
        lineage: the home's :class:`LineageRecorder`.
        auditor: the home's auditor, or ``None`` (set by
            ``watch_liveops``).
    """

    def __init__(self, home, policy: CanaryPolicy | None = None) -> None:
        self.home = home
        self.kernel = home.kernel
        self.default_policy = policy or CanaryPolicy()
        self.upgrades: list[ModuleUpgrade] = []
        self._active: dict[tuple[str, str], ModuleUpgrade] = {}
        self.lineage = LineageRecorder(home.kernel)
        self.auditor: Any = None

    # -- lifecycle -----------------------------------------------------------
    def start_upgrade(
        self,
        pipeline: "Pipeline",
        module_name: str,
        new_include: str | None = None,
        params: dict[str, Any] | None = None,
        version: str | None = None,
        policy: CanaryPolicy | None = None,
        module_instance: Module | None = None,
    ) -> ModuleUpgrade:
        """Deploy a candidate version of *module_name* beside the incumbent
        and start mirroring live traffic to it.

        The candidate is built from *new_include*/*params* (defaulting to
        the module's current config) or taken verbatim from
        *module_instance*. *version* labels the candidate (default: the
        current version bumped, ``v1`` -> ``v2``). With ``policy.auto``
        (the default) the canary decision loop promotes or rolls back on
        its own; otherwise call :meth:`promote` / :meth:`rollback`.
        """
        if pipeline.stopped:
            raise ConfigError(
                f"pipeline {pipeline.name!r} is stopped; nothing to upgrade"
            )
        module_cfg = pipeline.config.module(module_name)
        if module_name == pipeline.config.source_module:
            raise ConfigError(
                f"module {module_name!r} is the pipeline source; canary"
                " mirroring is input-driven, and a second live source would"
                " capture frames twice — deploy a new pipeline version"
                " instead"
            )
        key = (pipeline.name, module_name)
        if key in self._active:
            raise ConfigError(
                f"module {module_name!r} of pipeline {pipeline.name!r}"
                " already has an upgrade in flight"
            )
        from_version = pipeline.wiring.version_of(module_name)
        to_version = version or _bump_version(from_version)
        if to_version == from_version:
            raise ConfigError(
                f"module {module_name!r} is already at version"
                f" {from_version!r}"
            )
        if module_instance is None:
            module_instance = create_module(
                new_include or module_cfg.include,
                **(module_cfg.params if params is None else params),
            )
        upgrade = ModuleUpgrade(
            pipeline, module_name, from_version, to_version,
            module_instance, policy or self.default_policy, self.kernel.now,
        )
        self._deploy_shadow(upgrade, module_cfg)
        self.upgrades.append(upgrade)
        self._active[key] = upgrade
        pipeline.metrics.increment("upgrades_started")
        if self.auditor is not None:
            self.auditor.on_upgrade_started(self, upgrade)
        if upgrade.policy.auto:
            self.kernel.schedule(
                upgrade.policy.check_interval_s, self._tick, upgrade
            )
        return upgrade

    def _deploy_shadow(self, upgrade: ModuleUpgrade, module_cfg) -> None:
        """Install v2 + canary sink on the incumbent's device, wired into a
        private shadow wiring, and arm the mirror tap."""
        pipeline = upgrade.pipeline
        primary = pipeline.module(upgrade.module_name)
        runtime = primary.runtime
        device = runtime.device
        transport = runtime.transport
        shadow_label = f"{pipeline.name}!canary:{upgrade.module_name}"
        metrics = MetricsCollector(shadow_label)
        wiring = PipelineWiring(pipeline_name=shadow_label, metrics=metrics)
        # no source module: the candidate's completion signals no-op
        # instead of granting credits — mirrored traffic never touches the
        # §2.3 flow-control path
        wiring.source_module = None
        shadow_address = Address(
            device.name, transport.ephemeral_port(device.name)
        )
        sink_address = Address(
            device.name, transport.ephemeral_port(device.name)
        )
        wiring.addresses[upgrade.tap_name] = primary.address
        wiring.addresses[upgrade.shadow_name] = shadow_address
        wiring.addresses[upgrade.sink_name] = sink_address
        # every other module name routes to the sink: whether the
        # candidate forwards via call_next or an explicit call_module, the
        # copy terminates in the shadow, never in the live pipeline
        for name in pipeline.config.module_names():
            if name != upgrade.module_name:
                wiring.addresses[name] = sink_address
        wiring.next_modules[upgrade.shadow_name] = list(
            module_cfg.next_modules
        )
        wiring.next_modules[upgrade.sink_name] = []
        wiring.versions[upgrade.shadow_name] = upgrade.to_version
        wiring.versions[upgrade.module_name] = upgrade.from_version
        stubs = self.home.deployer._build_stubs(
            pipeline, module_cfg, device
        )
        upgrade.shadow_wiring = wiring
        upgrade.shadow_metrics = metrics
        upgrade.primary_deployed = primary
        upgrade.shadow_deployed = runtime.deploy(
            upgrade.shadow_name, upgrade.new_instance, shadow_address,
            wiring, stubs,
        )
        upgrade.sink_deployed = runtime.deploy(
            upgrade.sink_name, CanarySinkModule(), sink_address, wiring, {},
        )
        if self.home.auditor is not None:
            # the standard metrics-conservation law on the shadow
            # collector *is* the mirror-conservation law
            self.home.auditor.watch_metrics(metrics)
        primary.mirror = MirrorTap(upgrade)

    # -- decision loop -------------------------------------------------------
    def _tick(self, upgrade: ModuleUpgrade) -> None:
        if upgrade.state != MIRRORING:
            return
        verdict, reason = self._evaluate(upgrade)
        if verdict == "promote":
            self.promote(upgrade, reason=reason)
        elif verdict == "rollback":
            self.rollback(upgrade, reason=reason)
        else:
            self.kernel.schedule(
                upgrade.policy.check_interval_s, self._tick, upgrade
            )

    def _evaluate(self, upgrade: ModuleUpgrade) -> tuple[str | None, str]:
        """Score the candidate against the incumbent; returns
        ``("promote"| "rollback" | None, reason)``."""
        policy = upgrade.policy
        shadow = upgrade.shadow_deployed
        errors = len(shadow.errors)
        events = shadow.events_processed
        if events and errors / events > policy.max_error_rate:
            return "rollback", (
                f"candidate error rate {errors}/{events} exceeds"
                f" {policy.max_error_rate:.0%}"
            )
        backlog = shadow.mailbox_depth
        if backlog > policy.max_backlog:
            return "rollback", (
                f"candidate backlog {backlog} exceeds {policy.max_backlog}:"
                " v2 cannot keep up with mirrored traffic"
            )
        v1_p99 = quantile(list(upgrade.primary_deployed.handler_samples), 0.99)
        v2_p99 = quantile(list(shadow.handler_samples), 0.99)
        bound = v1_p99 * policy.p99_ratio_limit + policy.p99_slack_s
        completed = upgrade.shadow_metrics.counter("frames_completed")
        if completed >= policy.min_mirrored:
            if v2_p99 > bound:
                return "rollback", (
                    f"candidate p99 {v2_p99 * 1e3:.1f}ms exceeds bound"
                    f" {bound * 1e3:.1f}ms (incumbent p99"
                    f" {v1_p99 * 1e3:.1f}ms)"
                )
            if backlog == 0:
                return "promote", (
                    f"{completed} mirrored frames completed; candidate p99"
                    f" {v2_p99 * 1e3:.1f}ms within bound"
                    f" {bound * 1e3:.1f}ms"
                )
        if self.kernel.now - upgrade.started_at >= policy.decision_timeout_s:
            return "rollback", (
                f"no promote verdict within {policy.decision_timeout_s:.1f}s"
                f" ({completed}/{policy.min_mirrored} mirrored frames"
                " completed) — failing safe"
            )
        return None, ""

    # -- verdicts ------------------------------------------------------------
    def promote(self, upgrade: ModuleUpgrade, reason: str = "manual") -> None:
        """Swap the warm candidate into the incumbent's address.

        The shadow deployment is retired first (undelivered mirror copies
        are dropped on the shadow collector), then
        :meth:`~repro.pipeline.deployer.Deployer.swap_module` rebinds the
        incumbent's address to the candidate within one kernel callback —
        peers keep routing unchanged, queued events are salvaged into the
        candidate's mailbox, and no admitted frame is lost.
        """
        if upgrade.state != MIRRORING:
            raise ConfigError(f"upgrade is {upgrade.state}, not mirroring")
        self._retire_shadow(upgrade)
        self.home.deployer.swap_module(
            upgrade.pipeline, upgrade.module_name, upgrade.new_instance,
            upgrade.to_version,
        )
        self._finish(upgrade, PROMOTED, reason)
        upgrade.pipeline.metrics.increment("upgrades_promoted")

    def rollback(self, upgrade: ModuleUpgrade, reason: str = "manual") -> None:
        """Retire the candidate; the incumbent was never touched."""
        if upgrade.state != MIRRORING:
            raise ConfigError(f"upgrade is {upgrade.state}, not mirroring")
        self._retire_shadow(upgrade)
        shutdown = getattr(upgrade.new_instance, "shutdown", None)
        if callable(shutdown):
            shutdown(upgrade.shadow_deployed.ctx)
        self._finish(upgrade, ROLLED_BACK, reason)
        upgrade.pipeline.metrics.increment("upgrades_rolled_back")

    def _retire_shadow(self, upgrade: ModuleUpgrade) -> None:
        """Detach the tap and tear the shadow deployment down, settling
        every mirrored frame still queued there (mirror copies conserved:
        entered == completed + dropped on the shadow collector)."""
        upgrade.primary_deployed.mirror = None
        for dep in (upgrade.shadow_deployed, upgrade.sink_deployed):
            dep.runtime.undeploy(dep.name)
            seen: set[int] = set()
            for event in dep.mailbox.drain():
                release_refs(
                    event.payload, dep.runtime.device.frame_store
                )
                for frame_id in frame_ids_in(event.payload):
                    if frame_id not in seen:
                        seen.add(frame_id)
                        dep.ctx.frame_dropped(frame_id)

    def _finish(
        self, upgrade: ModuleUpgrade, state: str, reason: str
    ) -> None:
        upgrade.state = state
        upgrade.decided_at = self.kernel.now
        upgrade.reason = reason
        self._active.pop((upgrade.pipeline.name, upgrade.module_name), None)
        if self.auditor is not None:
            self.auditor.on_upgrade_finished(self, upgrade)

    # -- inspection ----------------------------------------------------------
    def active_upgrades(self) -> list[ModuleUpgrade]:
        return list(self._active.values())

    def upgrade_of(
        self, pipeline_name: str, module_name: str
    ) -> ModuleUpgrade | None:
        """The in-flight upgrade for one module, or ``None``."""
        return self._active.get((pipeline_name, module_name))

    def status(self) -> dict[str, Any]:
        """Live report: every upgrade's state plus lineage counters."""
        states = {MIRRORING: 0, PROMOTED: 0, ROLLED_BACK: 0}
        for upgrade in self.upgrades:
            states[upgrade.state] += 1
        return {
            "upgrades": [u.describe() for u in self.upgrades],
            "counts": states,
            "lineage": {
                "frames_recorded": self.lineage.frame_count,
                "touches": self.lineage.touches,
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<LiveOpsManager {len(self.upgrades)} upgrade(s),"
            f" {len(self._active)} active>"
        )
