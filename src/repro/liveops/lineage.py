"""Per-frame lineage: which module and service versions touched each frame.

A rolling upgrade makes "what code processed this output?" a real
question — during the canary phase two versions of one module are live at
once, and after a promotion old and new frames in one run crossed
different code. The recorder answers it per frame, passively: the module
runtime calls :meth:`LineageRecorder.touch_event` as each DATA event
reaches its handler, and the recorder appends a
``(module, version, device, service versions)`` step to that frame's
path. Like tracing and auditing, lineage never schedules kernel events,
never consumes randomness and never touches message sizes, so a recorded
run is bit-for-bit identical to an unrecorded one.

The export (:meth:`LineageRecorder.export_json`) is a JSON artifact meant
to sit beside the Perfetto trace: one entry per frame, each a list of
steps in processing order.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from ..frames.payloads import frame_ids_in

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.context import ModuleContext
    from ..sim.kernel import Kernel


class LineageRecorder:
    """Passive per-frame version-lineage sink for one home.

    Attributes:
        touches: total lineage steps recorded.
        dropped_frames: frames evicted past ``max_frames`` (oldest first).
    """

    def __init__(self, kernel: "Kernel", max_frames: int = 20_000) -> None:
        self.kernel = kernel
        self.max_frames = max_frames
        #: (pipeline, frame_id) -> ordered list of lineage steps.
        self._records: dict[tuple[str, int], list[dict[str, Any]]] = {}
        self.touches = 0
        self.dropped_frames = 0

    # -- recording (called from the module runtime's worker) -----------------
    def touch_event(self, ctx: "ModuleContext", payload: Any) -> None:
        """Record that *ctx*'s module is handling *payload* now.

        One step is appended to every frame the payload carries. The step
        captures the module's deployed version (from the pipeline wiring)
        and the versions of every service the module's stubs currently
        resolve to — the exact code a call from this step would reach.
        """
        frame_ids = frame_ids_in(payload)
        if not frame_ids:
            return
        services: dict[str, str] = {}
        for service_name, stub in ctx._stubs.items():
            host = getattr(stub, "host", None)
            if host is not None:
                services[service_name] = host.service.version
        step = {
            "t": self.kernel.now,
            "module": ctx.module_name,
            "version": ctx.wiring.version_of(ctx.module_name),
            "device": ctx.device_name,
            "services": services,
        }
        pipeline = ctx.pipeline_name
        for frame_id in frame_ids:
            self.touch(pipeline, frame_id, step)

    def touch(
        self, pipeline: str, frame_id: int, step: dict[str, Any]
    ) -> None:
        """Append one lineage *step* to ``(pipeline, frame_id)``'s path."""
        key = (pipeline, frame_id)
        path = self._records.get(key)
        if path is None:
            while len(self._records) >= self.max_frames:
                self._records.pop(next(iter(self._records)))
                self.dropped_frames += 1
            path = self._records[key] = []
        path.append(step)
        self.touches += 1

    # -- reading -------------------------------------------------------------
    @property
    def frame_count(self) -> int:
        return len(self._records)

    def path_of(self, pipeline: str, frame_id: int) -> list[dict[str, Any]]:
        """The recorded steps for one frame, oldest first (empty when the
        frame was never touched or was evicted)."""
        return list(self._records.get((pipeline, frame_id), []))

    def versions_of(self, pipeline: str, frame_id: int) -> list[str]:
        """The ``module@version`` chain one frame crossed, in order."""
        return [
            f"{step['module']}@{step['version']}"
            for step in self._records.get((pipeline, frame_id), [])
        ]

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict form of everything recorded (the export payload)."""
        frames = [
            {"pipeline": pipeline, "frame_id": frame_id, "path": list(path)}
            for (pipeline, frame_id), path in self._records.items()
        ]
        return {
            "touches": self.touches,
            "frames_recorded": len(frames),
            "frames_evicted": self.dropped_frames,
            "frames": frames,
        }

    def export_json(self, path: str) -> int:
        """Write the lineage artifact to *path*; returns frames written."""
        data = self.as_dict()
        with open(path, "w") as fh:
            json.dump(data, fh, indent=2)
        return data["frames_recorded"]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<LineageRecorder {len(self._records)} frames,"
            f" {self.touches} touches>"
        )
