"""Canary policy: when is a new module version healthy enough to promote?

Llama-style reconfiguration judgement (PAPERS.md): a version swap is not
applied blind — the candidate runs beside the incumbent on live mirrored
traffic and is scored against the latency/error/backlog signals the
runtime already collects. The policy holds the thresholds; the decision
loop lives in :class:`~repro.liveops.upgrade.LiveOpsManager`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(slots=True)
class CanaryPolicy:
    """Knobs for one hot upgrade's canary phase.

    Attributes:
        mirror_fraction: fraction of the incumbent's DATA events copied to
            the candidate (deterministic accumulator, no randomness;
            ``1.0`` mirrors everything).
        min_mirrored: mirrored frames the candidate must *complete* before
            a promote decision may be taken (evidence floor).
        decision_timeout_s: hard deadline on the canary phase; if no
            promote decision was reached by then the upgrade rolls back
            (insufficient or unhealthy evidence both fail safe).
        check_interval_s: how often the decision loop re-evaluates.
        p99_ratio_limit: candidate p99 sojourn may be at most this multiple
            of the incumbent's.
        p99_slack_s: absolute slack added to the p99 bound, so a near-zero
            incumbent p99 does not make the ratio test impossible to pass.
        max_error_rate: candidate handler errors / events above this roll
            back immediately.
        max_backlog: candidate mailbox depth above this rolls back
            immediately (the candidate cannot keep up with even a fraction
            of live traffic).
        auto: drive the decision loop from the kernel. ``False`` leaves
            the upgrade mirroring until :meth:`~repro.liveops.upgrade
            .LiveOpsManager.promote` / ``rollback`` is called explicitly.
    """

    mirror_fraction: float = 1.0
    min_mirrored: int = 8
    decision_timeout_s: float = 10.0
    check_interval_s: float = 0.5
    p99_ratio_limit: float = 3.0
    p99_slack_s: float = 0.010
    max_error_rate: float = 0.02
    max_backlog: int = 8
    auto: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.mirror_fraction <= 1.0:
            raise ConfigError("mirror_fraction must be in (0, 1]")
        if self.min_mirrored < 1:
            raise ConfigError("min_mirrored must be >= 1")
        if self.decision_timeout_s <= 0:
            raise ConfigError("decision_timeout_s must be positive")
        if self.check_interval_s <= 0:
            raise ConfigError("check_interval_s must be positive")
        if self.p99_ratio_limit < 1.0:
            raise ConfigError("p99_ratio_limit must be >= 1")
        if self.p99_slack_s < 0:
            raise ConfigError("p99_slack_s must be >= 0")
        if not 0.0 <= self.max_error_rate <= 1.0:
            raise ConfigError("max_error_rate must be in [0, 1]")
        if self.max_backlog < 1:
            raise ConfigError("max_backlog must be >= 1")
