"""Live operations: versioning, canary mirroring, hot module upgrades,
and per-frame version lineage (``docs/LIVEOPS.md``)."""

from .lineage import LineageRecorder
from .policy import CanaryPolicy
from .upgrade import (
    MIRRORING,
    PROMOTED,
    ROLLED_BACK,
    CanarySinkModule,
    LiveOpsManager,
    MirrorTap,
    ModuleUpgrade,
)

__all__ = [
    "CanaryPolicy",
    "CanarySinkModule",
    "LineageRecorder",
    "LiveOpsManager",
    "MIRRORING",
    "MirrorTap",
    "ModuleUpgrade",
    "PROMOTED",
    "ROLLED_BACK",
]
