"""A shared-memory-style frame plane: generation-counted pixel arenas.

The paper's Fig. 6 argument is that the intra-device data plane should cost
~nothing: co-located modules and service replicas already share frames by
reference id, but every stored pixel plane is still an individually owned
Python object, and nothing distinguishes "this ref died because the frame
was evicted" from "it died because someone double-released".

:class:`FrameArena` models the missing layer: a per-device arena from which
the :class:`~repro.frames.framestore.FrameStore` allocates pixel planes,
handing out ``(arena_id, offset, generation)`` :class:`ArenaHandle` tokens.
Handles cost **zero charged wire bytes** on intra-device hops (a real
shared-memory segment ships only the tuple), and every slot carries a
generation counter bumped at retire time, so a stale dereference — after
eviction under capacity pressure, after the frame migrated to another
device, or after a double release — raises a typed
:class:`~repro.errors.StaleHandleError` naming the retire reason instead of
silently reading recycled memory. The invariant auditor mirrors arena
alloc/free counts and flags any stale access or end-of-run leak.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any

from ..errors import FrameStoreError, StaleHandleError

#: Retire reasons recorded per slot; a stale access reports the one that
#: retired the slot the handle still points at.
EVICTED = "evicted"
MIGRATED = "migrated"
RELEASED = "released"

RETIRE_REASONS = (EVICTED, MIGRATED, RELEASED)


@dataclass(frozen=True, slots=True)
class ArenaHandle:
    """A zero-copy token for one pixel plane inside a device arena.

    Attributes:
        arena_id: the owning arena (device-scoped; handles never cross
            devices, mirroring :class:`~repro.frames.frame.FrameRef`).
        offset: byte offset of the plane inside the arena.
        generation: the slot's generation at allocation time; a mismatch
            with the slot's current generation means the slot was retired
            (and possibly recycled) after this handle was minted.
        nbytes: size of the plane.
    """

    arena_id: str
    offset: int
    generation: int
    nbytes: int

    #: Wire-size hint consumed by :func:`repro.net.wire.payload_size`:
    #: an intra-device hop ships the tuple through shared memory, so the
    #: charged payload contribution is zero.
    @property
    def wire_size(self) -> int:
        return 0

    def __str__(self) -> str:
        return (
            f"arena-handle:{self.arena_id}/{self.offset}"
            f"@g{self.generation}"
        )


class FrameArena:
    """A per-device bump allocator with per-slot generation counters.

    The arena does not hold pixel bytes itself (the simulation's frames stay
    ordinary objects); it owns the *accounting*: which offsets are live,
    which generation each is on, why each retired slot died, and the
    conservation counters the auditor cross-checks.

    Args:
        arena_id: name of the owning device.
        capacity_bytes: optional hard byte budget; ``alloc`` past it raises
            :class:`~repro.errors.FrameStoreError` (the store's slot-count
            capacity usually trips first).
    """

    def __init__(self, arena_id: str, capacity_bytes: int | None = None) -> None:
        if capacity_bytes is not None and capacity_bytes < 1:
            raise FrameStoreError("arena capacity_bytes must be >= 1")
        self.arena_id = arena_id
        self.capacity_bytes = capacity_bytes
        #: offset -> current generation (bumped when the slot retires).
        self._generations: dict[int, int] = {}
        #: offset -> live handle (present only while the slot is live).
        self._live: dict[int, ArenaHandle] = {}
        #: offset -> reason the slot last retired.
        self._retired_reason: dict[int, str] = {}
        #: size-class free lists for offset reuse.
        self._free: dict[int, list[int]] = {}
        self._next_offset = 0
        #: The home's auditor, or ``None`` (set by ``watch_arena``).
        self.auditor: Any = None
        # conservation counters (mirrored by the auditor)
        self.allocs = 0
        self.frees = 0
        self.bytes_in_use = 0
        self.peak_bytes = 0
        self.stale_accesses: Counter[str] = Counter()

    @property
    def live_count(self) -> int:
        """Slots currently allocated (must be 0 at quiesce)."""
        return len(self._live)

    # -- allocation ----------------------------------------------------------
    def alloc(self, nbytes: int) -> ArenaHandle:
        """Carve a plane of *nbytes* and return its handle (generation of
        the slot it landed in)."""
        if nbytes < 0:
            raise FrameStoreError("arena alloc size must be >= 0")
        if (
            self.capacity_bytes is not None
            and self.bytes_in_use + nbytes > self.capacity_bytes
        ):
            raise FrameStoreError(
                f"arena {self.arena_id!r} over byte budget:"
                f" {self.bytes_in_use} + {nbytes} > {self.capacity_bytes}"
            )
        bucket = self._free.get(nbytes)
        if bucket:
            offset = bucket.pop()
        else:
            offset = self._next_offset
            self._next_offset += max(nbytes, 1)
        generation = self._generations.get(offset, 0) + 1
        self._generations[offset] = generation
        handle = ArenaHandle(self.arena_id, offset, generation, nbytes)
        self._live[offset] = handle
        self._retired_reason.pop(offset, None)
        self.allocs += 1
        self.bytes_in_use += nbytes
        self.peak_bytes = max(self.peak_bytes, self.bytes_in_use)
        if self.auditor is not None:
            self.auditor.on_arena_alloc(self, handle)
        return handle

    def free(self, handle: ArenaHandle, reason: str = RELEASED) -> None:
        """Retire *handle*'s slot, recording *reason* and bumping the
        generation so any surviving copy of the handle goes stale."""
        if reason not in RETIRE_REASONS:
            raise FrameStoreError(f"unknown arena retire reason {reason!r}")
        self.check(handle)
        offset = handle.offset
        del self._live[offset]
        self._retired_reason[offset] = reason
        # bump now (not at realloc) so stale handles fail even before reuse
        self._generations[offset] = handle.generation + 1
        self._free.setdefault(handle.nbytes, []).append(offset)
        self.frees += 1
        self.bytes_in_use -= handle.nbytes
        if self.auditor is not None:
            self.auditor.on_arena_free(self, handle, reason)

    # -- validation ----------------------------------------------------------
    def check(self, handle: ArenaHandle) -> None:
        """Raise :class:`~repro.errors.StaleHandleError` unless *handle*
        points at the live generation of its slot."""
        if handle.arena_id != self.arena_id:
            raise FrameStoreError(
                f"handle {handle} belongs to arena {handle.arena_id!r}; this"
                f" arena is {self.arena_id!r} — handles never cross devices"
            )
        current = self._generations.get(handle.offset)
        if current == handle.generation and handle.offset in self._live:
            return
        reason = self._retired_reason.get(handle.offset, "unknown")
        self.stale_accesses[reason] += 1
        if self.auditor is not None:
            self.auditor.on_stale_access(self, handle, reason)
        raise StaleHandleError(
            f"stale arena handle {handle}: slot is at generation"
            f" {current if current is not None else '<never allocated>'}"
            f" (retired: {reason}) — the frame was {reason} after this"
            " handle was minted",
            reason=reason,
        )

    def is_live(self, handle: ArenaHandle) -> bool:
        """True when the handle still points at its slot's live generation."""
        return (
            handle.arena_id == self.arena_id
            and self._live.get(handle.offset) == handle
        )

    def stats(self) -> dict[str, Any]:
        """Conservation counters for the ablation benches and the auditor."""
        return {
            "allocs": self.allocs,
            "frees": self.frees,
            "live": self.live_count,
            "bytes_in_use": self.bytes_in_use,
            "peak_bytes": self.peak_bytes,
            "stale_accesses": dict(self.stale_accesses),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FrameArena {self.arena_id} {self.live_count} live,"
            f" {self.bytes_in_use}B in use>"
        )
