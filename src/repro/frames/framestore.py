"""Device-local frame stores with reference counting and content dedup.

The paper minimizes data copying by handing modules a *reference id* instead
of the frame: "The module code can use that id to do the modifications on
the image using the services and forward the frames to other modules" (§3).
:class:`FrameStore` implements that contract: frames (or any payload) are
parked once per device, co-located modules and services share them by
:class:`~repro.frames.frame.FrameRef`, and refcounts reclaim slots when the
last holder releases.

With ``dedup`` enabled the store is additionally *content-addressed* for
frames: a byte-identical :class:`~repro.frames.frame.VideoFrame` resolves
to the already-stored object (one slot, one refcount pool), which is what
makes static scenes nearly free downstream. Deduped objects whose refcount
hits zero are *retained* for a while (up to ``retain_limit`` entries) so the
next identical capture still hits; retained entries are the first thing
evicted under capacity pressure.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Any, Callable

from ..errors import FrameStoreError, StaleHandleError
from .arena import EVICTED, RELEASED, ArenaHandle, FrameArena
from .digest import content_digest
from .frame import FrameRef, VideoFrame

#: How many retired refs keep a tombstone recording *why* they died, so a
#: stale dereference reports use-after-evict vs use-after-migrate vs
#: double-release instead of a generic "unknown reference".
TOMBSTONE_LIMIT = 1024

#: An eviction hook: called as ``hook(store, needed_slots)`` when the store
#: is full; it frees slots by releasing its own holds. The hook's return
#: value is ignored — the store measures the actual occupancy delta rather
#: than trusting a self-reported count.
EvictionHook = Callable[["FrameStore", int], int]


class FrameStore:
    """A per-device object store keyed by reference id.

    Args:
        device: owning device name (refs never cross devices).
        capacity: maximum simultaneously stored objects (live + retained).
        dedup: content-address byte-identical :class:`VideoFrame` objects.
        retain_limit: with dedup on, how many zero-refcount frames to keep
            around as dedup targets before reclaiming the oldest.
    """

    def __init__(
        self,
        device: str,
        capacity: int = 256,
        dedup: bool = False,
        retain_limit: int = 32,
    ) -> None:
        if capacity < 1:
            raise FrameStoreError("capacity must be >= 1")
        if retain_limit < 0:
            raise FrameStoreError("retain_limit must be >= 0")
        self.device = device
        self.capacity = capacity
        self.dedup = dedup
        self.retain_limit = retain_limit
        self._ids = itertools.count(1)
        self._objects: dict[int, Any] = {}
        self._refcounts: dict[int, int] = {}
        #: ref_id -> content digest (memoized; None = undigestable).
        self._digests: dict[int, str | None] = {}
        #: digest -> ref_id for dedup lookups (frames only).
        self._by_digest: dict[str, int] = {}
        #: zero-refcount entries kept alive as dedup targets (LRU by
        #: release order; value unused).
        self._retained: OrderedDict[int, None] = OrderedDict()
        self._eviction_hooks: list[EvictionHook] = []
        #: True while eviction hooks run; guards against hooks re-entering
        #: :meth:`put` mid-eviction (which would recurse into `_make_room`).
        self._evicting = False
        #: The device's :class:`~repro.frames.arena.FrameArena`, or ``None``
        #: when the shared-memory frame plane is off (see ``attach_arena``).
        self.arena: FrameArena | None = None
        #: ref_id -> arena handle for stored :class:`VideoFrame` planes.
        self._handles: dict[int, ArenaHandle] = {}
        #: live handle -> ref_id (reverse map; handles are frozen/hashable).
        self._by_handle: dict[ArenaHandle, int] = {}
        #: ref_id -> retire reason for recently deleted refs (bounded LRU);
        #: lets ``_check`` raise a typed StaleHandleError naming the cause.
        self._tombstones: OrderedDict[int, str] = OrderedDict()
        #: The home's :class:`~repro.audit.auditor.InvariantAuditor`, or
        #: ``None`` while auditing is off (set by ``watch_store``).
        self.auditor: Any = None
        # statistics for the ref-passing and dedup ablations
        self.stored_count = 0
        self.resolved_count = 0
        self.peak_occupancy = 0
        self.dedup_hits = 0
        self.dedup_misses = 0
        self.dedup_bytes_saved = 0
        self.retained_evictions = 0
        self.hook_evictions = 0

    def __len__(self) -> int:
        return len(self._objects)

    @property
    def live_count(self) -> int:
        """Objects with at least one holder."""
        return len(self._objects) - len(self._retained)

    @property
    def retained_count(self) -> int:
        """Zero-refcount objects kept as dedup targets."""
        return len(self._retained)

    # -- shared-memory arena ---------------------------------------------------
    def attach_arena(self, arena: FrameArena) -> None:
        """Back this store's pixel planes with *arena*: every stored
        :class:`VideoFrame` gets a generation-counted handle, and retired
        refs raise :class:`~repro.errors.StaleHandleError` naming the
        retire reason. Frames already stored are adopted in place."""
        if arena.arena_id != self.device:
            raise FrameStoreError(
                f"arena {arena.arena_id!r} cannot back the store on"
                f" {self.device!r} — the frame plane is device-local"
            )
        if self.arena is arena:
            return
        if self.arena is not None:
            raise FrameStoreError(
                f"store on {self.device!r} already has an arena attached"
            )
        self.arena = arena
        for ref_id, obj in self._objects.items():
            if isinstance(obj, VideoFrame) and ref_id not in self._handles:
                handle = arena.alloc(obj.raw_size)
                self._handles[ref_id] = handle
                self._by_handle[handle] = ref_id

    def handle_of(self, ref: FrameRef) -> ArenaHandle | None:
        """The arena handle backing *ref*'s pixel plane (``None`` when no
        arena is attached or the object is not a frame)."""
        self._check(ref)
        return self._handles.get(ref.ref_id)

    def frame_by_handle(self, handle: ArenaHandle) -> Any:
        """Resolve an arena handle straight to its frame, generation-checked.

        This is the zero-copy path a co-located service replica uses: no
        refcount traffic, no tree walk — just a generation check and a
        dictionary hit. Stale handles raise
        :class:`~repro.errors.StaleHandleError`."""
        if self.arena is None:
            raise FrameStoreError(
                f"store on {self.device!r} has no arena attached"
            )
        self.arena.check(handle)
        ref_id = self._by_handle.get(handle)
        if ref_id is None:
            raise StaleHandleError(
                f"handle {handle} is live in the arena but unknown to the"
                f" store on {self.device!r}", reason="unknown",
            )
        self.resolved_count += 1
        return self._objects[ref_id]

    # -- core protocol -------------------------------------------------------
    def put(self, obj: Any) -> FrameRef:
        """Park *obj* and return a reference with refcount 1.

        With dedup enabled, a byte-identical frame resolves to the existing
        stored object instead of taking a new slot.
        """
        if self._evicting:
            raise FrameStoreError(
                f"eviction hook re-entered put() on {self.device!r} while the"
                " store was making room — hooks may only release their own"
                " holds, never store new objects"
            )
        digest: str | None = None
        if self.dedup and isinstance(obj, VideoFrame):
            digest = content_digest(obj)
            if digest is not None:
                existing = self._by_digest.get(digest)
                if existing is not None:
                    self.dedup_hits += 1
                    self.dedup_bytes_saved += obj.raw_size
                    if existing in self._retained:
                        del self._retained[existing]
                        self._refcounts[existing] = 1
                    else:
                        self._refcounts[existing] += 1
                    if self.auditor is not None:
                        self.auditor.on_ref_hold(
                            self, existing, self._refcounts[existing]
                        )
                    return FrameRef(self.device, existing)
            self.dedup_misses += 1
        if len(self._objects) >= self.capacity:
            self._make_room()
        ref_id = next(self._ids)
        self._objects[ref_id] = obj
        self._refcounts[ref_id] = 1
        if self.arena is not None and isinstance(obj, VideoFrame):
            handle = self.arena.alloc(obj.raw_size)
            self._handles[ref_id] = handle
            self._by_handle[handle] = ref_id
        if digest is not None:
            self._digests[ref_id] = digest
            self._by_digest[digest] = ref_id
        self.stored_count += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._objects))
        if self.auditor is not None:
            self.auditor.on_ref_hold(self, ref_id, 1)
        return FrameRef(self.device, ref_id)

    def get(self, ref: FrameRef) -> Any:
        """Resolve a reference to its object (no copy)."""
        self._check(ref)
        self.resolved_count += 1
        return self._objects[ref.ref_id]

    def add_ref(self, ref: FrameRef) -> FrameRef:
        """Take an additional hold on the object (fan-out to two modules)."""
        self._check(ref)
        self._refcounts[ref.ref_id] += 1
        if self.auditor is not None:
            self.auditor.on_ref_hold(self, ref.ref_id, self._refcounts[ref.ref_id])
        return ref

    def release(self, ref: FrameRef, reason: str = RELEASED) -> None:
        """Drop one hold; the object is reclaimed when the count hits zero
        (or retained as a dedup target when dedup is on).

        *reason* is the arena retire reason recorded if this release frees
        the slot: :data:`~repro.frames.arena.RELEASED` for ordinary drops,
        :data:`~repro.frames.arena.MIGRATED` when the frame is shipped to
        another device (set by ``encode_refs_for_wire``)."""
        self._check(ref)
        ref_id = ref.ref_id
        self._refcounts[ref_id] -= 1
        if self.auditor is not None:
            self.auditor.on_ref_release(self, ref_id, self._refcounts[ref_id])
        if self._refcounts[ref_id] == 0:
            if (
                self.dedup
                and self.retain_limit > 0
                and self._digests.get(ref_id) is not None
            ):
                self._retained[ref_id] = None
                while len(self._retained) > self.retain_limit:
                    oldest, _ = self._retained.popitem(last=False)
                    self.retained_evictions += 1
                    self._delete(oldest, EVICTED)
            else:
                self._delete(ref_id, reason)

    def refcount(self, ref: FrameRef) -> int:
        self._check(ref)
        return self._refcounts[ref.ref_id]

    def contains(self, ref: FrameRef) -> bool:
        return (
            ref.device == self.device
            and ref.ref_id in self._objects
            and ref.ref_id not in self._retained
        )

    # -- content addressing ----------------------------------------------------
    def digest_of(self, ref: FrameRef) -> str | None:
        """Content digest of the referenced object (memoized; ``None`` when
        the object has no stable byte representation)."""
        self._check(ref)
        ref_id = ref.ref_id
        if ref_id not in self._digests:
            self._digests[ref_id] = content_digest(self._objects[ref_id])
        return self._digests[ref_id]

    def dedup_ratio(self) -> float:
        """Fraction of dedup-eligible puts that hit an existing object."""
        attempts = self.dedup_hits + self.dedup_misses
        if attempts == 0:
            return 0.0
        return self.dedup_hits / attempts

    # -- capacity pressure ----------------------------------------------------
    def add_eviction_hook(self, hook: EvictionHook) -> None:
        """Register a hook consulted when the store is full. Hooks free
        slots by releasing holds they own (e.g. a cache dropping pinned
        entries); the store measures how many slots each hook actually
        freed rather than trusting a returned count. Hooks must not call
        :meth:`put` — eviction is in progress and re-entering would
        recurse."""
        self._eviction_hooks.append(hook)

    def _make_room(self) -> None:
        """Free at least one slot or raise the leak diagnostic."""
        # retained dedup targets are pure cache: reclaim oldest first
        self._reclaim_retained()
        needed = len(self._objects) - self.capacity + 1
        if needed > 0 and self._eviction_hooks:
            self._evicting = True
            try:
                for hook in self._eviction_hooks:
                    before = len(self._objects)
                    hook(self, needed)
                    # a hook's releases may land in the retained cache (dedup
                    # stores) instead of freeing slots outright; sweep it so
                    # the measured delta reflects reclaimable room
                    self._reclaim_retained()
                    freed = before - len(self._objects)
                    if freed > 0:
                        self.hook_evictions += freed
                    needed = len(self._objects) - self.capacity + 1
                    if needed <= 0:
                        break
            finally:
                self._evicting = False
        if len(self._objects) >= self.capacity:
            raise FrameStoreError(
                f"frame store on {self.device!r} full ({self.capacity} slots,"
                f" {self.retained_count} retained); a module is leaking"
                f" references — top holders: {self._top_holders()}"
            )

    def _reclaim_retained(self) -> None:
        """Delete retained (zero-refcount) entries oldest-first while the
        store is at or over capacity."""
        while self._retained and len(self._objects) >= self.capacity:
            oldest, _ = self._retained.popitem(last=False)
            self.retained_evictions += 1
            self._delete(oldest, EVICTED)

    def _top_holders(self, limit: int = 5) -> str:
        """The highest-refcount entries, for the leak diagnostic."""
        live = sorted(
            ((count, ref_id) for ref_id, count in self._refcounts.items()
             if count > 0),
            reverse=True,
        )[:limit]
        if not live:
            return "none (all retained)"
        return ", ".join(
            f"#{ref_id} {type(self._objects[ref_id]).__name__} x{count}"
            for count, ref_id in live
        )

    # -- helpers ---------------------------------------------------------------
    def _delete(self, ref_id: int, reason: str = RELEASED) -> None:
        del self._objects[ref_id]
        del self._refcounts[ref_id]
        digest = self._digests.pop(ref_id, None)
        if digest is not None and self._by_digest.get(digest) == ref_id:
            del self._by_digest[digest]
        handle = self._handles.pop(ref_id, None)
        if handle is not None:
            self._by_handle.pop(handle, None)
            if self.arena is not None:
                self.arena.free(handle, reason)
        self._tombstones[ref_id] = reason
        while len(self._tombstones) > TOMBSTONE_LIMIT:
            self._tombstones.popitem(last=False)

    def _check(self, ref: FrameRef) -> None:
        if ref.device != self.device:
            raise FrameStoreError(
                f"reference {ref} belongs to device {ref.device!r}; this store"
                f" is on {self.device!r} — frame refs never cross devices"
            )
        if ref.ref_id not in self._objects or ref.ref_id in self._retained:
            reason = self._tombstones.get(ref.ref_id)
            if reason is not None:
                raise StaleHandleError(
                    f"stale reference {ref}: the frame was {reason} after"
                    " the last live handle was minted — use-after-"
                    f"{'free' if reason == 'released' else reason}",
                    reason=reason,
                )
            raise FrameStoreError(f"unknown or already-released reference {ref}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FrameStore {self.device} {self.live_count}"
            f"+{self.retained_count}r/{self.capacity}>"
        )
