"""Device-local frame stores with reference counting.

The paper minimizes data copying by handing modules a *reference id* instead
of the frame: "The module code can use that id to do the modifications on
the image using the services and forward the frames to other modules" (§3).
:class:`FrameStore` implements that contract: frames (or any payload) are
parked once per device, co-located modules and services share them by
:class:`~repro.frames.frame.FrameRef`, and refcounts reclaim slots when the
last holder releases.
"""

from __future__ import annotations

import itertools
from typing import Any

from ..errors import FrameStoreError
from .frame import FrameRef


class FrameStore:
    """A per-device object store keyed by reference id."""

    def __init__(self, device: str, capacity: int = 256) -> None:
        if capacity < 1:
            raise FrameStoreError("capacity must be >= 1")
        self.device = device
        self.capacity = capacity
        self._ids = itertools.count(1)
        self._objects: dict[int, Any] = {}
        self._refcounts: dict[int, int] = {}
        # statistics for the ref-passing ablation
        self.stored_count = 0
        self.resolved_count = 0
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._objects)

    # -- core protocol -------------------------------------------------------
    def put(self, obj: Any) -> FrameRef:
        """Park *obj* and return a reference with refcount 1."""
        if len(self._objects) >= self.capacity:
            raise FrameStoreError(
                f"frame store on {self.device!r} full ({self.capacity} slots); "
                "a module is leaking references"
            )
        ref_id = next(self._ids)
        self._objects[ref_id] = obj
        self._refcounts[ref_id] = 1
        self.stored_count += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._objects))
        return FrameRef(self.device, ref_id)

    def get(self, ref: FrameRef) -> Any:
        """Resolve a reference to its object (no copy)."""
        self._check(ref)
        self.resolved_count += 1
        return self._objects[ref.ref_id]

    def add_ref(self, ref: FrameRef) -> FrameRef:
        """Take an additional hold on the object (fan-out to two modules)."""
        self._check(ref)
        self._refcounts[ref.ref_id] += 1
        return ref

    def release(self, ref: FrameRef) -> None:
        """Drop one hold; the object is reclaimed when the count hits zero."""
        self._check(ref)
        self._refcounts[ref.ref_id] -= 1
        if self._refcounts[ref.ref_id] == 0:
            del self._objects[ref.ref_id]
            del self._refcounts[ref.ref_id]

    def refcount(self, ref: FrameRef) -> int:
        self._check(ref)
        return self._refcounts[ref.ref_id]

    def contains(self, ref: FrameRef) -> bool:
        return ref.device == self.device and ref.ref_id in self._objects

    # -- helpers ---------------------------------------------------------------
    def _check(self, ref: FrameRef) -> None:
        if ref.device != self.device:
            raise FrameStoreError(
                f"reference {ref} belongs to device {ref.device!r}; this store"
                f" is on {self.device!r} — frame refs never cross devices"
            )
        if ref.ref_id not in self._objects:
            raise FrameStoreError(f"unknown or already-released reference {ref}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FrameStore {self.device} {len(self._objects)}/{self.capacity}>"
