"""Synthetic frame rendering and real pixel-domain analysis.

The renderer draws the subject's skeleton into a grayscale image — thick
anti-alias-free limbs plus a head disc over a noisy background — and the
analysis side recovers a foreground bounding box from *pixels alone*
(threshold + projection), which is the genuinely image-based part of the
pose service's work in rendered mode.
"""

from __future__ import annotations

import numpy as np

from ..motion.skeleton import KEYPOINT_INDEX, SKELETON_EDGES, Pose

#: Background gray level and noise amplitude.
BACKGROUND_LEVEL = 40
BACKGROUND_NOISE = 6
#: Foreground (subject) gray level.
FOREGROUND_LEVEL = 200


def _draw_segment(image: np.ndarray, p0: np.ndarray, p1: np.ndarray, thickness: float) -> None:
    """Paint all pixels within *thickness* of segment p0-p1 (vectorized)."""
    height, width = image.shape
    x_min = int(max(0, np.floor(min(p0[0], p1[0]) - thickness)))
    x_max = int(min(width - 1, np.ceil(max(p0[0], p1[0]) + thickness)))
    y_min = int(max(0, np.floor(min(p0[1], p1[1]) - thickness)))
    y_max = int(min(height - 1, np.ceil(max(p0[1], p1[1]) + thickness)))
    if x_min > x_max or y_min > y_max:
        return  # fully off-screen
    ys, xs = np.mgrid[y_min : y_max + 1, x_min : x_max + 1]
    points = np.stack([xs, ys], axis=-1).astype(np.float64)
    seg = p1 - p0
    seg_len2 = float(seg @ seg)
    if seg_len2 < 1e-12:
        dist = np.linalg.norm(points - p0, axis=-1)
    else:
        t = ((points - p0) @ seg) / seg_len2
        t = np.clip(t, 0.0, 1.0)
        nearest = p0 + t[..., None] * seg
        dist = np.linalg.norm(points - nearest, axis=-1)
    mask = dist <= thickness
    image[y_min : y_max + 1, x_min : x_max + 1][mask] = FOREGROUND_LEVEL


def render_pose(
    pose: Pose,
    width: int = 160,
    height: int = 120,
    rng: np.random.Generator | None = None,
    limb_thickness_frac: float = 0.018,
) -> np.ndarray:
    """Render a grayscale frame of *pose* (image coordinates) at the given
    resolution. ``pose`` may be in any pixel space; pass coordinates already
    scaled to (width, height)."""
    if rng is not None:
        noise = rng.integers(
            -BACKGROUND_NOISE, BACKGROUND_NOISE + 1, size=(height, width)
        )
        image = (BACKGROUND_LEVEL + noise).clip(0, 255).astype(np.uint8)
    else:
        image = np.full((height, width), BACKGROUND_LEVEL, dtype=np.uint8)

    thickness = max(1.0, limb_thickness_frac * max(width, height))
    keypoints = pose.keypoints
    for a, b in SKELETON_EDGES:
        if pose.visibility[a] and pose.visibility[b]:
            _draw_segment(image, keypoints[a], keypoints[b], thickness)
    # head: a disc at the nose, sized from the ear spread
    nose = keypoints[KEYPOINT_INDEX["nose"]]
    ears = keypoints[[KEYPOINT_INDEX["left_ear"], KEYPOINT_INDEX["right_ear"]]]
    radius = max(2.0, float(np.linalg.norm(ears[0] - ears[1])) * 0.7)
    _draw_segment(image, nose, nose, radius)
    return image


def scale_pose(pose: Pose, from_size: tuple[int, int], to_size: tuple[int, int]) -> Pose:
    """Rescale pose pixel coordinates between image resolutions."""
    sx = to_size[0] / from_size[0]
    sy = to_size[1] / from_size[1]
    keypoints = pose.keypoints * np.array([sx, sy])
    return Pose(keypoints, pose.visibility.copy())


def detect_foreground_bbox(
    image: np.ndarray, threshold: int = 120
) -> tuple[int, int, int, int] | None:
    """Find the bounding box of bright (foreground) pixels.

    Real image analysis: threshold, then project onto each axis. Returns
    (x0, y0, x1, y1) inclusive, or ``None`` when nothing exceeds the
    threshold (empty scene).
    """
    mask = image >= threshold
    if not mask.any():
        return None
    rows = np.flatnonzero(mask.any(axis=1))
    cols = np.flatnonzero(mask.any(axis=0))
    return (int(cols[0]), int(rows[0]), int(cols[-1]), int(rows[-1]))


def foreground_fraction(image: np.ndarray, threshold: int = 120) -> float:
    """Fraction of pixels above the foreground threshold."""
    return float((image >= threshold).mean())
