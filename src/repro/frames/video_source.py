"""The paced video source and its no-queue flow control.

The paper's data-flow rule (§2.3): *no queues inside the pipeline*. The
source holds exactly one credit; it sends a frame when it has credit, and
regains credit only when the final module signals completion. Camera frames
that arrive while the pipeline is busy are dropped **at the source**, wasting
no downstream computation.

``mode="push"`` disables the credit gate — every captured frame enters the
pipeline — which is the queued architecture the flow-control ablation
(`bench_ablation_flowcontrol.py`) measures against.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import ConfigError
from ..motion.exercises import MotionModel
from ..motion.skeleton import Pose
from ..motion.trajectory import SubjectParams, subject_pose
from ..sim.kernel import Kernel
from .frame import VideoFrame
from .synthetic import render_pose, scale_pose


class SyntheticCamera:
    """A frame factory: a subject performing a motion in front of a camera.

    In *annotated* mode frames carry only the ground-truth pose (fast; the
    pose service adds estimation noise and simulated compute). With
    ``render=True`` frames also carry real rendered pixels at
    ``render_size`` resolution, exercising the pixel path end to end.

    ``freeze=True`` models a **static scene** (an empty room, a parked
    subject): the content of the first capture is reused for every
    subsequent frame, so all frames are byte-identical in content while
    still carrying fresh ids and timestamps — the workload the frame-dedup
    and result-cache fast path is built for.
    """

    def __init__(
        self,
        device: str,
        motion: MotionModel,
        subject: SubjectParams | None = None,
        width: int = 640,
        height: int = 480,
        render: bool = False,
        render_size: tuple[int, int] = (160, 120),
        rng: np.random.Generator | None = None,
        freeze: bool = False,
    ) -> None:
        self.device = device
        self.motion = motion
        self.subject = subject or SubjectParams()
        self.width = width
        self.height = height
        self.render = render
        self.render_size = render_size
        self.rng = rng
        self.freeze = freeze
        self._frozen: tuple[Pose, np.ndarray | None] | None = None

    def _content_at(self, t: float) -> "tuple[Pose, np.ndarray | None]":
        truth = subject_pose(self.motion, self.subject, t)
        pixels = None
        if self.render:
            scaled = scale_pose(
                truth, (self.width, self.height), self.render_size
            )
            pixels = render_pose(
                scaled, self.render_size[0], self.render_size[1], rng=self.rng
            )
        return truth, pixels

    def set_resolution(self, width: int, height: int) -> None:
        """Change the capture resolution; takes effect on the next frame.

        The SLO controller's resolution rung degrades (and later restores)
        frame size through this — smaller frames shrink both the modelled
        JPEG wire size and the encode/decode compute charged per hop."""
        if width < 16 or height < 16:
            raise ConfigError("resolution must be at least 16x16")
        self.width = int(width)
        self.height = int(height)
        # a frozen scene rendered at the old size must not leak through
        self._frozen = None

    def capture(self, frame_id: int, t: float) -> VideoFrame:
        """Produce the frame the camera sees at simulated time *t*."""
        if self.freeze:
            if self._frozen is None:
                self._frozen = self._content_at(t)
            truth, pixels = self._frozen
        else:
            truth, pixels = self._content_at(t)
        return VideoFrame(
            frame_id=frame_id,
            source=self.device,
            capture_time=t,
            width=self.width,
            height=self.height,
            channels=3,
            pixels=pixels,
            truth=truth,
            metadata={"activity": self.motion.name},
        )


class VideoSource:
    """A kernel process that captures frames at a fixed rate and emits them
    through the credit gate.

    Args:
        kernel: the event kernel.
        camera: frame factory (anything with ``capture(frame_id, t)``).
        fps: camera capture rate.
        deliver: callback invoked with each frame admitted to the pipeline.
        mode: ``"signal"`` (paper: one credit, refilled by the sink) or
            ``"push"`` (no gate; the queued baseline).
        jitter_cv: coefficient of variation on the inter-frame interval.
        rng: RNG for capture jitter (required if ``jitter_cv > 0``).
        credit_timeout_s: optional watchdog — if the sink's ready signal is
            lost (a crashed module, a mid-flight migration), regenerate the
            credit after this many seconds instead of stalling forever.
            ``None`` (default) is the paper's pure protocol.
        on_drop: callback invoked with each frame dropped at the source
            (buffered frame replaced by a fresher capture, or discarded by
            the watchdog). Lets the pipeline account for frames that never
            complete — only frames the pipeline has *seen* matter, so most
            sources leave this unset; the streaming module wires it to
            frame accounting.
    """

    def __init__(
        self,
        kernel: Kernel,
        camera: SyntheticCamera | Callable[[int, float], VideoFrame],
        fps: float,
        deliver: Callable[[VideoFrame], None],
        mode: str = "signal",
        jitter_cv: float = 0.0,
        rng: np.random.Generator | None = None,
        credit_timeout_s: float | None = None,
        on_drop: Callable[[VideoFrame], None] | None = None,
    ) -> None:
        if fps <= 0:
            raise ConfigError("fps must be positive")
        if mode not in ("signal", "push"):
            raise ConfigError(f"unknown flow mode {mode!r}")
        if jitter_cv > 0 and rng is None:
            raise ConfigError("jitter requires an rng")
        self.kernel = kernel
        self.camera = camera
        self.fps = fps
        self.deliver = deliver
        if credit_timeout_s is not None and credit_timeout_s <= 0:
            raise ConfigError("credit_timeout_s must be positive")
        self.mode = mode
        self.jitter_cv = jitter_cv
        self.rng = rng
        self.credit_timeout_s = credit_timeout_s
        self.on_drop = on_drop
        self._credits = 1
        self._pending: VideoFrame | None = None
        self._last_emit_at = 0.0
        self._running = False
        self._paused = False
        # statistics
        self.captured_count = 0
        self.emitted_count = 0
        self.dropped_count = 0
        self.watchdog_recoveries = 0

    # -- control ---------------------------------------------------------------
    def start(self, duration_s: float | None = None, max_frames: int | None = None) -> None:
        """Begin capturing; stops after *duration_s* or *max_frames*."""
        if self._running:
            raise ConfigError("source already started")
        self._running = True
        self.kernel.process(
            self._capture_loop(duration_s, max_frames), name="video-source"
        )

    def stop(self) -> None:
        self._running = False

    def set_fps(self, fps: float) -> None:
        """Change the capture rate; takes effect from the next tick (the
        loop re-reads ``fps`` every interval)."""
        if fps <= 0:
            raise ConfigError("fps must be positive")
        self.fps = float(fps)

    @property
    def paused(self) -> bool:
        return self._paused

    def set_paused(self, paused: bool) -> None:
        """Pause (or resume) capture without tearing the loop down.

        While paused the loop keeps ticking but captures nothing, so no
        frames enter the pipeline and no source drops accrue; resuming
        restarts capture on the next tick. This is the SLO controller's
        last-resort 'drop the pipeline' rung — reversible, unlike
        :meth:`stop`. Paused time still counts toward ``duration_s``."""
        self._paused = bool(paused)

    def grant_credit(self) -> None:
        """The sink's 'done, send the next frame' signal (§2.3).

        If a fresher camera frame is already buffered, it enters the
        pipeline immediately (the camera runs ahead of the pipeline at high
        source rates — throughput tracks pipeline latency, not the capture
        tick). Otherwise one credit is stored for the next capture. Credit
        is capped at one, keeping at most one frame in flight.
        """
        if self._pending is not None:
            frame, self._pending = self._pending, None
            self._emit(frame)
        else:
            self._credits = 1

    def _emit(self, frame: VideoFrame) -> None:
        self.emitted_count += 1
        self._last_emit_at = self.kernel.now
        self.deliver(frame)

    def _drop(self, frame: VideoFrame) -> None:
        self.dropped_count += 1
        if self.on_drop is not None:
            self.on_drop(frame)

    @property
    def drop_rate(self) -> float:
        """Fraction of captured frames dropped at the source."""
        if self.captured_count == 0:
            return 0.0
        return self.dropped_count / self.captured_count

    # -- engine ------------------------------------------------------------------
    def _interval(self) -> float:
        base = 1.0 / self.fps
        if self.jitter_cv <= 0:
            return base
        # mild capture jitter, clipped to stay causal
        assert self.rng is not None
        return max(base * 0.25, float(self.rng.normal(base, base * self.jitter_cv)))

    def _capture_loop(self, duration_s: float | None, max_frames: int | None):
        start_time = self.kernel.now
        frame_id = 0
        while self._running:
            elapsed = self.kernel.now - start_time
            if duration_s is not None and elapsed >= duration_s - 1e-9:
                break
            if self._paused:
                # keep ticking (cheaply, without consuming jitter draws) so
                # resume takes effect within one base interval
                yield 1.0 / self.fps
                continue
            if max_frames is not None and frame_id >= max_frames:
                break
            frame_id += 1
            capture = getattr(self.camera, "capture", self.camera)
            frame = capture(frame_id, self.kernel.now)
            self.captured_count += 1
            if (
                self.mode == "signal"
                and self.credit_timeout_s is not None
                and self._credits == 0
                and self.emitted_count > 0
                and self.kernel.now - self._last_emit_at >= self.credit_timeout_s
            ):
                # the ready signal was lost downstream: regenerate the
                # credit rather than stall the pipeline forever; the frame
                # just captured supersedes anything buffered
                self.watchdog_recoveries += 1
                self._credits = 1
                if self._pending is not None:
                    stale, self._pending = self._pending, None
                    self._drop(stale)
            if self.mode == "push":
                self._emit(frame)
            elif self._credits > 0:
                self._credits -= 1
                self._emit(frame)
            else:
                # no credit: buffer the freshest frame; the one it replaces
                # is dropped at the source (§2.3)
                if self._pending is not None:
                    self._drop(self._pending)
                self._pending = frame
            yield self._interval()
        self._running = False
