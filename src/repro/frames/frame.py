"""Video frames and frame references.

A :class:`VideoFrame` is what the camera produces: pixel data (optional in
annotated mode), capture metadata, and — because our camera is synthetic —
the ground-truth pose used to generate it. A :class:`FrameRef` is the small
token modules pass around *instead of* the frame when they are co-located,
the paper's "rather than copying the full image frames to the module, we
pass on a reference id" design (§3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..motion.skeleton import Pose


@dataclass(slots=True)
class VideoFrame:
    """One captured frame.

    Attributes:
        frame_id: monotone id assigned by the source.
        source: name of the producing device/camera.
        capture_time: simulated capture timestamp (seconds).
        width/height/channels: image geometry.
        pixels: the image as a (height, width) or (height, width, channels)
            uint8 array, or ``None`` in annotated (render-free) mode.
        truth: ground-truth pose of the subject in image coordinates, if a
            subject is in view (synthetic camera annotation).
        metadata: free-form extras (exercise label, subject id, ...).
    """

    frame_id: int
    source: str
    capture_time: float
    width: int = 640
    height: int = 480
    channels: int = 3
    pixels: np.ndarray | None = None
    truth: Pose | None = None
    metadata: dict[str, Any] = field(default_factory=dict)
    #: Memoized ``(digest_hex, pixels_identity)`` pair maintained by
    #: :mod:`repro.frames.digest` — excluded from equality/repr so caching
    #: never changes frame semantics. Identity of the pixels array is part
    #: of the key, so swapping in a new array invalidates automatically;
    #: *in-place* pixel mutation must call :meth:`invalidate_digest`.
    _digest_cache: "tuple[str, int | None] | None" = field(
        default=None, repr=False, compare=False
    )

    def invalidate_digest(self) -> None:
        """Drop the memoized content digest after mutating ``pixels``,
        ``truth`` or ``metadata`` in place."""
        self._digest_cache = None

    @property
    def raw_size(self) -> int:
        """Uncompressed size in bytes."""
        return self.width * self.height * self.channels

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        rendered = "rendered" if self.pixels is not None else "annotated"
        return (
            f"<VideoFrame #{self.frame_id} {self.width}x{self.height}"
            f" t={self.capture_time:.3f} {rendered}>"
        )


@dataclass(frozen=True, slots=True)
class FrameRef:
    """A reference id standing in for a frame stored in a device-local
    :class:`~repro.frames.framestore.FrameStore`.

    Only a few dozen bytes on the wire (vs hundreds of KB for the frame),
    but only resolvable on the device that holds the store.
    """

    device: str
    ref_id: int

    #: Wire-size hint consumed by :func:`repro.net.wire.payload_size`.
    @property
    def wire_size(self) -> int:
        return 24

    def __str__(self) -> str:
        return f"frame-ref:{self.device}/{self.ref_id}"
