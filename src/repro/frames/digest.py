"""Cheap content digests for frames and service payloads.

Static scenes dominate real camera feeds: consecutive frames are often
byte-identical in *content* even though each capture gets a fresh frame id
and timestamp. A content digest makes that redundancy actionable — the
frame store uses it to collapse byte-identical frames into one stored
object (dedup), and the service layer uses it to key a result cache so a
repeated frame skips inference entirely.

A digest deliberately covers only what inference sees: geometry, pixels,
the annotated ground-truth pose, and metadata. Capture bookkeeping
(``frame_id``, ``capture_time``) is excluded — two frames of the same
scene hash equal no matter when they were taken.

:func:`content_digest` returns ``None`` for objects it cannot hash
deterministically; callers treat those as unique (never deduped, never
cached).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Callable

import numpy as np

from ..motion.skeleton import Pose
from .codec import EncodedFrame
from .frame import FrameRef, VideoFrame

#: blake2b digest width; 16 bytes is collision-safe for any plausible
#: number of in-flight frames and keeps keys short.
DIGEST_BYTES = 16

#: Recently hashed pixel planes, keyed by array identity with a strong
#: reference held so the id cannot be recycled while cached. Static scenes
#: freeze one pixels array and stamp it into every capture, so without this
#: the dedup path re-hashes the identical plane once per frame — the
#: dominant cost of ``content_digest``. Bounded small: entries pin arrays.
_PLANE_CACHE_LIMIT = 8
_plane_cache: "OrderedDict[int, tuple[np.ndarray, str]]" = OrderedDict()


def _plane_digest(arr: np.ndarray) -> str:
    """Digest of one pixel plane, memoized by array identity."""
    key = id(arr)
    entry = _plane_cache.get(key)
    if entry is not None and entry[0] is arr:
        _plane_cache.move_to_end(key)
        return entry[1]
    hasher = hashlib.blake2b(digest_size=DIGEST_BYTES)
    _feed_array(hasher, arr)
    digest = hasher.hexdigest()
    _plane_cache[key] = (arr, digest)
    while len(_plane_cache) > _PLANE_CACHE_LIMIT:
        _plane_cache.popitem(last=False)
    return digest

#: Optional resolver mapping a FrameRef leaf to the digest of the object it
#: points at (the frame store provides this); without one, payloads
#: containing refs are undigestable.
RefResolver = Callable[[FrameRef], "str | None"]


def _feed_array(hasher, arr: np.ndarray) -> None:
    hasher.update(str(arr.dtype).encode())
    hasher.update(str(arr.shape).encode())
    hasher.update(np.ascontiguousarray(arr).tobytes())


def _feed(hasher, obj: Any, resolve_ref: RefResolver | None) -> bool:
    """Feed *obj* into *hasher*; False means the object is undigestable."""
    if obj is None:
        hasher.update(b"\x00N")
        return True
    if isinstance(obj, bool):
        hasher.update(b"\x00b1" if obj else b"\x00b0")
        return True
    if isinstance(obj, (int, float, np.integer, np.floating)):
        hasher.update(b"\x00n" + repr(obj).encode())
        return True
    if isinstance(obj, str):
        hasher.update(b"\x00s" + obj.encode())
        return True
    if isinstance(obj, bytes):
        hasher.update(b"\x00y" + obj)
        return True
    if isinstance(obj, np.ndarray):
        hasher.update(b"\x00a")
        _feed_array(hasher, obj)
        return True
    if isinstance(obj, Pose):
        hasher.update(b"\x00p")
        _feed_array(hasher, np.asarray(obj.keypoints))
        _feed_array(hasher, np.asarray(obj.visibility))
        return True
    if isinstance(obj, VideoFrame):
        digest = _frame_digest(obj, resolve_ref)
        if digest is None:
            return False
        hasher.update(b"\x00F" + digest.encode())
        return True
    if isinstance(obj, EncodedFrame):
        # the quantized carried frame *is* the wire content; quality matters
        # because different qualities decode to different pixels
        hasher.update(b"\x00E" + str(obj.quality).encode())
        return _feed(hasher, obj.frame, resolve_ref)
    if isinstance(obj, FrameRef):
        if resolve_ref is None:
            return False
        digest = resolve_ref(obj)
        if digest is None:
            return False
        hasher.update(b"\x00r" + digest.encode())
        return True
    if isinstance(obj, dict):
        hasher.update(b"\x00d")
        try:
            items = sorted(obj.items())
        except TypeError:
            return False
        for key, value in items:
            if not _feed(hasher, key, resolve_ref):
                return False
            if not _feed(hasher, value, resolve_ref):
                return False
        return True
    if isinstance(obj, (list, tuple)):
        hasher.update(b"\x00l" if isinstance(obj, list) else b"\x00t")
        for item in obj:
            if not _feed(hasher, item, resolve_ref):
                return False
        return True
    return False  # arbitrary object: no stable byte representation


def _frame_digest(
    frame: VideoFrame, resolve_ref: RefResolver | None
) -> str | None:
    """Digest of one frame's content, memoized on the frame object.

    The cache pairs the digest with the identity of the pixels array it was
    computed over: replacing ``frame.pixels`` invalidates automatically,
    while in-place mutation requires
    :meth:`~repro.frames.frame.VideoFrame.invalidate_digest`.
    """
    pixels_key = id(frame.pixels) if frame.pixels is not None else None
    cached = frame._digest_cache
    if cached is not None and cached[1] == pixels_key:
        return cached[0]
    hasher = hashlib.blake2b(digest_size=DIGEST_BYTES)
    hasher.update(f"{frame.width}x{frame.height}x{frame.channels}".encode())
    if frame.pixels is not None:
        hasher.update(b"\x00a" + _plane_digest(frame.pixels).encode())
    else:
        hasher.update(b"-")
    if frame.truth is not None and not _feed(hasher, frame.truth, resolve_ref):
        return None
    if not _feed(hasher, frame.metadata, resolve_ref):
        return None
    digest = hasher.hexdigest()
    frame._digest_cache = (digest, pixels_key)
    return digest


def content_digest(
    obj: Any, resolve_ref: RefResolver | None = None
) -> str | None:
    """Hex digest of *obj*'s content, or ``None`` if undigestable.

    Byte-identical content (pixels, poses, arrays, nested containers)
    digests equal; ``frame_id`` and ``capture_time`` are excluded so
    repeated captures of a static scene collide on purpose.
    """
    hasher = hashlib.blake2b(digest_size=DIGEST_BYTES)
    if _feed(hasher, obj, resolve_ref):
        return hasher.hexdigest()
    return None
