"""JPEG-like frame codec: size and compute-cost models plus a real
pixel-domain round trip.

The paper ships JPEG-encoded frames between devices over ZeroMQ. Simulated
transfers need two numbers — the compressed size (what the link charges) and
the encode/decode CPU time (what the device charges). Both come from simple
published-shape models of libjpeg behaviour, calibrated so a VGA frame at
quality 80 is ≈45 KB, which matches the Wi-Fi airtime implicit in Fig. 6.

When a frame actually carries pixels, :func:`encode_frame` also performs a
real lossy round trip (block-DCT-free but faithful in spirit: chroma-less
quantization), so tests can verify content survives a codec boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .frame import VideoFrame

#: Per-pixel JPEG encode cost on the devices' hardware codec blocks.
ENCODE_NS_PER_PIXEL = 10.0
#: Decode is roughly 60% of encode cost.
DECODE_NS_PER_PIXEL = 6.0


def jpeg_bits_per_pixel(quality: int) -> float:
    """Approximate libjpeg output density for photographic content.

    Monotone in quality; ≈1.26 bpp at quality 80, ≈0.55 at quality 40.
    """
    if not 1 <= quality <= 100:
        raise ValueError(f"quality must be in [1, 100], got {quality}")
    q = quality / 100.0
    return 0.22 + 1.5 * (q ** 1.7)


def jpeg_size_model(width: int, height: int, quality: int) -> int:
    """Expected compressed size in bytes (plus fixed header overhead)."""
    return int(width * height * jpeg_bits_per_pixel(quality) / 8.0) + 600


@dataclass(slots=True)
class EncodedFrame:
    """A compressed frame as it travels on the wire.

    Carries the (possibly quantized) source frame by reference so the
    simulator does not copy pixel buffers, plus the size/cost numbers the
    transports and CPUs charge.
    """

    frame: VideoFrame
    quality: int
    wire_size: int
    encode_cost_s: float
    decode_cost_s: float

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<EncodedFrame #{self.frame.frame_id} q={self.quality}"
            f" {self.wire_size}B>"
        )


def _quantize(pixels: np.ndarray, quality: int) -> np.ndarray:
    """A real lossy quantization: coarser levels at lower quality."""
    levels = max(2, int(4 + quality * 2.2))  # q=80 -> 180 levels; q=10 -> 26
    step = 256.0 / levels
    return (np.floor(pixels / step) * step + step / 2.0).clip(0, 255).astype(np.uint8)


def encode_frame(frame: VideoFrame, quality: int = 80) -> EncodedFrame:
    """Compress *frame*; pixel-bearing frames get genuinely quantized."""
    size = jpeg_size_model(frame.width, frame.height, quality)
    pixel_count = frame.width * frame.height
    encoded_pixels = None
    if frame.pixels is not None:
        encoded_pixels = _quantize(frame.pixels, quality)
    carried = VideoFrame(
        frame_id=frame.frame_id,
        source=frame.source,
        capture_time=frame.capture_time,
        width=frame.width,
        height=frame.height,
        channels=frame.channels,
        pixels=encoded_pixels,
        truth=frame.truth,
        metadata=dict(frame.metadata),
    )
    return EncodedFrame(
        frame=carried,
        quality=quality,
        wire_size=size,
        encode_cost_s=pixel_count * ENCODE_NS_PER_PIXEL * 1e-9,
        decode_cost_s=pixel_count * DECODE_NS_PER_PIXEL * 1e-9,
    )


def decode_frame(encoded: EncodedFrame) -> VideoFrame:
    """Decompress back to a :class:`VideoFrame` (lossy if pixels present)."""
    return encoded.frame


def psnr(original: np.ndarray, degraded: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB between two uint8 images."""
    if original.shape != degraded.shape:
        raise ValueError("images must have identical shapes")
    mse = float(np.mean((original.astype(np.float64) - degraded.astype(np.float64)) ** 2))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0 ** 2 / mse)
