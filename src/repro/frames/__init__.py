"""Frames: capture, compression, storage-by-reference, and pacing."""

from .arena import (
    EVICTED,
    MIGRATED,
    RELEASED,
    ArenaHandle,
    FrameArena,
)
from .codec import (
    DECODE_NS_PER_PIXEL,
    ENCODE_NS_PER_PIXEL,
    EncodedFrame,
    decode_frame,
    encode_frame,
    jpeg_bits_per_pixel,
    jpeg_size_model,
    psnr,
)
from .digest import content_digest
from .frame import FrameRef, VideoFrame
from .framestore import FrameStore
from .synthetic import (
    detect_foreground_bbox,
    foreground_fraction,
    render_pose,
    scale_pose,
)
from .video_source import SyntheticCamera, VideoSource

__all__ = [
    "ArenaHandle",
    "DECODE_NS_PER_PIXEL",
    "ENCODE_NS_PER_PIXEL",
    "EVICTED",
    "EncodedFrame",
    "FrameArena",
    "MIGRATED",
    "RELEASED",
    "FrameRef",
    "FrameStore",
    "SyntheticCamera",
    "VideoFrame",
    "VideoSource",
    "content_digest",
    "decode_frame",
    "detect_foreground_bbox",
    "encode_frame",
    "foreground_fraction",
    "jpeg_bits_per_pixel",
    "jpeg_size_model",
    "psnr",
    "render_pose",
    "scale_pose",
]
