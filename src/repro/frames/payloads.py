"""Payload transformations at device and service boundaries.

Module and service payloads are plain dicts/lists whose leaves may include
:class:`~repro.frames.frame.FrameRef` tokens. Three boundary operations
exist, matching the paper's minimal-copy design:

* **borrow** (:func:`resolve_refs`) — a co-located service resolves refs to
  the stored frames with zero copies;
* **ship** (:func:`encode_refs_for_wire`) — before a payload crosses devices,
  each ref is materialized and JPEG-encoded (the only place pixels are
  copied), and the local hold is released (ownership moves);
* **land** (:func:`decode_frames_from_wire`) — on arrival, encoded frames are
  decoded into the receiving device's store and replaced by fresh local refs.

Each shipping/landing operation reports the codec CPU cost so callers can
charge the device.
"""

from __future__ import annotations

from typing import Any, Callable

from .arena import MIGRATED, RELEASED
from .codec import EncodedFrame, decode_frame, encode_frame
from .frame import FrameRef, VideoFrame
from .framestore import FrameStore

#: Default JPEG quality for inter-device frame shipping.
WIRE_QUALITY = 80


def map_leaves(payload: Any, fn: Callable[[Any], Any]) -> Any:
    """Rebuild *payload* with every non-container leaf passed through *fn*.

    Containers (dict/list/tuple) are walked recursively; everything else is
    a leaf. Dicts keep their keys.
    """
    if isinstance(payload, dict):
        return {key: map_leaves(value, fn) for key, value in payload.items()}
    if isinstance(payload, list):
        return [map_leaves(item, fn) for item in payload]
    if isinstance(payload, tuple):
        return tuple(map_leaves(item, fn) for item in payload)
    return fn(payload)


def iter_leaves(payload: Any):
    """Yield every non-container leaf of *payload* without rebuilding it.

    The read-only companion to :func:`map_leaves`: an explicit-stack walk
    that allocates nothing per node, so scans (``frame_refs_in``,
    ``contains_type``) stop costing a full tree copy per hop.
    """
    stack = [payload]
    while stack:
        node = stack.pop()
        if isinstance(node, dict):
            stack.extend(node.values())
        elif isinstance(node, (list, tuple)):
            stack.extend(node)
        else:
            yield node


def contains_type(payload: Any, leaf_type: type) -> bool:
    """True when any leaf is an instance of *leaf_type* (early exit — the
    cheap pre-scan that lets boundary ops skip the rebuild entirely)."""
    for leaf in iter_leaves(payload):
        if isinstance(leaf, leaf_type):
            return True
    return False


def collect_leaves(payload: Any, predicate: Callable[[Any], bool]) -> list[Any]:
    """All leaves for which *predicate* holds, in traversal order."""
    if isinstance(payload, dict):
        found: list[Any] = []
        stack: list[Any] = list(reversed(list(payload.values())))
    elif isinstance(payload, (list, tuple)):
        found = []
        stack = list(reversed(payload))
    elif predicate(payload):
        return [payload]
    else:
        return []
    while stack:
        node = stack.pop()
        if isinstance(node, dict):
            stack.extend(reversed(list(node.values())))
        elif isinstance(node, (list, tuple)):
            stack.extend(reversed(node))
        elif predicate(node):
            found.append(node)
    return found


def frame_refs_in(payload: Any) -> list[FrameRef]:
    """Every :class:`FrameRef` appearing in the payload."""
    return collect_leaves(payload, lambda leaf: isinstance(leaf, FrameRef))


def frame_ids_in(payload: Any) -> list[int]:
    """Every distinct ``frame_id`` appearing in the payload, in traversal
    order.

    Frame identity travels as a ``"frame_id"`` key in payload dicts — at
    the top level for simple module messages, nested for batched or
    enveloped payloads (``{"batch": [{"frame_id": ...}, ...]}``). Drop
    paths (mailbox drains, dead letters, migration salvage) must account
    *every* frame a payload carried, so this walks containers the same way
    :func:`release_refs` walks for refs rather than peeking only at the
    top-level dict.
    """
    ids: list[int] = []
    seen: set[int] = set()
    stack = [payload]
    while stack:
        node = stack.pop()
        if isinstance(node, dict):
            frame_id = node.get("frame_id")
            if isinstance(frame_id, int) and frame_id not in seen:
                seen.add(frame_id)
                ids.append(frame_id)
            stack.extend(node.values())
        elif isinstance(node, (list, tuple)):
            stack.extend(node)
    return ids


def resolve_refs(payload: Any, store: FrameStore) -> Any:
    """Borrow: replace refs with the stored objects (no copy, no release).

    Frame-free payloads are returned as-is (identity, no rebuild)."""
    if not contains_type(payload, FrameRef):
        return payload

    def resolve(leaf: Any) -> Any:
        if isinstance(leaf, FrameRef):
            return store.get(leaf)
        return leaf

    return map_leaves(payload, resolve)


def encode_refs_for_wire(
    payload: Any, store: FrameStore, quality: int = WIRE_QUALITY,
    release: bool = True,
) -> tuple[Any, float, int]:
    """Ship: materialize and encode every ref.

    ``release=True`` (module→module sends) drops the local hold — ownership
    moves with the message. ``release=False`` (remote *service* calls)
    keeps the caller's hold — service calls only borrow.

    Returns ``(wire_payload, total_encode_cost_s, frames_shipped)``. Refs to
    non-frame objects are shipped as-is (they are plain values). Frame-free
    payloads short-circuit: the payload is returned unchanged at zero cost.
    """
    if not contains_type(payload, FrameRef):
        return payload, 0.0, 0
    total_cost = 0.0
    shipped = 0

    def ship(leaf: Any) -> Any:
        nonlocal total_cost, shipped
        if isinstance(leaf, FrameRef):
            obj = store.get(leaf)
            if release:
                # ownership moves with the message: the frame is migrating
                # off-device, and any handle left behind must say so
                store.release(leaf, reason=MIGRATED)
            if isinstance(obj, VideoFrame):
                encoded = encode_frame(obj, quality=quality)
                total_cost += encoded.encode_cost_s
                shipped += 1
                return encoded
            return obj
        return leaf

    return map_leaves(payload, ship), total_cost, shipped


def decode_frames_from_wire(
    payload: Any, store: FrameStore
) -> tuple[Any, float, int]:
    """Land: decode arriving frames into the local store, yielding new refs.

    Returns ``(local_payload, total_decode_cost_s, frames_landed)``.
    Payloads with no encoded frames (every intra-device hop) short-circuit
    to identity at zero cost.
    """
    if not contains_type(payload, EncodedFrame):
        return payload, 0.0, 0
    total_cost = 0.0
    landed = 0

    def land(leaf: Any) -> Any:
        nonlocal total_cost, landed
        if isinstance(leaf, EncodedFrame):
            total_cost += leaf.decode_cost_s
            landed += 1
            return store.put(decode_frame(leaf))
        return leaf

    return map_leaves(payload, land), total_cost, landed


def decode_frames_inline(payload: Any) -> tuple[Any, float]:
    """Land without a store: decode arriving frames to bare
    :class:`VideoFrame` objects (used by remote service calls, where the
    frame is consumed immediately and never re-referenced)."""
    if not contains_type(payload, EncodedFrame):
        return payload, 0.0
    total_cost = 0.0

    def land(leaf: Any) -> Any:
        nonlocal total_cost
        if isinstance(leaf, EncodedFrame):
            total_cost += leaf.decode_cost_s
            return decode_frame(leaf)
        return leaf

    return map_leaves(payload, land), total_cost


def release_refs(
    payload: Any, store: FrameStore, reason: str = RELEASED
) -> int:
    """Release every ref in *payload* held in *store*; returns the count.

    *reason* labels the arena-slot retirement when the store is
    arena-backed: migration drains pass
    :data:`~repro.frames.arena.MIGRATED` so a stale handle kept across the
    move reports use-after-migrate, not double-release.
    """
    count = 0
    for ref in frame_refs_in(payload):
        if ref.device == store.device:
            store.release(ref, reason=reason)
            count += 1
    return count


def add_refs(payload: Any, store: FrameStore) -> int:
    """Take an extra hold on every local ref in *payload* (fan-out)."""
    count = 0
    for ref in frame_refs_in(payload):
        if ref.device == store.device:
            store.add_ref(ref)
            count += 1
    return count
