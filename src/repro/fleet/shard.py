"""Sharded fleet execution: one simulation kernel per worker process.

A 1000-home fleet in one kernel is a single Python process grinding one
event heap — metro-scale runs need the machine's cores. The shard runner
partitions the fleet's global home indices over ``FleetConfig.shards``
worker processes (home *i* goes to shard ``i % shards``, stable as the
fleet grows), runs an ordinary :class:`~repro.fleet.harness.Fleet` with a
private kernel in each worker, ships the picklable per-home results back,
and merges them through the same :func:`~repro.fleet.harness.
aggregate_report` the single-kernel path uses.

The merge is *equivalence-preserving*, not approximate: homes never share
simulation state (each has its own topology, registry and string-keyed RNG
streams, and per-home seeds derive from the global index), so a home's
results are identical whichever kernel runs it, and the merged report
matches a ``shards=1`` run bit for bit up to the shard provenance fields.
``tests/fleet/test_shard.py`` pins this for shard counts {1, 2, 4}.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from ..errors import FleetShardError
from .harness import Fleet, FleetConfig, FleetReport, HomeResult, aggregate_report

#: Test hook: set to a shard index (as a string) to make that worker raise,
#: exercising the coordinator's failure path without a real crash.
FAIL_SHARD_ENV = "_REPRO_FLEET_FAIL_SHARD"


def shard_assignment(homes: int, shards: int) -> dict[int, list[int]]:
    """Global home index -> shard map: home *i* goes to shard ``i % shards``.

    Round-robin keeps the assignment stable under fleet growth — adding
    homes never moves an existing home to a different shard, so cached
    per-shard artifacts stay valid. Shards with no homes (``shards >
    homes``) get an empty list and no worker."""
    assignment: dict[int, list[int]] = {shard: [] for shard in range(shards)}
    for index in range(homes):
        assignment[index % shards].append(index)
    return assignment


@dataclass(slots=True)
class ShardResult:
    """What one worker ships back: its shard id and the per-home results
    for the global indices it ran. Plain picklable data."""

    shard: int
    home_indices: list[int]
    results: list[HomeResult] = field(default_factory=list)


def _run_shard_worker(
    config: FleetConfig, shard: int, home_indices: list[int]
) -> ShardResult:
    """Worker entry point: build and run this shard's slice of the fleet
    on a private kernel. Module-level so it pickles under spawn too."""
    if os.environ.get(FAIL_SHARD_ENV) == str(shard):
        raise RuntimeError(f"injected fault in shard {shard}")
    fleet = Fleet(config, home_indices=home_indices)
    fleet.run()
    return ShardResult(
        shard=shard,
        home_indices=home_indices,
        results=fleet.home_results(shard=shard),
    )


class FleetShardRunner:
    """Coordinator: fan a fleet out over worker processes, merge reports.

    ``run()`` is the whole lifecycle — spawn ``config.shards`` workers
    (never more than there are non-empty shards), wait for all per-shard
    results, and fold them into one :class:`FleetReport`. A worker that
    raises or dies aborts the run with :class:`~repro.errors.
    FleetShardError` naming the shard, rather than hanging on the
    remaining futures or surfacing a bare pickle traceback.
    """

    def __init__(self, config: FleetConfig) -> None:
        self.config = config
        self.assignment = shard_assignment(config.homes, config.shards)

    def run(self) -> FleetReport:
        occupied = {s: idx for s, idx in self.assignment.items() if idx}
        if len(occupied) <= 1:
            # one (or zero) occupied shards: a worker process buys nothing,
            # run in-process on the same code path the workers use
            results: list[HomeResult] = []
            for shard, indices in occupied.items():
                results.extend(_run_shard_worker(
                    self.config, shard, indices
                ).results)
            return self._merge(results)
        # fork shares the warmed-up interpreter (module registry included);
        # fall back to the platform default where fork is unavailable
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        results = []
        with ProcessPoolExecutor(
            max_workers=len(occupied), mp_context=context
        ) as pool:
            futures = {
                pool.submit(_run_shard_worker, self.config, shard, indices):
                    shard
                for shard, indices in occupied.items()
            }
            done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
            for future in done:
                shard = futures[future]
                error = future.exception()
                if error is not None:
                    for pending in not_done:
                        pending.cancel()
                    raise FleetShardError(
                        f"shard {shard} "
                        f"({len(occupied[shard])} homes) failed: {error}",
                        shard=shard,
                    ) from error
                results.extend(future.result().results)
        return self._merge(results)

    def _merge(self, results: list[HomeResult]) -> FleetReport:
        return aggregate_report(
            self.config,
            results,
            shards=self.config.shards,
            shard_homes={
                shard: len(indices)
                for shard, indices in self.assignment.items()
                if indices
            },
        )
