"""Fleet-scale workload harness: N homes in ONE simulation kernel.

The ROADMAP's north star is scale — placement quality claims made on one
home say nothing about a fleet of heterogeneous ones. This harness
instantiates ``FleetConfig.homes`` independent :class:`VideoPipe` homes on
a single shared :class:`~repro.sim.kernel.Kernel` (one clock, one event
heap), each with its own seeded device mix, services and pipeline, runs
them concurrently, and aggregates fleet-level metrics: p50/p99 end-to-end
latency, drop rate, migration and replan counts, cloud egress and $/home.

Everything is deterministic under ``FleetConfig.seed``: device mixes and
frame rates come from per-home ``random.Random`` streams derived from it,
and each home's own RNG seed comes from an independent ``(seed, index)``
string stream (:func:`home_seed`). Homes never interact through shared
simulation state — each has its own topology, registry and RNG streams —
so a home's results depend only on ``(seed, index)``, never on which other
homes share its kernel. That independence is what makes the sharded runner
(:mod:`repro.fleet.shard`) merge-equivalent: any partition of the homes
across worker-process kernels reproduces the single-kernel report bit for
bit (``docs/FLEET.md``).
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass, field

from ..core.videopipe import VideoPipe
from ..devices.catalog import make_spec
from ..errors import ConfigError
from ..metrics.stats import Summary, summarize
from ..net.link import LinkSpec
from ..pipeline.optimizer import (
    OPTIMIZED,
    CloudPricing,
    OptimizerConfig,
    plan_optimized,
)
from ..pipeline.pipeline import Pipeline
from ..pipeline.placement import COLOCATED, SINGLE_HOST
from ..pipeline.scheduler import COST_OPTIMIZED
from ..services.balancer import COST_AWARE
from ..sim.kernel import Kernel
from ..slo.spec import SLO, SLOConfig, attainment as slo_attainment_score
from .workload import (
    home_device_kinds,
    home_pipeline_config,
    install_cloud_services,
    install_home_services,
    install_scene_home_services,
    scene_home_pipeline_config,
)

STRATEGIES = (COLOCATED, SINGLE_HOST, COST_OPTIMIZED, OPTIMIZED)

#: Per-home application shapes the harness can run: the linear ``stage``
#: DAG (camera → detect → classify → alert → sink) or the fan-in ``scene``
#: DAG (rig → two camera-track branches → fusion sink).
WORKLOADS = ("stage", "scene")


def home_seed(master_seed: int, index: int) -> int:
    """Home *index*'s RNG seed under *master_seed*.

    Derived through an independent string-keyed stream (the same idiom as
    the per-home mix RNG) rather than an affine function: the old
    ``seed + 101 * index`` made home *i* under master seed *s* identical
    to home *i - 1* under seed *s + 101*, so fleet-level seed-sensitivity
    claims were false. ``random.Random`` seeds strings via SHA-512, so the
    value is stable across processes and hash seeds — shard workers derive
    the same home seeds as the single-kernel path.
    """
    return random.Random(f"fleet/home-seed/{master_seed}/{index}").getrandbits(63)


@dataclass(frozen=True, slots=True)
class FleetConfig:
    """Shape of one fleet run.

    Attributes:
        homes: number of homes in the fleet (the bench uses 50 per kernel).
        seed: master seed; the whole fleet is deterministic under it.
        strategy: placement strategy for every home's pipeline.
        fps_choices: per-home frame rate, drawn from this tuple.
        duration_s: camera capture duration per home.
        tail_s: extra simulated seconds after capture ends, letting
            in-flight frames drain before metrics are read.
        shards: worker processes to spread the homes over. 1 (default)
            runs every home in this process on one kernel; more hands
            ``index % shards`` slices to :class:`~repro.fleet.shard.
            FleetShardRunner`, one kernel per worker, with per-home
            results merged into one report. Per-home results are
            bit-identical for every shard count.
        cloud: attach the shared cloud tier: every home gets a ``cloud``
            device behind a metered WAN uplink hosting replicas of the
            heavy services, with ``cost_aware`` balancing (unless
            *balancing* overrides it) so each home's calls pick
            home-vs-cloud by modeled cost.
        wan: WAN uplink profile for the cloud tier (``None`` keeps
            :data:`~repro.net.link.WAN_METRO`).
        pricing: dollar rates for the per-home cost accounting (``None``
            keeps :class:`~repro.pipeline.optimizer.CloudPricing`
            defaults).
        online: enable each home's :class:`OnlineOptimizer
            <repro.pipeline.optimizer.OnlineOptimizer>` (live re-placement).
        audit: enable each home's invariant auditor.
        tracing: enable each home's trace recorder (feeds the online
            optimizer's calibration).
        balancing: per-pipeline replica-selection policy (``None`` keeps
            the ``fastest`` default, or ``cost_aware`` when *cloud* is on).
        optimizer: cost-model/search knobs for ``optimized`` placement and
            the online loop.
        slo: when given, every home runs the SLO guardian
            (:meth:`~repro.core.videopipe.VideoPipe.enable_slo`) with this
            as its pipeline's objective, and the report carries per-home
            SLO attainment.
        slo_config: controller knobs for the guardian (``None`` keeps
            :class:`~repro.slo.spec.SLOConfig` defaults).
        workload: per-home application shape — ``"stage"`` (default, the
            linear camera → detect → classify → alert → sink DAG) or
            ``"scene"`` (the multi-camera fan-in scene-fusion DAG; the
            fusion module doubles as the ``sink``).
    """

    homes: int = 50
    seed: int = 0
    strategy: str = OPTIMIZED
    fps_choices: tuple[float, ...] = (4.0, 6.0, 8.0)
    duration_s: float = 4.0
    tail_s: float = 2.0
    shards: int = 1
    cloud: bool = False
    wan: LinkSpec | None = None
    pricing: CloudPricing | None = None
    online: bool = False
    audit: bool = False
    tracing: bool = False
    balancing: str | None = None
    optimizer: OptimizerConfig | None = None
    slo: SLO | None = None
    slo_config: SLOConfig | None = None
    workload: str = "stage"

    def __post_init__(self) -> None:
        if self.homes < 1:
            raise ConfigError("homes must be >= 1")
        if self.workload not in WORKLOADS:
            raise ConfigError(
                f"unknown fleet workload {self.workload!r}; known: {WORKLOADS}"
            )
        if self.shards < 1:
            raise ConfigError("shards must be >= 1")
        if self.strategy not in STRATEGIES:
            raise ConfigError(
                f"unknown fleet strategy {self.strategy!r}; known: {STRATEGIES}"
            )
        if not self.fps_choices or any(f <= 0 for f in self.fps_choices):
            raise ConfigError("fps_choices must be positive")
        if self.duration_s <= 0 or self.tail_s < 0:
            raise ConfigError("duration_s must be positive, tail_s >= 0")


@dataclass(slots=True)
class HomeResult:
    """One home's outcome after a fleet run.

    Picklable by construction — shard workers ship these back to the
    coordinator, so everything here is plain data."""

    name: str
    #: global home index (stable across shard counts; the merge key).
    index: int
    devices: list[str]
    strategy: str  # the plan actually used (optimized may fall back)
    completed: int
    dropped: int
    migrations: int
    replans: int
    latencies: list[float]
    sink_frame_ids: list[int]
    #: fraction of capture-window buckets meeting the fleet SLO (``None``
    #: when the fleet runs without one).
    slo_attainment: float | None = None
    #: ladder actions the home's SLO controller took.
    slo_actions: int = 0
    #: circuit-breaker open rejections the pipeline's calls hit.
    service_rejections: int = 0
    #: calls this home sent to cloud-hosted service replicas.
    cloud_calls: int = 0
    #: modeled CPU seconds those calls burned in the cloud tier.
    cloud_compute_s: float = 0.0
    #: bytes this home pushed across its metered WAN uplink.
    cloud_egress_bytes: int = 0
    #: this home's $/hour at the fleet's pricing (edge + cloud + egress).
    cost_usd_per_hour: float = 0.0
    #: which shard's kernel ran the home (provenance only — results are
    #: shard-invariant).
    shard: int = 0


@dataclass(slots=True)
class FleetReport:
    """Fleet-level aggregates plus the per-home results behind them."""

    homes: int
    strategy: str
    duration_s: float
    completed: int
    dropped: int
    migrations: int
    replans: int
    latency: Summary
    results: list[HomeResult] = field(default_factory=list)
    #: homes whose ``optimized`` plan fell back to the co-located heuristic
    #: (0 under any other strategy) — the report's ``strategy`` labels the
    #: *request*, this counts where the search declined to differ.
    plans_fell_back: int = 0
    #: total bytes the fleet pushed across metered WAN uplinks.
    cloud_egress_bytes: int = 0
    #: total calls served by cloud-hosted replicas.
    cloud_calls: int = 0
    #: mean per-home $/hour at the fleet's pricing.
    cost_per_home: float = 0.0
    #: mean per-home SLO attainment (``None`` without a fleet SLO).
    slo_attainment_mean: float | None = None
    #: homes whose attainment is at least 0.9.
    slo_homes_meeting: int = 0
    #: total ladder actions across all homes' SLO controllers.
    slo_actions: int = 0
    #: total circuit-breaker open rejections across all pipelines.
    service_rejections: int = 0
    #: shard provenance: how many worker kernels ran the fleet, and how
    #: many homes each took. Excluded from merge-equivalence comparisons.
    shards: int = 1
    shard_homes: dict[int, int] = field(default_factory=dict)

    @property
    def drop_rate(self) -> float:
        total = self.completed + self.dropped
        return self.dropped / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "homes": self.homes,
            "strategy": self.strategy,
            "duration_s": self.duration_s,
            "completed": self.completed,
            "dropped": self.dropped,
            "drop_rate": self.drop_rate,
            "migrations": self.migrations,
            "replans": self.replans,
            "latency": self.latency.as_dict(),
            "plans_fell_back": self.plans_fell_back,
            "cloud_egress_bytes": self.cloud_egress_bytes,
            "cloud_calls": self.cloud_calls,
            "cost_per_home": self.cost_per_home,
            "slo_attainment_mean": self.slo_attainment_mean,
            "slo_homes_meeting": self.slo_homes_meeting,
            "slo_actions": self.slo_actions,
            "service_rejections": self.service_rejections,
            "shards": self.shards,
            "shard_homes": {str(k): v for k, v in self.shard_homes.items()},
        }

    def describe(self) -> str:
        lat = self.latency
        text = (
            f"fleet[{self.strategy}] {self.homes} homes:"
            f" {self.completed} frames,"
            f" drop {self.drop_rate:.1%},"
            f" latency mean {lat.mean * 1e3:.1f} ms"
            f" p50 {lat.p50 * 1e3:.1f} ms p99 {lat.p99 * 1e3:.1f} ms,"
            f" {self.migrations} migrations, {self.replans} replans"
        )
        if self.shards > 1:
            text += f", {self.shards} shards"
        if self.plans_fell_back:
            text += f", {self.plans_fell_back} plans fell back"
        if self.cloud_calls:
            text += (
                f", cloud: {self.cloud_calls} calls"
                f" {self.cloud_egress_bytes / 1e6:.1f} MB egress"
            )
        text += f", ${self.cost_per_home:.4f}/home-hour"
        if self.slo_attainment_mean is not None:
            text += (
                f", SLO attainment mean {self.slo_attainment_mean:.1%}"
                f" ({self.slo_homes_meeting}/{self.homes} homes >= 90%,"
                f" {self.slo_actions} ladder actions)"
            )
        if self.service_rejections:
            text += f", {self.service_rejections} service rejections"
        return text


def aggregate_report(
    config: FleetConfig,
    results: list[HomeResult],
    shards: int = 1,
    shard_homes: dict[int, int] | None = None,
) -> FleetReport:
    """Fold per-home results into one :class:`FleetReport`.

    Both the single-kernel :meth:`Fleet.report` and the shard coordinator's
    merge go through here, which is what pins merge-equivalence: given the
    same :class:`HomeResult` list in global-index order, the aggregates are
    computed identically — latencies concatenate in home order, so even
    float summation order matches.
    """
    results = sorted(results, key=lambda r: r.index)
    latencies: list[float] = []
    for result in results:
        latencies.extend(result.latencies)
    attainments = [
        r.slo_attainment for r in results if r.slo_attainment is not None
    ]
    costs = [r.cost_usd_per_hour for r in results]
    return FleetReport(
        homes=len(results),
        strategy=config.strategy,
        duration_s=config.duration_s,
        completed=sum(r.completed for r in results),
        dropped=sum(r.dropped for r in results),
        migrations=sum(r.migrations for r in results),
        replans=sum(r.replans for r in results),
        latency=summarize(latencies) if latencies else Summary.empty(),
        results=results,
        plans_fell_back=sum(
            1 for r in results
            if config.strategy == OPTIMIZED and r.strategy == COLOCATED
        ),
        cloud_egress_bytes=sum(r.cloud_egress_bytes for r in results),
        cloud_calls=sum(r.cloud_calls for r in results),
        cost_per_home=sum(costs) / len(costs) if costs else 0.0,
        slo_attainment_mean=(
            sum(attainments) / len(attainments) if attainments else None
        ),
        slo_homes_meeting=sum(1 for a in attainments if a >= 0.9),
        slo_actions=sum(r.slo_actions for r in results),
        service_rejections=sum(r.service_rejections for r in results),
        shards=shards,
        shard_homes=dict(shard_homes or {}),
    )


class Fleet:
    """N homes, one kernel. Build, :meth:`run`, :meth:`report`.

    *home_indices* restricts the build to a subset of the fleet's global
    home indices — the shard runner hands each worker its slice this way.
    Seeds, mixes and names key off the global index, so ``Fleet(cfg,
    home_indices=[3])`` builds home 3 exactly as the full fleet would.
    """

    def __init__(
        self,
        config: FleetConfig | None = None,
        home_indices: Sequence[int] | None = None,
    ) -> None:
        self.config = config or FleetConfig()
        if home_indices is None:
            self.home_indices = list(range(self.config.homes))
        else:
            self.home_indices = list(home_indices)
            if any(
                i < 0 or i >= self.config.homes for i in self.home_indices
            ):
                raise ConfigError(
                    f"home_indices out of range for {self.config.homes} homes"
                )
        self.kernel = Kernel()
        self.homes: list[VideoPipe] = []
        self.home_seeds: list[int] = []
        self.pipelines: list[Pipeline] = []
        self._build()

    # -- construction --------------------------------------------------------
    def _build(self) -> None:
        cfg = self.config
        balancing = cfg.balancing
        if balancing is None and cfg.cloud:
            # a home with a cloud replica in reach should price the WAN leg
            # when dialing, not just pick the fastest device
            balancing = COST_AWARE
        for index in self.home_indices:
            # a per-home stream for the mix/fps draws, decoupled from the
            # home's own RNG so adding knobs never shifts another home
            mix_rng = random.Random(f"fleet/{cfg.seed}/{index}")
            seed = home_seed(cfg.seed, index)
            self.home_seeds.append(seed)
            home = VideoPipe(seed=seed, kernel=self.kernel)
            self.homes.append(home)
            device_names = self._add_devices(home, home_device_kinds(mix_rng))
            camera, hub = device_names[0], device_names[1]
            if cfg.workload == "scene":
                install_scene_home_services(home, hub)
            else:
                install_home_services(home, hub, camera)
            if cfg.cloud:
                install_cloud_services(home, wan=cfg.wan)
            if cfg.audit:
                home.enable_audit()
            if cfg.tracing:
                home.enable_tracing()
            if cfg.online:
                home.enable_optimizer(cfg.optimizer)
            if cfg.slo is not None:
                home.enable_slo(config=cfg.slo_config, default_slo=cfg.slo)
            fps = cfg.fps_choices[mix_rng.randrange(len(cfg.fps_choices))]
            if cfg.workload == "scene":
                pipeline_config = scene_home_pipeline_config(
                    f"home{index}",
                    camera,
                    fps=fps,
                    duration_s=cfg.duration_s,
                    balancing=balancing,
                )
            else:
                pipeline_config = home_pipeline_config(
                    f"home{index}",
                    camera,
                    fps=fps,
                    duration_s=cfg.duration_s,
                    balancing=balancing,
                )
            if cfg.strategy == SINGLE_HOST:
                # the EdgeEye-style baseline: the whole app on the camera
                # device, every service call remote
                pipeline = home.deploy_pipeline(
                    pipeline_config,
                    strategy=SINGLE_HOST,
                    host_device=camera,
                    prefer_local_services=False,
                )
            elif cfg.strategy == OPTIMIZED:
                placement = plan_optimized(
                    pipeline_config, home.devices, home.registry,
                    home.topology, camera, optimizer=cfg.optimizer,
                )
                pipeline = home.deploy_pipeline(
                    pipeline_config, placement=placement
                )
            else:
                pipeline = home.deploy_pipeline(
                    pipeline_config,
                    strategy=cfg.strategy,
                    default_device=camera,
                )
            self.pipelines.append(pipeline)

    @staticmethod
    def _add_devices(home: VideoPipe, kinds: list[str]) -> list[str]:
        names: list[str] = []
        counts: dict[str, int] = {}
        for kind in kinds:
            counts[kind] = counts.get(kind, 0) + 1
            name = kind if counts[kind] == 1 else f"{kind}{counts[kind]}"
            home.add_device(make_spec(kind, name))
            names.append(name)
        return names

    # -- execution -----------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Run the shared kernel, then stop any online optimizers and SLO
        controllers.

        With ``until=None`` (the default) the kernel first runs to the
        capture horizon (``duration_s + tail_s``) and then — controllers
        stopped — drains every remaining in-flight event so quiesce-time
        invariants hold. An explicit *until* is honored as a hard horizon:
        the controllers' stop interrupts (scheduled at *until*) are still
        delivered, but any work scheduled later stays unrun.
        """
        horizon = (
            until if until is not None
            else self.config.duration_s + self.config.tail_s
        )
        self.kernel.run(until=horizon)
        for home in self.homes:
            if home.optimizer is not None:
                home.optimizer.stop()
            if home.slo is not None:
                home.slo.stop()
        return self.kernel.run(until=until)

    # -- reporting -----------------------------------------------------------
    def home_results(self, shard: int = 0) -> list[HomeResult]:
        """Per-home outcomes (plain data — this is what shard workers
        return to the coordinator)."""
        cfg = self.config
        pricing = cfg.pricing or CloudPricing()
        results: list[HomeResult] = []
        for index, home, pipeline in zip(
            self.home_indices, self.homes, self.pipelines
        ):
            metrics = pipeline.metrics
            sink = pipeline.module_instance("sink")
            home_attainment = None
            home_actions = 0
            if cfg.slo is not None and home.slo is not None:
                # score the capture window only; the drain tail has no
                # frames by construction and would read as misses
                home_attainment = slo_attainment_score(
                    cfg.slo,
                    metrics.latency_events(),
                    start=0.0,
                    end=cfg.duration_s,
                )
                home_actions = len(home.slo.actions)
            cloud = home.cloud_stats()
            edge_devices = len(home.devices) - len(cloud["devices"])
            results.append(HomeResult(
                name=pipeline.name,
                index=index,
                devices=sorted(home.devices),
                strategy=pipeline.placement.strategy,
                completed=metrics.counter("frames_completed"),
                dropped=metrics.counter("frames_dropped"),
                migrations=metrics.counter("migrations"),
                replans=metrics.counter("replans"),
                latencies=metrics.total_latencies,
                sink_frame_ids=list(sink.frame_ids),
                slo_attainment=home_attainment,
                slo_actions=home_actions,
                service_rejections=metrics.counter("service_rejections"),
                cloud_calls=cloud["calls"],
                cloud_compute_s=cloud["compute_s"],
                cloud_egress_bytes=cloud["egress_bytes"],
                cost_usd_per_hour=pricing.home_hourly_cost(
                    edge_devices, cloud["compute_s"],
                    cloud["egress_bytes"], cfg.duration_s,
                ),
                shard=shard,
            ))
        return results

    def report(self) -> FleetReport:
        return aggregate_report(self.config, self.home_results())


def run_fleet(config: FleetConfig | None = None) -> FleetReport:
    """Build a fleet, run it to completion, and return its report.

    ``config.shards > 1`` spreads the homes over that many worker
    processes (one kernel each) via :class:`~repro.fleet.shard.
    FleetShardRunner`; the merged report is bit-identical to a
    single-kernel run up to the shard provenance fields.
    """
    config = config or FleetConfig()
    if config.shards > 1:
        from .shard import FleetShardRunner

        return FleetShardRunner(config).run()
    fleet = Fleet(config)
    fleet.run()
    return fleet.report()
