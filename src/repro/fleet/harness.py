"""Fleet-scale workload harness: N homes in ONE simulation kernel.

The ROADMAP's north star is scale — placement quality claims made on one
home say nothing about a fleet of heterogeneous ones. This harness
instantiates ``FleetConfig.homes`` independent :class:`VideoPipe` homes on
a single shared :class:`~repro.sim.kernel.Kernel` (one clock, one event
heap), each with its own seeded device mix, services and pipeline, runs
them concurrently, and aggregates fleet-level metrics: p50/p99 end-to-end
latency, drop rate, migration and replan counts.

Everything is deterministic under ``FleetConfig.seed``: device mixes and
frame rates come from per-home ``random.Random`` streams derived from it,
and each home's own RNG seed is an affine function of it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.videopipe import VideoPipe
from ..devices.catalog import make_spec
from ..errors import ConfigError
from ..metrics.stats import Summary, summarize
from ..pipeline.optimizer import OPTIMIZED, OptimizerConfig, plan_optimized
from ..pipeline.pipeline import Pipeline
from ..pipeline.placement import COLOCATED, SINGLE_HOST
from ..pipeline.scheduler import COST_OPTIMIZED
from ..sim.kernel import Kernel
from ..slo.spec import SLO, SLOConfig, attainment as slo_attainment_score
from .workload import (
    home_device_kinds,
    home_pipeline_config,
    install_home_services,
)

STRATEGIES = (COLOCATED, SINGLE_HOST, COST_OPTIMIZED, OPTIMIZED)


@dataclass(frozen=True, slots=True)
class FleetConfig:
    """Shape of one fleet run.

    Attributes:
        homes: number of homes sharing the kernel (the bench uses 50).
        seed: master seed; the whole fleet is deterministic under it.
        strategy: placement strategy for every home's pipeline.
        fps_choices: per-home frame rate, drawn from this tuple.
        duration_s: camera capture duration per home.
        tail_s: extra simulated seconds after capture ends, letting
            in-flight frames drain before metrics are read.
        online: enable each home's :class:`OnlineOptimizer
            <repro.pipeline.optimizer.OnlineOptimizer>` (live re-placement).
        audit: enable each home's invariant auditor.
        tracing: enable each home's trace recorder (feeds the online
            optimizer's calibration).
        balancing: per-pipeline replica-selection policy (``None`` keeps
            the ``fastest`` default).
        optimizer: cost-model/search knobs for ``optimized`` placement and
            the online loop.
        slo: when given, every home runs the SLO guardian
            (:meth:`~repro.core.videopipe.VideoPipe.enable_slo`) with this
            as its pipeline's objective, and the report carries per-home
            SLO attainment.
        slo_config: controller knobs for the guardian (``None`` keeps
            :class:`~repro.slo.spec.SLOConfig` defaults).
    """

    homes: int = 50
    seed: int = 0
    strategy: str = OPTIMIZED
    fps_choices: tuple[float, ...] = (4.0, 6.0, 8.0)
    duration_s: float = 4.0
    tail_s: float = 2.0
    online: bool = False
    audit: bool = False
    tracing: bool = False
    balancing: str | None = None
    optimizer: OptimizerConfig | None = None
    slo: SLO | None = None
    slo_config: SLOConfig | None = None

    def __post_init__(self) -> None:
        if self.homes < 1:
            raise ConfigError("homes must be >= 1")
        if self.strategy not in STRATEGIES:
            raise ConfigError(
                f"unknown fleet strategy {self.strategy!r}; known: {STRATEGIES}"
            )
        if not self.fps_choices or any(f <= 0 for f in self.fps_choices):
            raise ConfigError("fps_choices must be positive")
        if self.duration_s <= 0 or self.tail_s < 0:
            raise ConfigError("duration_s must be positive, tail_s >= 0")


@dataclass(slots=True)
class HomeResult:
    """One home's outcome after a fleet run."""

    name: str
    devices: list[str]
    strategy: str  # the plan actually used (optimized may fall back)
    completed: int
    dropped: int
    migrations: int
    replans: int
    latencies: list[float]
    sink_frame_ids: list[int]
    #: fraction of capture-window buckets meeting the fleet SLO (``None``
    #: when the fleet runs without one).
    slo_attainment: float | None = None
    #: ladder actions the home's SLO controller took.
    slo_actions: int = 0
    #: circuit-breaker open rejections the pipeline's calls hit.
    service_rejections: int = 0


@dataclass(slots=True)
class FleetReport:
    """Fleet-level aggregates plus the per-home results behind them."""

    homes: int
    strategy: str
    duration_s: float
    completed: int
    dropped: int
    migrations: int
    replans: int
    latency: Summary
    results: list[HomeResult] = field(default_factory=list)
    #: mean per-home SLO attainment (``None`` without a fleet SLO).
    slo_attainment_mean: float | None = None
    #: homes whose attainment is at least 0.9.
    slo_homes_meeting: int = 0
    #: total ladder actions across all homes' SLO controllers.
    slo_actions: int = 0
    #: total circuit-breaker open rejections across all pipelines.
    service_rejections: int = 0

    @property
    def drop_rate(self) -> float:
        total = self.completed + self.dropped
        return self.dropped / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "homes": self.homes,
            "strategy": self.strategy,
            "duration_s": self.duration_s,
            "completed": self.completed,
            "dropped": self.dropped,
            "drop_rate": self.drop_rate,
            "migrations": self.migrations,
            "replans": self.replans,
            "latency": self.latency.as_dict(),
            "slo_attainment_mean": self.slo_attainment_mean,
            "slo_homes_meeting": self.slo_homes_meeting,
            "slo_actions": self.slo_actions,
            "service_rejections": self.service_rejections,
        }

    def describe(self) -> str:
        lat = self.latency
        text = (
            f"fleet[{self.strategy}] {self.homes} homes:"
            f" {self.completed} frames,"
            f" drop {self.drop_rate:.1%},"
            f" latency mean {lat.mean * 1e3:.1f} ms"
            f" p50 {lat.p50 * 1e3:.1f} ms p99 {lat.p99 * 1e3:.1f} ms,"
            f" {self.migrations} migrations, {self.replans} replans"
        )
        if self.slo_attainment_mean is not None:
            text += (
                f", SLO attainment mean {self.slo_attainment_mean:.1%}"
                f" ({self.slo_homes_meeting}/{self.homes} homes >= 90%,"
                f" {self.slo_actions} ladder actions)"
            )
        if self.service_rejections:
            text += f", {self.service_rejections} service rejections"
        return text


class Fleet:
    """N homes, one kernel. Build, :meth:`run`, :meth:`report`."""

    def __init__(self, config: FleetConfig | None = None) -> None:
        self.config = config or FleetConfig()
        self.kernel = Kernel()
        self.homes: list[VideoPipe] = []
        self.pipelines: list[Pipeline] = []
        self._build()

    # -- construction --------------------------------------------------------
    def _build(self) -> None:
        cfg = self.config
        for index in range(cfg.homes):
            # a per-home stream for the mix/fps draws, decoupled from the
            # home's own RNG so adding knobs never shifts another home
            mix_rng = random.Random(f"fleet/{cfg.seed}/{index}")
            home = VideoPipe(seed=cfg.seed + 101 * index, kernel=self.kernel)
            self.homes.append(home)
            device_names = self._add_devices(home, home_device_kinds(mix_rng))
            camera, hub = device_names[0], device_names[1]
            install_home_services(home, hub, camera)
            if cfg.audit:
                home.enable_audit()
            if cfg.tracing:
                home.enable_tracing()
            if cfg.online:
                home.enable_optimizer(cfg.optimizer)
            if cfg.slo is not None:
                home.enable_slo(config=cfg.slo_config, default_slo=cfg.slo)
            fps = cfg.fps_choices[mix_rng.randrange(len(cfg.fps_choices))]
            pipeline_config = home_pipeline_config(
                f"home{index}",
                camera,
                fps=fps,
                duration_s=cfg.duration_s,
                balancing=cfg.balancing,
            )
            if cfg.strategy == SINGLE_HOST:
                # the EdgeEye-style baseline: the whole app on the camera
                # device, every service call remote
                pipeline = home.deploy_pipeline(
                    pipeline_config,
                    strategy=SINGLE_HOST,
                    host_device=camera,
                    prefer_local_services=False,
                )
            elif cfg.strategy == OPTIMIZED:
                placement = plan_optimized(
                    pipeline_config, home.devices, home.registry,
                    home.topology, camera, optimizer=cfg.optimizer,
                )
                pipeline = home.deploy_pipeline(
                    pipeline_config, placement=placement
                )
            else:
                pipeline = home.deploy_pipeline(
                    pipeline_config,
                    strategy=cfg.strategy,
                    default_device=camera,
                )
            self.pipelines.append(pipeline)

    @staticmethod
    def _add_devices(home: VideoPipe, kinds: list[str]) -> list[str]:
        names: list[str] = []
        counts: dict[str, int] = {}
        for kind in kinds:
            counts[kind] = counts.get(kind, 0) + 1
            name = kind if counts[kind] == 1 else f"{kind}{counts[kind]}"
            home.add_device(make_spec(kind, name))
            names.append(name)
        return names

    # -- execution -----------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Run the shared kernel to *until* (default: capture duration plus
        the drain tail), then stop any online optimizers and drain the
        remaining in-flight work so quiesce-time invariants hold."""
        horizon = (
            until if until is not None
            else self.config.duration_s + self.config.tail_s
        )
        self.kernel.run(until=horizon)
        for home in self.homes:
            if home.optimizer is not None:
                home.optimizer.stop()
            if home.slo is not None:
                home.slo.stop()
        return self.kernel.run()

    # -- reporting -----------------------------------------------------------
    def report(self) -> FleetReport:
        results: list[HomeResult] = []
        latencies: list[float] = []
        for home, pipeline in zip(self.homes, self.pipelines):
            metrics = pipeline.metrics
            sink = pipeline.module_instance("sink")
            home_attainment = None
            home_actions = 0
            if self.config.slo is not None and home.slo is not None:
                # score the capture window only; the drain tail has no
                # frames by construction and would read as misses
                home_attainment = slo_attainment_score(
                    self.config.slo,
                    metrics.latency_events(),
                    start=0.0,
                    end=self.config.duration_s,
                )
                home_actions = len(home.slo.actions)
            result = HomeResult(
                name=pipeline.name,
                devices=sorted(home.devices),
                strategy=pipeline.placement.strategy,
                completed=metrics.counter("frames_completed"),
                dropped=metrics.counter("frames_dropped"),
                migrations=metrics.counter("migrations"),
                replans=metrics.counter("replans"),
                latencies=metrics.total_latencies,
                sink_frame_ids=list(sink.frame_ids),
                slo_attainment=home_attainment,
                slo_actions=home_actions,
                service_rejections=metrics.counter("service_rejections"),
            )
            results.append(result)
            latencies.extend(result.latencies)
        attainments = [
            r.slo_attainment for r in results if r.slo_attainment is not None
        ]
        return FleetReport(
            homes=len(self.homes),
            strategy=self.config.strategy,
            duration_s=self.config.duration_s,
            completed=sum(r.completed for r in results),
            dropped=sum(r.dropped for r in results),
            migrations=sum(r.migrations for r in results),
            replans=sum(r.replans for r in results),
            latency=summarize(latencies) if latencies else Summary.empty(),
            results=results,
            slo_attainment_mean=(
                sum(attainments) / len(attainments) if attainments else None
            ),
            slo_homes_meeting=sum(1 for a in attainments if a >= 0.9),
            slo_actions=sum(r.slo_actions for r in results),
            service_rejections=sum(r.service_rejections for r in results),
        )


def run_fleet(config: FleetConfig | None = None) -> FleetReport:
    """Build a fleet, run it to completion, and return its report."""
    fleet = Fleet(config)
    fleet.run()
    return fleet.report()
