"""The fleet harness's per-home workload: devices, services, pipeline.

Every simulated home runs the same *shape* of application — camera →
detect → classify → alert → sink — over a home-specific device mix and
frame rate, so fleet-level aggregates compare like with like while the
placement problem differs home to home. The stage modules are deliberately
generic (one service call per stage, payload forwarded by reference) so a
home's cost structure comes from its devices and links, not from
app-specific module logic.
"""

from __future__ import annotations

import random

# the fleet pipeline's source is the library's VideoStreamingModule; the
# import registers it (and the rest of the library) with the module registry
from ..apps import modules as _app_modules  # noqa: F401
from ..pipeline.config import ModuleConfig, PipelineConfig
from ..runtime.context import ModuleContext
from ..runtime.events import ModuleEvent
from ..runtime.module import Module
from ..runtime.registry import register_module
from ..services.base import FunctionService

#: Container-capable hub candidates; every home gets exactly one.
HUB_KINDS = ("desktop", "laptop", "tablet")

#: Extra devices a home may additionally contain (0–3 of these).
EXTRA_KINDS = ("tv", "fridge", "watch", "tablet", "laptop")


@register_module("./FleetStageModule.js")
class FleetStageModule(Module):
    """A generic per-frame stage: call one service, forward the payload.

    Params:
        service: the service this stage calls per frame.
        stage: metrics stage name (defaults to the service name). Naming
            the stage after the *module* lets the online optimizer
            calibrate from ``MetricsCollector`` when tracing is off.
    """

    def __init__(self, service: str, stage: str | None = None) -> None:
        self.service = service
        self.stage = stage or service

    def event_received(self, ctx: ModuleContext, event: ModuleEvent):
        def flow():
            payload = event.payload
            ref = payload["frame"]
            started = ctx.now
            try:
                result = yield ctx.call_service(self.service, {"frame": ref})
            except Exception:
                # a failed call must not wedge the home: free the frame,
                # refill the credit, surface the error to the runtime
                ctx.release(ref)
                ctx.metrics.increment(f"{self.stage}_failures")
                ctx.frame_completed(payload["frame_id"])
                ctx.signal_source()
                raise
            ctx.record_stage(self.stage, ctx.now - started)
            out = dict(payload)
            out[self.stage] = result
            ctx.call_next(out)

        return flow()


@register_module("./FleetSinkModule.js")
class FleetSinkModule(Module):
    """The fleet sink: completes frames and refills the source credit.

    Keeps the arrival order (``frame_ids``) for the harness's monotonicity
    checks — under the §2.3 credit protocol one frame is in flight at a
    time, so ids at the sink must be strictly increasing."""

    def __init__(self) -> None:
        self.frame_ids: list[int] = []

    def event_received(self, ctx: ModuleContext, event: ModuleEvent) -> None:
        payload = event.payload
        self.frame_ids.append(payload["frame_id"])
        ctx.record_stage("total_duration", ctx.now - payload["capture_time"])
        ref = payload.get("frame")
        if ref is not None:
            ctx.release(ref)
        ctx.frame_completed(payload["frame_id"])
        ctx.signal_source()


def _detect(payload, ctx) -> dict:
    return {"objects": 1}


def _classify(payload, ctx) -> dict:
    return {"label": "person", "confidence": 0.9}


def _alert(payload, ctx) -> dict:
    return {"alert": False}


def install_home_services(home, hub_device: str, camera_device: str) -> None:
    """Deploy one home's services: a heavy detector and a lighter
    classifier in containers on the hub, a tiny native alerter on the
    camera device (native services run anywhere, §3)."""
    home.deploy_service(
        FunctionService("fleet_detector", _detect, reference_cost_s=0.016),
        hub_device,
        port=7910,
    )
    home.deploy_service(
        FunctionService("fleet_classifier", _classify, reference_cost_s=0.006),
        hub_device,
        port=7911,
    )
    home.deploy_service(
        FunctionService("fleet_alerter", _alert, reference_cost_s=0.0015),
        camera_device,
        native=True,
        port=7912,
    )


def install_cloud_services(home, wan=None, cloud_device: str = "cloud") -> None:
    """Attach the cloud tier to one home: a ``cloud`` device behind a
    metered WAN uplink, hosting replicas of the heavy services.

    The cloud is modeled as an *elastic slice* — each home gets its own
    device instance and WAN link, so homes never contend in the simulation
    and per-home results stay shard-invariant; sharedness is expressed in
    dollars through :class:`~repro.pipeline.optimizer.CloudPricing`
    (``docs/FLEET.md``). Only the detector and classifier get replicas:
    the alerter is too cheap for a WAN round trip to ever pay off."""
    home.add_cloud_device(cloud_device, wan=wan)
    home.deploy_service(
        FunctionService("fleet_detector", _detect, reference_cost_s=0.016),
        cloud_device,
        port=7920,
    )
    home.deploy_service(
        FunctionService("fleet_classifier", _classify, reference_cost_s=0.006),
        cloud_device,
        port=7921,
    )


def install_scene_home_services(home, hub_device: str) -> None:
    """Deploy one home's services for the *scene* workload: the pose
    estimator every camera branch calls, containerized on the hub."""
    from ..apps import install_scene_services

    install_scene_services(home, hub_device, port=7914)


def scene_home_pipeline_config(
    name: str,
    camera_device: str,
    fps: float = 8.0,
    duration_s: float = 4.0,
    balancing: str | None = None,
) -> PipelineConfig:
    """The per-home *scene* DAG: one rig fanning out to two camera-track
    branches that fan back into one fusion sink — the fan-in counterpart
    of the linear stage workload. The fusion module is named ``sink`` so
    the harness reads its ``frame_ids`` like any other home's."""
    from ..apps import multi_camera_pipeline_config

    return multi_camera_pipeline_config(
        name=name,
        cameras=2,
        fps=fps,
        duration_s=duration_s,
        source_device=camera_device,
        credit_timeout_s=1.0,
        fusion_name="sink",
        balancing=balancing,
    )


def home_device_kinds(rng: random.Random) -> list[str]:
    """One home's device mix: a phone camera, a container-capable hub, and
    0–3 extra devices. Deterministic under the caller's seeded *rng*."""
    kinds = ["phone", rng.choice(HUB_KINDS)]
    for _ in range(rng.randrange(4)):
        kinds.append(rng.choice(EXTRA_KINDS))
    return kinds


def home_pipeline_config(
    name: str,
    camera_device: str,
    fps: float = 8.0,
    duration_s: float = 4.0,
    balancing: str | None = None,
) -> PipelineConfig:
    """The per-home application DAG. The source is pinned to the camera
    device (the sensor is physical); everything else is free for the
    placement strategy to assign. ``credit_timeout_s`` keeps the stream
    alive across live migrations that drop an in-flight frame."""
    return PipelineConfig(
        name=name,
        balancing=balancing,
        modules=[
            ModuleConfig(
                name="camera",
                include="./VideoStreamingModule.js",
                device=camera_device,
                next_modules=["detect"],
                params={
                    "fps": fps,
                    "duration_s": duration_s,
                    "credit_timeout_s": 1.0,
                },
            ),
            ModuleConfig(
                name="detect",
                include="./FleetStageModule.js",
                services=["fleet_detector"],
                next_modules=["classify"],
                params={"service": "fleet_detector", "stage": "detect"},
            ),
            ModuleConfig(
                name="classify",
                include="./FleetStageModule.js",
                services=["fleet_classifier"],
                next_modules=["alert"],
                params={"service": "fleet_classifier", "stage": "classify"},
            ),
            ModuleConfig(
                name="alert",
                include="./FleetStageModule.js",
                services=["fleet_alerter"],
                next_modules=["sink"],
                params={"service": "fleet_alerter", "stage": "alert"},
            ),
            ModuleConfig(name="sink", include="./FleetSinkModule.js"),
        ],
    )
