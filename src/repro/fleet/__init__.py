"""Fleet-scale simulation: many homes, sharded kernels (``docs/FLEET.md``)."""

from .harness import (
    STRATEGIES,
    Fleet,
    FleetConfig,
    FleetReport,
    HomeResult,
    aggregate_report,
    home_seed,
    run_fleet,
)
from .shard import (
    FleetShardRunner,
    ShardResult,
    shard_assignment,
)
from .workload import (
    FleetSinkModule,
    FleetStageModule,
    home_device_kinds,
    home_pipeline_config,
    install_cloud_services,
    install_home_services,
)

__all__ = [
    "Fleet",
    "FleetConfig",
    "FleetReport",
    "FleetShardRunner",
    "FleetSinkModule",
    "FleetStageModule",
    "HomeResult",
    "STRATEGIES",
    "ShardResult",
    "aggregate_report",
    "home_device_kinds",
    "home_pipeline_config",
    "home_seed",
    "install_cloud_services",
    "install_home_services",
    "run_fleet",
    "shard_assignment",
]
