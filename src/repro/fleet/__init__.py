"""Fleet-scale simulation: many homes, one kernel (see ``docs/PLACEMENT.md``)."""

from .harness import (
    STRATEGIES,
    Fleet,
    FleetConfig,
    FleetReport,
    HomeResult,
    run_fleet,
)
from .workload import (
    FleetSinkModule,
    FleetStageModule,
    home_device_kinds,
    home_pipeline_config,
    install_home_services,
)

__all__ = [
    "Fleet",
    "FleetConfig",
    "FleetReport",
    "FleetSinkModule",
    "FleetStageModule",
    "HomeResult",
    "STRATEGIES",
    "home_device_kinds",
    "home_pipeline_config",
    "install_home_services",
    "run_fleet",
]
