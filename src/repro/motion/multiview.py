"""Multi-view scene geometry: N cameras watching the same world actors.

ROADMAP item 3's scene layer starts here: a small 2D world model (a room
floor plane, metres) in which :class:`WorldActor`\\ s walk deterministic
trajectories while :class:`CameraView`\\ s — wall-mounted, each with its own
position, orientation and field of view — project the *same* ground-truth
actors into per-camera image coordinates. The projection reuses the
single-camera machinery (:class:`~repro.motion.trajectory.SubjectParams` +
:func:`~repro.motion.trajectory.place_in_image`): a camera turns an actor's
world position into a subject height/placement, and the actor's shaped
body-frame pose is dropped into the image exactly like the single-view
sources do.

Two properties make the downstream re-ID problem honest but solvable:

* **Distinct body shapes.** Each actor carries a :class:`BodyShape` whose
  limb-proportion scales survive hip-centred/torso-scaled normalization
  (projection here is a uniform scale + translation), so a pose embedding
  built from normalized limb lengths is view- and distance-invariant.
* **Occlusion.** When two actors overlap in one camera's image, only the
  nearer one is observed (:meth:`MultiViewScene.observe`), so per-camera
  IoU trackers genuinely lose identities during crossings.

Everything is a pure function of time — no hidden state, no RNG at
observation time — which is what the determinism harness pins.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

import numpy as np

from .exercises import make_model
from .skeleton import KEYPOINT_INDEX, Pose
from .trajectory import SubjectParams, place_in_image

#: Nominal body height used for projection and back-projection. All actors
#: share it so apparent size encodes only *distance* — the discriminative
#: signal lives in limb proportions, not in height.
BODY_HEIGHT_M = 1.7

_L_ANKLE = KEYPOINT_INDEX["left_ankle"]
_R_ANKLE = KEYPOINT_INDEX["right_ankle"]


@dataclass(frozen=True, slots=True)
class BodyShape:
    """Per-actor limb proportions, the re-ID signal.

    The scales multiply body-frame segment vectors (upper arm + forearm
    from the shoulder, thigh + shin from the hip, shoulder/hip width about
    the spine midline), so after the paper's hip-centred torso-scaled
    normalization they read out as limb-length *ratios* — invariant to the
    camera that observed them."""

    arm_scale: float = 1.0
    leg_scale: float = 1.0
    shoulder_scale: float = 1.0
    height_m: float = BODY_HEIGHT_M


def shape_pose(pose: Pose, shape: BodyShape) -> Pose:
    """Apply *shape* to a body-frame pose, keeping the feet grounded."""
    kp = pose.keypoints.copy()
    idx = KEYPOINT_INDEX
    for side in ("left", "right"):
        sh, el, wr = (idx[f"{side}_shoulder"], idx[f"{side}_elbow"],
                      idx[f"{side}_wrist"])
        upper = kp[el] - kp[sh]
        fore = kp[wr] - kp[el]
        kp[el] = kp[sh] + shape.arm_scale * upper
        kp[wr] = kp[el] + shape.arm_scale * fore
        hp, kn, an = (idx[f"{side}_hip"], idx[f"{side}_knee"],
                      idx[f"{side}_ankle"])
        thigh = kp[kn] - kp[hp]
        shin = kp[an] - kp[kn]
        kp[kn] = kp[hp] + shape.leg_scale * thigh
        kp[an] = kp[kn] + shape.leg_scale * shin
    for left, right in (("left_shoulder", "right_shoulder"),
                        ("left_hip", "right_hip")):
        ia, ib = idx[left], idx[right]
        mid = (kp[ia, 0] + kp[ib, 0]) / 2.0
        kp[ia, 0] = mid + shape.shoulder_scale * (kp[ia, 0] - mid)
        kp[ib, 0] = mid + shape.shoulder_scale * (kp[ib, 0] - mid)
    # longer/shorter legs move the ankles; re-anchor so the shaped body
    # stands where the unshaped one stood (place_in_image assumes feet at
    # the base-pose ground line)
    original_ground = max(pose.keypoints[_L_ANKLE, 1],
                          pose.keypoints[_R_ANKLE, 1])
    shaped_ground = max(kp[_L_ANKLE, 1], kp[_R_ANKLE, 1])
    kp[:, 1] += original_ground - shaped_ground
    return Pose(kp, pose.visibility.copy())


def _reflect(value: float, span: float) -> float:
    """Reflect *value* into [0, span] (triangle wave — elastic walls)."""
    if span <= 0:
        return 0.0
    period = 2.0 * span
    value = value % period
    return value if value <= span else period - value


@dataclass(frozen=True, slots=True)
class WorldActor:
    """One ground-truth person walking the room floor plane.

    Attributes:
        actor_id: stable ground-truth identity.
        shape: the actor's limb proportions (the re-ID signal).
        start: initial (x, z) floor position in metres.
        velocity: (vx, vz) walk velocity in m/s; the walk reflects off the
            room walls (minus a margin) so actors never leave the room.
        motion: motion-model label (``repro.motion.exercises``).
        tempo: multiplier on the motion period (>1 = slower).
        phase_offset_s: where in the motion cycle the actor starts.
    """

    actor_id: int
    shape: BodyShape = field(default_factory=BodyShape)
    start: tuple[float, float] = (1.0, 1.0)
    velocity: tuple[float, float] = (0.5, 0.0)
    motion: str = "stand"
    tempo: float = 1.0
    phase_offset_s: float = 0.0

    def position(self, t: float, room: tuple[float, float],
                 margin: float = 0.4) -> tuple[float, float]:
        """Floor position at time *t*, reflected inside the room walls."""
        span_x = room[0] - 2.0 * margin
        span_z = room[1] - 2.0 * margin
        x = margin + _reflect(self.start[0] - margin + self.velocity[0] * t,
                              span_x)
        z = margin + _reflect(self.start[1] - margin + self.velocity[1] * t,
                              span_z)
        return (x, z)

    def pose_at(self, t: float) -> Pose:
        """Shaped body-frame pose at time *t*."""
        model = make_model(self.motion)
        body = model.pose_at((t + self.phase_offset_s) / self.tempo)
        return shape_pose(body, self.shape)


@dataclass(frozen=True, slots=True)
class CameraView:
    """One wall-mounted camera: pose on the floor plane plus intrinsics.

    The camera looks level along *yaw_deg* (degrees from the +x axis) with
    a horizontal field-of-view wedge of *fov_deg*; an actor is visible only
    inside the wedge, nearer than *range_m* and beyond *min_depth_m*.
    Projection is the ideal pinhole: bearing becomes image x, inverse
    distance becomes apparent height."""

    name: str
    position: tuple[float, float]
    yaw_deg: float
    fov_deg: float = 70.0
    range_m: float = 12.0
    min_depth_m: float = 0.8
    width: int = 640
    height: int = 480
    mount_height_m: float = 1.2
    room: str = "living_room"

    @property
    def focal_px(self) -> float:
        return (self.width / 2.0) / math.tan(math.radians(self.fov_deg) / 2.0)

    def _relative(self, world: tuple[float, float]) -> tuple[float, float]:
        dx = world[0] - self.position[0]
        dz = world[1] - self.position[1]
        yaw = math.radians(self.yaw_deg)
        forward = dx * math.cos(yaw) + dz * math.sin(yaw)
        lateral = -dx * math.sin(yaw) + dz * math.cos(yaw)
        return forward, lateral

    def project(
        self, world: tuple[float, float], body_height_m: float = BODY_HEIGHT_M
    ) -> tuple[SubjectParams, float] | None:
        """Project a world position to subject placement, or ``None`` when
        the position falls outside the camera's view wedge or range."""
        forward, lateral = self._relative(world)
        distance = math.hypot(world[0] - self.position[0],
                              world[1] - self.position[1])
        if forward < self.min_depth_m or distance > self.range_m:
            return None
        half = math.radians(self.fov_deg) / 2.0
        if abs(math.atan2(lateral, forward)) > half:
            return None
        f = self.focal_px
        subject = SubjectParams(
            height_px=f * body_height_m / forward,
            center_x=self.width / 2.0 + f * lateral / forward,
            ground_y=self.height / 2.0 + f * self.mount_height_m / forward,
        )
        return subject, distance

    def back_project(
        self, center_x: float, height_px: float,
        body_height_m: float = BODY_HEIGHT_M,
    ) -> tuple[float, float]:
        """Invert the pinhole: apparent height + image x to a floor (x, z).

        The fusion stage uses this on *estimated* boxes, so the answer is
        only as good as the detector — exactly the uncertainty the
        position-only (re-ID disabled) association suffers from."""
        f = self.focal_px
        forward = f * body_height_m / max(height_px, 1e-6)
        lateral = (center_x - self.width / 2.0) * forward / f
        yaw = math.radians(self.yaw_deg)
        x = self.position[0] + forward * math.cos(yaw) - lateral * math.sin(yaw)
        z = self.position[1] + forward * math.sin(yaw) + lateral * math.cos(yaw)
        return (x, z)


def camera_to_dict(camera: CameraView) -> dict:
    """JSON-able camera spec (travels in frame metadata)."""
    return {
        "name": camera.name,
        "position": list(camera.position),
        "yaw_deg": camera.yaw_deg,
        "fov_deg": camera.fov_deg,
        "range_m": camera.range_m,
        "min_depth_m": camera.min_depth_m,
        "width": camera.width,
        "height": camera.height,
        "mount_height_m": camera.mount_height_m,
        "room": camera.room,
    }


def camera_from_dict(data: dict) -> CameraView:
    return CameraView(
        name=str(data["name"]),
        position=(float(data["position"][0]), float(data["position"][1])),
        yaw_deg=float(data["yaw_deg"]),
        fov_deg=float(data["fov_deg"]),
        range_m=float(data["range_m"]),
        min_depth_m=float(data["min_depth_m"]),
        width=int(data["width"]),
        height=int(data["height"]),
        mount_height_m=float(data["mount_height_m"]),
        room=str(data["room"]),
    )


@dataclass(slots=True)
class ActorObservation:
    """What one camera sees of one actor at one instant (ground truth)."""

    actor_id: int
    camera: str
    pose: Pose  # image-space keypoints
    bbox: tuple[float, float, float, float]
    distance_m: float
    world: tuple[float, float]


def _bbox_iou(a: tuple[float, float, float, float],
              b: tuple[float, float, float, float]) -> float:
    ix0, iy0 = max(a[0], b[0]), max(a[1], b[1])
    ix1, iy1 = min(a[2], b[2]), min(a[3], b[3])
    if ix1 <= ix0 or iy1 <= iy0:
        return 0.0
    inter = (ix1 - ix0) * (iy1 - iy0)
    area_a = (a[2] - a[0]) * (a[3] - a[1])
    area_b = (b[2] - b[0]) * (b[3] - b[1])
    union = area_a + area_b - inter
    return inter / union if union > 0 else 0.0


class MultiViewScene:
    """N cameras, M actors, one shared ground truth.

    Observation is deterministic: :meth:`observe` at a given *t* always
    returns the same list, with occlusion resolved nearest-wins (ties by
    actor id). Cameras and actors are validated to have unique names/ids.
    """

    def __init__(
        self,
        actors: list[WorldActor],
        cameras: list[CameraView],
        room: tuple[float, float] = (8.0, 6.0),
        occlusion_iou: float = 0.45,
    ) -> None:
        if len({a.actor_id for a in actors}) != len(actors):
            raise ValueError("actor ids must be unique")
        if len({c.name for c in cameras}) != len(cameras):
            raise ValueError("camera names must be unique")
        self.actors = list(actors)
        self.cameras = list(cameras)
        self.room = room
        self.occlusion_iou = occlusion_iou
        self._by_name = {c.name: c for c in cameras}

    def camera(self, name: str) -> CameraView:
        return self._by_name[name]

    def positions(self, t: float) -> dict[int, tuple[float, float]]:
        """Ground-truth floor positions at time *t*, keyed by actor id."""
        return {a.actor_id: a.position(t, self.room) for a in self.actors}

    def observe(self, camera: CameraView | str, t: float) -> list[ActorObservation]:
        """The actors *camera* sees at *t*, nearest first within occlusion.

        An actor whose projected box overlaps an already-kept nearer
        actor's box by more than ``occlusion_iou`` is occluded — dropped
        from the observation entirely, the way a real detector loses the
        person behind. Returned in actor-id order."""
        cam = self._by_name[camera] if isinstance(camera, str) else camera
        candidates: list[tuple[float, int, WorldActor, SubjectParams,
                               tuple[float, float]]] = []
        for actor in sorted(self.actors, key=lambda a: a.actor_id):
            world = actor.position(t, self.room)
            projected = cam.project(world, actor.shape.height_m)
            if projected is None:
                continue
            subject, distance = projected
            candidates.append((distance, actor.actor_id, actor, subject, world))
        candidates.sort(key=lambda c: (c[0], c[1]))
        kept: list[ActorObservation] = []
        for distance, actor_id, actor, subject, world in candidates:
            pose = place_in_image(actor.pose_at(t), subject)
            bbox = pose.bounding_box(margin=0.05)
            if any(_bbox_iou(bbox, seen.bbox) > self.occlusion_iou
                   for seen in kept):
                continue
            kept.append(ActorObservation(
                actor_id=actor_id, camera=cam.name, pose=pose, bbox=bbox,
                distance_m=distance, world=world,
            ))
        kept.sort(key=lambda o: o.actor_id)
        return kept

    def observe_all(self, t: float) -> dict[str, list[ActorObservation]]:
        return {c.name: self.observe(c, t) for c in self.cameras}


#: Wall-mount slots the preset and random scenes draw cameras from, for an
#: 8 x 6 m room: (position, yaw, room scope).
_CAMERA_SLOTS = (
    ((4.0, 0.3), 90.0, "living_room"),
    ((0.3, 3.0), 0.0, "living_room"),
    ((7.7, 5.7), -144.0, "kitchen"),
    ((7.7, 0.3), 143.0, "hallway"),
)


def crossing_scene(
    cameras: int = 3,
    cross_at: float = 3.0,
    separation_m: float = 0.22,
    room: tuple[float, float] = (8.0, 6.0),
) -> MultiViewScene:
    """The canonical hard case: two distinctly-shaped actors whose walks
    cross near the room centre at *cross_at* seconds.

    Around the crossing their image boxes overlap in every camera, so
    per-camera IoU trackers lose (and re-mint) identities; the limb-ratio
    embeddings stay separable throughout, which is exactly what the
    accuracy harness pins."""
    if not 1 <= cameras <= len(_CAMERA_SLOTS):
        raise ValueError(f"cameras must be 1..{len(_CAMERA_SLOTS)}")
    if cross_at <= 0:
        raise ValueError("cross_at must be positive")
    meet_a = (room[0] / 2.0, room[1] / 2.0)
    meet_b = (room[0] / 2.0, room[1] / 2.0 + separation_m)
    start_a = (1.2, 2.2)
    start_b = (6.8, 3.9)
    vel_a = ((meet_a[0] - start_a[0]) / cross_at,
             (meet_a[1] - start_a[1]) / cross_at)
    vel_b = ((meet_b[0] - start_b[0]) / cross_at,
             (meet_b[1] - start_b[1]) / cross_at)
    actors = [
        WorldActor(
            actor_id=0,
            shape=BodyShape(arm_scale=0.80, leg_scale=0.94,
                            shoulder_scale=0.76),
            start=start_a, velocity=vel_a,
        ),
        WorldActor(
            actor_id=1,
            shape=BodyShape(arm_scale=1.22, leg_scale=1.08,
                            shoulder_scale=1.32),
            start=start_b, velocity=vel_b,
        ),
    ]
    views = [
        CameraView(name=f"cam{i}", position=pos, yaw_deg=yaw, room=scope)
        for i, (pos, yaw, scope) in enumerate(_CAMERA_SLOTS[:cameras])
    ]
    return MultiViewScene(actors, views, room=room)


#: Shape grids the fuzz scenes sample *without replacement*, guaranteeing
#: pairwise-distinct limb proportions (the separability the association
#: threshold relies on).
_ARM_GRID = (0.72, 0.88, 1.04, 1.20, 1.36)
_LEG_GRID = (0.84, 0.94, 1.04, 1.14, 1.24)
_SHOULDER_GRID = (0.68, 0.90, 1.12, 1.34, 1.56)


def random_scene(
    rng: random.Random,
    actor_count: int = 2,
    camera_count: int = 2,
    room: tuple[float, float] = (8.0, 6.0),
) -> MultiViewScene:
    """A seeded-random scene for property fuzzing: distinct shapes drawn
    from spaced grids, random walks, cameras on random wall slots.

    Plain ``random.Random`` only (the ``tests/pipeline/strategies.py``
    idiom) so a fixed seed reproduces the scene exactly."""
    if not 1 <= actor_count <= len(_ARM_GRID):
        raise ValueError(f"actor_count must be 1..{len(_ARM_GRID)}")
    if not 1 <= camera_count <= len(_CAMERA_SLOTS):
        raise ValueError(f"camera_count must be 1..{len(_CAMERA_SLOTS)}")
    arms = rng.sample(_ARM_GRID, actor_count)
    legs = rng.sample(_LEG_GRID, actor_count)
    shoulders = rng.sample(_SHOULDER_GRID, actor_count)
    actors = []
    for i in range(actor_count):
        heading = rng.uniform(0.0, 2.0 * math.pi)
        speed = rng.uniform(0.35, 1.0)
        actors.append(WorldActor(
            actor_id=i,
            shape=BodyShape(arm_scale=arms[i], leg_scale=legs[i],
                            shoulder_scale=shoulders[i]),
            start=(rng.uniform(0.8, room[0] - 0.8),
                   rng.uniform(0.8, room[1] - 0.8)),
            velocity=(speed * math.cos(heading), speed * math.sin(heading)),
            phase_offset_s=rng.uniform(0.0, 2.0),
        ))
    slots = rng.sample(range(len(_CAMERA_SLOTS)), camera_count)
    views = [
        CameraView(
            name=f"cam{i}",
            position=_CAMERA_SLOTS[slot][0],
            yaw_deg=_CAMERA_SLOTS[slot][1] + rng.uniform(-12.0, 12.0),
            fov_deg=rng.uniform(62.0, 80.0),
            room=_CAMERA_SLOTS[slot][2],
        )
        for i, slot in enumerate(slots)
    ]
    return MultiViewScene(actors, views, room=room)
