"""Parametric human motion: skeletons, exercises and gestures.

This package replaces the live humans in front of the paper's camera with
deterministic, seedable motion models that drive the synthetic video source
and the recognizer training sets.
"""

from .exercises import (
    EXERCISES,
    GESTURES,
    MODEL_BY_NAME,
    Clap,
    Fall,
    JumpingJack,
    LateralRaise,
    Lunge,
    MotionModel,
    Squat,
    Stand,
    Wave,
    base_pose,
    make_model,
)
from .skeleton import (
    KEYPOINT_INDEX,
    KEYPOINT_NAMES,
    NUM_KEYPOINTS,
    SKELETON_EDGES,
    Pose,
    pose_sequence_array,
)
from .trajectory import (
    SubjectParams,
    add_keypoint_jitter,
    place_in_image,
    random_subject,
    sample_subject_sequence,
    subject_pose,
)

__all__ = [
    "Clap",
    "EXERCISES",
    "Fall",
    "GESTURES",
    "JumpingJack",
    "KEYPOINT_INDEX",
    "KEYPOINT_NAMES",
    "LateralRaise",
    "Lunge",
    "MODEL_BY_NAME",
    "MotionModel",
    "NUM_KEYPOINTS",
    "Pose",
    "SKELETON_EDGES",
    "Squat",
    "Stand",
    "SubjectParams",
    "Wave",
    "add_keypoint_jitter",
    "base_pose",
    "make_model",
    "place_in_image",
    "pose_sequence_array",
    "random_subject",
    "sample_subject_sequence",
    "subject_pose",
]
