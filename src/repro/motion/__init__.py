"""Parametric human motion: skeletons, exercises and gestures.

This package replaces the live humans in front of the paper's camera with
deterministic, seedable motion models that drive the synthetic video source
and the recognizer training sets.
"""

from .exercises import (
    EXERCISES,
    GESTURES,
    MODEL_BY_NAME,
    Clap,
    Fall,
    JumpingJack,
    LateralRaise,
    Lunge,
    MotionModel,
    Squat,
    Stand,
    Wave,
    base_pose,
    make_model,
)
from .multiview import (
    BODY_HEIGHT_M,
    ActorObservation,
    BodyShape,
    CameraView,
    MultiViewScene,
    WorldActor,
    camera_from_dict,
    camera_to_dict,
    crossing_scene,
    random_scene,
    shape_pose,
)
from .skeleton import (
    KEYPOINT_INDEX,
    KEYPOINT_NAMES,
    NUM_KEYPOINTS,
    SKELETON_EDGES,
    Pose,
    pose_sequence_array,
)
from .trajectory import (
    SubjectParams,
    add_keypoint_jitter,
    place_in_image,
    random_subject,
    sample_subject_sequence,
    subject_pose,
)

__all__ = [
    "ActorObservation",
    "BODY_HEIGHT_M",
    "BodyShape",
    "CameraView",
    "Clap",
    "EXERCISES",
    "Fall",
    "GESTURES",
    "JumpingJack",
    "KEYPOINT_INDEX",
    "KEYPOINT_NAMES",
    "LateralRaise",
    "Lunge",
    "MODEL_BY_NAME",
    "MotionModel",
    "MultiViewScene",
    "NUM_KEYPOINTS",
    "Pose",
    "SKELETON_EDGES",
    "Squat",
    "Stand",
    "SubjectParams",
    "Wave",
    "WorldActor",
    "add_keypoint_jitter",
    "base_pose",
    "camera_from_dict",
    "camera_to_dict",
    "crossing_scene",
    "make_model",
    "place_in_image",
    "pose_sequence_array",
    "random_scene",
    "random_subject",
    "sample_subject_sequence",
    "shape_pose",
    "subject_pose",
]
