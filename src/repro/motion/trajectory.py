"""Trajectory utilities: subject variation, placement, and noise.

Motion models live in a normalized body frame; these helpers turn them into
what a camera sees — a subject of some height standing somewhere in the
image — and add the per-subject and per-session variation that makes the
recognition problems non-trivial.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .exercises import MotionModel
from .skeleton import Pose


@dataclass(frozen=True, slots=True)
class SubjectParams:
    """Per-subject appearance/tempo variation.

    Attributes:
        height_px: subject height in image pixels.
        center_x: horizontal position of the subject's hips in the image.
        ground_y: image y of the subject's feet.
        tempo: multiplier on the motion model's period (>1 = slower).
        amplitude: multiplier on motion amplitude (how deep the squat is).
        phase_offset_s: where in the cycle the recording starts.
    """

    height_px: float = 320.0
    center_x: float = 320.0
    ground_y: float = 440.0
    tempo: float = 1.0
    amplitude: float = 1.0
    phase_offset_s: float = 0.0


def random_subject(
    rng: np.random.Generator,
    frame_width: int = 640,
    frame_height: int = 480,
) -> SubjectParams:
    """Draw plausible subject parameters for a living-room camera.

    The paper notes its accuracy benefits from "a standardized viewing
    distance and standardized viewing angle" (§4.1.2), so the variation here
    is deliberately moderate.
    """
    height = frame_height * float(rng.uniform(0.55, 0.75))
    return SubjectParams(
        height_px=height,
        center_x=frame_width * float(rng.uniform(0.38, 0.62)),
        ground_y=frame_height * float(rng.uniform(0.88, 0.96)),
        tempo=float(rng.uniform(0.8, 1.3)),
        amplitude=float(rng.uniform(0.85, 1.1)),
        phase_offset_s=float(rng.uniform(0.0, 2.0)),
    )


#: Body-frame vertical extent of the base pose (head top ~ -0.78, feet 0.90).
_BODY_TOP = -0.78
_BODY_BOTTOM = 0.90
_BODY_SPAN = _BODY_BOTTOM - _BODY_TOP


def place_in_image(pose: Pose, subject: SubjectParams) -> Pose:
    """Map a body-frame pose into image pixel coordinates for *subject*."""
    scale = subject.height_px / _BODY_SPAN
    keypoints = pose.keypoints * scale
    # feet (body y = 0.90) sit on ground_y; hips follow from the scale
    offset_y = subject.ground_y - _BODY_BOTTOM * scale
    keypoints[:, 0] += subject.center_x
    keypoints[:, 1] += offset_y
    return Pose(keypoints, pose.visibility.copy())


def subject_pose(model: MotionModel, subject: SubjectParams, t: float) -> Pose:
    """The image-space pose of *subject* performing *model* at time *t*."""
    body = model.pose_at((t + subject.phase_offset_s) / subject.tempo)
    if subject.amplitude != 1.0:
        base = model.pose_at(subject.phase_offset_s * 0.0)  # neutral reference
        keypoints = base.keypoints + subject.amplitude * (
            body.keypoints - base.keypoints
        )
        body = Pose(keypoints, body.visibility)
    return place_in_image(body, subject)


def add_keypoint_jitter(
    poses: list[Pose], sigma_px: float, rng: np.random.Generator
) -> list[Pose]:
    """Gaussian pixel noise on every keypoint — sensor/estimator jitter."""
    noisy = []
    for pose in poses:
        keypoints = pose.keypoints + rng.normal(0.0, sigma_px, pose.keypoints.shape)
        noisy.append(Pose(keypoints, pose.visibility.copy()))
    return noisy


def sample_subject_sequence(
    model: MotionModel,
    subject: SubjectParams,
    fps: float,
    duration_s: float,
) -> list[Pose]:
    """Image-space pose sequence for a subject performing a motion."""
    count = int(round(fps * duration_s))
    return [subject_pose(model, subject, i / fps) for i in range(count)]
