"""The 17-keypoint human skeleton (COCO convention).

The paper's 2D pose detector "detects a human and places a bounding box
around them. Within that bounding box, it detects 17 keypoints" (§4.1.1).
This module defines those keypoints, the limb connectivity used for
rendering, and the normalization the paper's activity recognizer applies
("(0,0) is located at the average of the left and right hips", §4.1.2).
"""

from __future__ import annotations

import numpy as np

#: COCO keypoint order.
KEYPOINT_NAMES = (
    "nose",
    "left_eye",
    "right_eye",
    "left_ear",
    "right_ear",
    "left_shoulder",
    "right_shoulder",
    "left_elbow",
    "right_elbow",
    "left_wrist",
    "right_wrist",
    "left_hip",
    "right_hip",
    "left_knee",
    "right_knee",
    "left_ankle",
    "right_ankle",
)

NUM_KEYPOINTS = len(KEYPOINT_NAMES)

#: Index lookup by name.
KEYPOINT_INDEX = {name: i for i, name in enumerate(KEYPOINT_NAMES)}

#: Limb segments (keypoint index pairs) used for rendering and plausibility
#: checks — the standard COCO skeleton edges.
SKELETON_EDGES = (
    (0, 1), (0, 2), (1, 3), (2, 4),          # head
    (5, 6), (5, 7), (7, 9), (6, 8), (8, 10),  # arms + shoulders
    (5, 11), (6, 12), (11, 12),               # torso
    (11, 13), (13, 15), (12, 14), (14, 16),   # legs
)

LEFT_HIP = KEYPOINT_INDEX["left_hip"]
RIGHT_HIP = KEYPOINT_INDEX["right_hip"]


class Pose:
    """One person's 2D pose: a (17, 2) float array plus visibility flags.

    Coordinates are in image pixels (x to the right, y downward) unless a
    normalization has been applied.
    """

    __slots__ = ("keypoints", "visibility")

    def __init__(self, keypoints: np.ndarray, visibility: np.ndarray | None = None) -> None:
        keypoints = np.asarray(keypoints, dtype=np.float64)
        if keypoints.shape != (NUM_KEYPOINTS, 2):
            raise ValueError(f"pose must be ({NUM_KEYPOINTS}, 2), got {keypoints.shape}")
        self.keypoints = keypoints
        if visibility is None:
            visibility = np.ones(NUM_KEYPOINTS, dtype=bool)
        else:
            visibility = np.asarray(visibility, dtype=bool)
            if visibility.shape != (NUM_KEYPOINTS,):
                raise ValueError("visibility must have one flag per keypoint")
        self.visibility = visibility

    def __getitem__(self, name: str) -> np.ndarray:
        """Look a keypoint up by its COCO name."""
        return self.keypoints[KEYPOINT_INDEX[name]]

    def hip_center(self) -> np.ndarray:
        """Midpoint of the two hips — the paper's normalization origin."""
        return (self.keypoints[LEFT_HIP] + self.keypoints[RIGHT_HIP]) / 2.0

    def torso_scale(self) -> float:
        """Shoulder-midpoint to hip-midpoint distance, used for scale
        normalization so that near and far subjects compare."""
        shoulders = (self["left_shoulder"] + self["right_shoulder"]) / 2.0
        return float(np.linalg.norm(shoulders - self.hip_center()))

    def normalized(self) -> "Pose":
        """Framewise normalization per §4.1.2: translate so the hip midpoint
        is the origin, and divide by the torso scale."""
        scale = self.torso_scale()
        if scale <= 1e-9:
            scale = 1.0
        centered = (self.keypoints - self.hip_center()) / scale
        return Pose(centered, self.visibility.copy())

    def bounding_box(self, margin: float = 0.05) -> tuple[float, float, float, float]:
        """Axis-aligned (x0, y0, x1, y1) box around visible keypoints, grown
        by ``margin`` of its size on each side."""
        visible = self.keypoints[self.visibility]
        if len(visible) == 0:
            raise ValueError("no visible keypoints to box")
        x0, y0 = visible.min(axis=0)
        x1, y1 = visible.max(axis=0)
        dx, dy = (x1 - x0) * margin, (y1 - y0) * margin
        return (x0 - dx, y0 - dy, x1 + dx, y1 + dy)

    def flatten(self) -> np.ndarray:
        """The 34-element feature vector (x0, y0, x1, y1, ...)."""
        return self.keypoints.reshape(-1).copy()

    def copy(self) -> "Pose":
        return Pose(self.keypoints.copy(), self.visibility.copy())

    @property
    def wire_size(self) -> int:
        """Bytes this pose occupies in a message payload: 17 float64 pairs
        plus visibility flags and a small envelope."""
        return NUM_KEYPOINTS * 2 * 8 + NUM_KEYPOINTS + 32

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        visible = int(self.visibility.sum())
        return f"<Pose {visible}/{NUM_KEYPOINTS} visible>"


def pose_sequence_array(poses: list[Pose]) -> np.ndarray:
    """Stack a list of poses into a (T, 17, 2) array."""
    return np.stack([p.keypoints for p in poses])
