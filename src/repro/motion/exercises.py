"""Parametric motion models for exercises and gestures.

These stand in for the humans in front of the paper's camera: each model
produces a plausible 17-keypoint pose as a deterministic function of time,
in a hip-centered "body frame" (x right, y down, torso length ~0.5 units).
The fitness pipeline's recognizers are then trained and evaluated on
sequences sampled from these models (plus estimator noise), exactly the role
the authors' recorded workout data plays in §4.1.2–4.1.3.
"""

from __future__ import annotations

import math

import numpy as np

from .skeleton import KEYPOINT_INDEX as KP
from .skeleton import NUM_KEYPOINTS, Pose


def base_pose() -> np.ndarray:
    """A neutral standing pose in the body frame (hips at the origin)."""
    pose = np.zeros((NUM_KEYPOINTS, 2))

    def put(name: str, x: float, y: float) -> None:
        pose[KP[name]] = (x, y)

    put("nose", 0.00, -0.75)
    put("left_eye", -0.05, -0.78)
    put("right_eye", 0.05, -0.78)
    put("left_ear", -0.10, -0.75)
    put("right_ear", 0.10, -0.75)
    put("left_shoulder", -0.20, -0.50)
    put("right_shoulder", 0.20, -0.50)
    put("left_elbow", -0.26, -0.25)
    put("right_elbow", 0.26, -0.25)
    put("left_wrist", -0.28, 0.02)
    put("right_wrist", 0.28, 0.02)
    put("left_hip", -0.12, 0.00)
    put("right_hip", 0.12, 0.00)
    put("left_knee", -0.13, 0.45)
    put("right_knee", 0.13, 0.45)
    put("left_ankle", -0.14, 0.90)
    put("right_ankle", 0.14, 0.90)
    return pose


_UPPER_BODY = [
    KP[name]
    for name in (
        "nose", "left_eye", "right_eye", "left_ear", "right_ear",
        "left_shoulder", "right_shoulder", "left_elbow", "right_elbow",
        "left_wrist", "right_wrist", "left_hip", "right_hip",
    )
]
_KNEES = [KP["left_knee"], KP["right_knee"]]
_ANKLES = [KP["left_ankle"], KP["right_ankle"]]
_ARMS_LEFT = [KP["left_elbow"], KP["left_wrist"]]
_ARMS_RIGHT = [KP["right_elbow"], KP["right_wrist"]]


class MotionModel:
    """Base class: a named, (usually) periodic pose trajectory.

    Attributes:
        name: the activity label recognizers learn.
        period_s: seconds per repetition (or total duration for aperiodic
            motions such as a fall).
        periodic: whether ``pose_at`` wraps time around ``period_s``.
    """

    name = "motion"
    periodic = True

    def __init__(self, period_s: float = 2.0, amplitude: float = 1.0) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.period_s = period_s
        self.amplitude = amplitude

    def phase(self, t: float) -> float:
        """Normalized cycle position in [0, 1)."""
        if self.periodic:
            return (t / self.period_s) % 1.0
        return min(max(t / self.period_s, 0.0), 1.0)

    def pose_at(self, t: float) -> Pose:
        """The body-frame pose at time *t* seconds."""
        return Pose(self._keypoints_at(self.phase(t)))

    def _keypoints_at(self, phase: float) -> np.ndarray:
        raise NotImplementedError

    def sample(self, fps: float, duration_s: float, t0: float = 0.0) -> list[Pose]:
        """Poses at ``fps`` over ``duration_s`` seconds starting at ``t0``."""
        count = int(round(duration_s * fps))
        return [self.pose_at(t0 + i / fps) for i in range(count)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} period={self.period_s:.2f}s>"


def _raise_cos(phase: float) -> float:
    """0 at phase 0, 1 at phase 0.5, back to 0 at phase 1 (smooth)."""
    return (1.0 - math.cos(2.0 * math.pi * phase)) / 2.0


class Squat(MotionModel):
    """Hips drop and knees flex; ankles stay planted."""

    name = "squat"

    def _keypoints_at(self, phase: float) -> np.ndarray:
        pose = base_pose()
        depth = 0.35 * self.amplitude * _raise_cos(phase)
        pose[_UPPER_BODY, 1] += depth
        pose[_KNEES, 1] += depth * 0.45
        pose[_KNEES, 0] *= 1.0 + depth * 1.2  # knees track outward
        # arms extend forward as a counterbalance
        reach = depth * 1.1
        pose[_ARMS_LEFT, 0] -= reach * 0.3
        pose[_ARMS_RIGHT, 0] += reach * 0.3
        pose[[KP["left_wrist"], KP["right_wrist"]], 1] -= reach * 0.8
        return pose


class JumpingJack(MotionModel):
    """Arms sweep from the sides to overhead while the feet jump apart."""

    name = "jumping_jack"

    def _keypoints_at(self, phase: float) -> np.ndarray:
        pose = base_pose()
        lift = _raise_cos(phase) * self.amplitude
        # arm sweep: rotate arms about the shoulders from down (0 rad) to
        # nearly overhead (~2.6 rad)
        angle = lift * 2.6
        for side, sign in (("left", -1.0), ("right", 1.0)):
            shoulder = pose[KP[f"{side}_shoulder"]]
            for joint, radius in ((f"{side}_elbow", 0.26), (f"{side}_wrist", 0.55)):
                pose[KP[joint]] = shoulder + radius * np.array(
                    [sign * math.sin(angle), math.cos(angle)]
                )
        # leg spread
        spread = lift * 0.22
        pose[_ANKLES, 0] += np.array([-spread, spread])
        pose[_KNEES, 0] += np.array([-spread * 0.5, spread * 0.5])
        # slight bounce
        pose[:, 1] -= lift * 0.04
        return pose


class Lunge(MotionModel):
    """One leg steps forward while the body drops."""

    name = "lunge"

    def _keypoints_at(self, phase: float) -> np.ndarray:
        pose = base_pose()
        depth = _raise_cos(phase) * self.amplitude
        step = depth * 0.30
        drop = depth * 0.25
        # leading (right) leg forward, trailing knee toward the ground
        pose[KP["right_ankle"], 0] += step
        pose[KP["right_knee"], 0] += step * 0.8
        pose[KP["left_knee"], 1] += drop * 0.9
        pose[KP["left_knee"], 0] -= step * 0.3
        pose[_UPPER_BODY, 1] += drop
        return pose


class LateralRaise(MotionModel):
    """Straight arms rise from the sides to shoulder height."""

    name = "lateral_raise"

    def _keypoints_at(self, phase: float) -> np.ndarray:
        pose = base_pose()
        lift = _raise_cos(phase) * self.amplitude
        angle = lift * (math.pi / 2.0)  # 0 = arms down, pi/2 = horizontal
        for side, sign in (("left", -1.0), ("right", 1.0)):
            shoulder = pose[KP[f"{side}_shoulder"]]
            direction = np.array([sign * math.sin(angle), math.cos(angle)])
            pose[KP[f"{side}_elbow"]] = shoulder + 0.26 * direction
            pose[KP[f"{side}_wrist"]] = shoulder + 0.55 * direction
        return pose


class Wave(MotionModel):
    """One raised hand oscillates — the gesture app's 'waving' trigger."""

    name = "wave"

    def _keypoints_at(self, phase: float) -> np.ndarray:
        pose = base_pose()
        shoulder = pose[KP["right_shoulder"]]
        pose[KP["right_elbow"]] = shoulder + np.array([0.16, -0.18])
        sway = math.sin(2.0 * math.pi * phase) * 0.16 * self.amplitude
        pose[KP["right_wrist"]] = pose[KP["right_elbow"]] + np.array([sway, -0.26])
        return pose


class Clap(MotionModel):
    """Hands meet in front of the chest — the 'clapping' trigger."""

    name = "clap"

    def _keypoints_at(self, phase: float) -> np.ndarray:
        pose = base_pose()
        closeness = _raise_cos(phase) * self.amplitude
        for side, sign in (("left", -1.0), ("right", 1.0)):
            pose[KP[f"{side}_elbow"]] = np.array([sign * 0.24, -0.32])
            x = sign * (0.26 - 0.24 * closeness)
            pose[KP[f"{side}_wrist"]] = np.array([x, -0.42])
        return pose


class Fall(MotionModel):
    """An aperiodic fall: the body rotates from vertical to lying flat.

    Used by the fall-detection application (§4.3). After ``period_s`` the
    subject stays on the ground.
    """

    name = "fall"
    periodic = False

    def __init__(self, period_s: float = 0.9, amplitude: float = 1.0) -> None:
        super().__init__(period_s, amplitude)

    def _keypoints_at(self, phase: float) -> np.ndarray:
        pose = base_pose()
        pivot = pose[_ANKLES].mean(axis=0)
        angle = phase * (math.pi / 2.0) * self.amplitude  # vertical -> horizontal
        cos_a, sin_a = math.cos(angle), math.sin(angle)
        rotation = np.array([[cos_a, -sin_a], [sin_a, cos_a]])
        return (pose - pivot) @ rotation.T + pivot


class Stand(MotionModel):
    """Idle standing with a barely-visible sway (the rest/background class)."""

    name = "stand"

    def _keypoints_at(self, phase: float) -> np.ndarray:
        pose = base_pose()
        sway = math.sin(2.0 * math.pi * phase) * 0.01 * self.amplitude
        pose[:, 0] += sway
        return pose


#: All exercise models (fitness app vocabulary).
EXERCISES = (Squat, JumpingJack, Lunge, LateralRaise)
#: All gesture models (IoT control vocabulary).
GESTURES = (Wave, Clap)
#: Every model, by label.
MODEL_BY_NAME = {
    cls.name: cls
    for cls in (Squat, JumpingJack, Lunge, LateralRaise, Wave, Clap, Fall, Stand)
}


def make_model(name: str, period_s: float = 2.0, amplitude: float = 1.0) -> MotionModel:
    """Instantiate a motion model by activity label."""
    try:
        cls = MODEL_BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown motion {name!r}; known: {sorted(MODEL_BY_NAME)}")
    return cls(period_s=period_s, amplitude=amplitude)
