"""The public entry point: the :class:`VideoPipe` home facade."""

from .videopipe import VideoPipe

__all__ = ["VideoPipe"]
