"""The VideoPipe system facade.

One :class:`VideoPipe` instance is a *home*: a kernel (simulated or
realtime), a Wi-Fi network, a set of heterogeneous devices each running the
uniform module runtime, a service registry, and a deployer. Applications
are pipeline configurations deployed into it.

Typical use::

    home = VideoPipe.paper_testbed(seed=7)
    home.deploy_service(PoseDetectorService(), "desktop")
    ...
    pipeline = home.deploy_pipeline(config)
    home.run_for(30.0)
    print(pipeline.metrics.throughput_fps(home.now, warmup_s=3.0))
"""

from __future__ import annotations

import os

from ..audit.auditor import InvariantAuditor, Violation
from ..devices.catalog import make_spec
from ..devices.device import Device
from ..devices.spec import DeviceSpec
from ..errors import AdmissionError, ConfigError, DeviceError
from ..faults.injector import ChaosInjector
from ..faults.plan import FaultPlan
from ..liveops.policy import CanaryPolicy
from ..liveops.upgrade import LiveOpsManager, ModuleUpgrade
from ..monitor.failure_detector import (
    FailureDetector,
    HeartbeatResponder,
    failure_probe,
)
from ..monitor.monitor import Monitor
from ..monitor.orchestrator import (
    Orchestrator,
    evacuate_dead_device_remedy,
)
from ..monitor.probes import (
    audit_probe,
    device_probe,
    pipeline_probe,
    service_probe,
    slo_probe,
    tracing_probe,
)
from ..net.broker import BrokeredTransport
from ..net.link import WIFI_HOME, LinkSpec
from ..net.topology import Topology
from ..net.transport import BrokerlessTransport, Transport
from ..pipeline.config import (
    AuditConfig,
    DataPlaneConfig,
    PerfConfig,
    PipelineConfig,
    TraceConfig,
)
from ..pipeline.deployer import Deployer
from ..pipeline.pipeline import Pipeline
from ..pipeline.optimizer import (
    OPTIMIZED,
    OnlineOptimizer,
    OptimizerConfig,
    plan_optimized,
)
from ..pipeline.placement import (
    COLOCATED,
    SINGLE_HOST,
    PlacementPlan,
    plan_colocated,
    plan_single_host,
)
from ..pipeline.scheduler import COST_OPTIMIZED, plan_cost_optimized
from ..runtime.module import Module
from ..runtime.moduleruntime import ModuleRuntime
from ..services.base import Service
from ..services.host import ServiceHost
from ..services.registry import ServiceRegistry
from ..services.scaling import AutoScaler, ScalingPolicy
from ..sim.kernel import Kernel, RealtimeKernel
from ..sim.rng import RngStreams
from ..slo.controller import SLOController
from ..slo.spec import QUEUED, REJECTED, SLO, SLOConfig
from ..trace.recorder import TraceRecorder


class VideoPipe:
    """A home full of devices, ready to run video pipelines."""

    def __init__(
        self,
        seed: int = 0,
        realtime: bool = False,
        speed: float = 1.0,
        wifi: LinkSpec | None = None,
        transport: str = "zeromq",
        broker_device: str | None = None,
        kernel: Kernel | None = None,
    ) -> None:
        if kernel is not None and realtime:
            raise ConfigError("a shared kernel cannot be combined with realtime")
        if kernel is not None:
            # many homes on one clock — the fleet harness (repro.fleet)
            # simulates N homes in a single kernel this way
            self.kernel = kernel
        else:
            self.kernel = RealtimeKernel(speed) if realtime else Kernel()
        self.rng = RngStreams(seed)
        self.topology = Topology(self.kernel, self.rng)
        self.topology.add_wifi("wifi", wifi or WIFI_HOME)
        self.devices: dict[str, Device] = {}
        self.registry = ServiceRegistry()
        self._transport_kind = transport
        self._broker_device = broker_device
        self.transport: Transport | None = None
        self.deployer: Deployer | None = None
        self.autoscaler: AutoScaler | None = None
        self.monitor: Monitor | None = None
        self.detector: FailureDetector | None = None
        self.orchestrator: Orchestrator | None = None
        self.injector: ChaosInjector | None = None
        self._responders: dict[str, HeartbeatResponder] = {}
        self._perf: PerfConfig | None = None
        self._data_plane: DataPlaneConfig | None = None
        self.optimizer: OnlineOptimizer | None = None
        self.tracer: TraceRecorder | None = None
        self.auditor: InvariantAuditor | None = None
        self.slo: SLOController | None = None
        self.liveops: LiveOpsManager | None = None
        #: SLOs declared at deploy time before enable_slo() was called
        self._pending_slos: dict[str, SLO] = {}
        self.pipelines: list[Pipeline] = []
        if os.environ.get("REPRO_AUDIT"):
            # opt-in via environment (like REPRO_BENCH_FAST): audit every
            # home without touching application code; the CI audit job and
            # the pytest gate in tests/conftest.py build on this
            self.enable_audit()
            self.auditor.source = "env"

    # -- construction --------------------------------------------------------
    @classmethod
    def paper_testbed(cls, seed: int = 0, **kwargs) -> "VideoPipe":
        """The §5.1 setup: 2018 flagship phone + desktop + 4K TV on Wi-Fi."""
        home = cls(seed=seed, **kwargs)
        order = ["phone", "desktop", "tv"]
        broker = kwargs.get("broker_device")
        if broker in order:
            # the broker must join the network before the lazily-created
            # brokered transport first resolves it
            order.remove(broker)
            order.insert(0, broker)
        for kind in order:
            home.add_device(kind)
        return home

    def add_device(self, spec: DeviceSpec | str) -> Device:
        """Join a device to the home Wi-Fi and start its module runtime."""
        if isinstance(spec, str):
            spec = make_spec(spec)
        if spec.name in self.devices:
            raise DeviceError(f"device {spec.name!r} already exists")
        device = Device(self.kernel, spec, self.rng)
        self.topology.attach(spec.name, "wifi")
        return self._register_device(device)

    def add_cloud_device(
        self,
        spec: DeviceSpec | str = "cloud",
        wan: LinkSpec | None = None,
    ) -> Device:
        """Join a cloud-tier device behind the home's access point over a
        metered WAN uplink (default profile:
        :data:`~repro.net.link.WAN_METRO`).

        The device behaves like any other — services deploy to it, modules
        can be placed on it — but it is only reachable across the WAN link,
        and every byte crossing that link is metered as cloud egress
        (:meth:`cloud_stats`). The placement optimizer and the
        ``cost_aware`` balancer price the WAN leg through the topology, so
        whether a home calls its hub or the cloud falls out of the same
        cost model as every other decision (``docs/FLEET.md``).
        """
        if isinstance(spec, str):
            spec = make_spec(spec)
        if spec.name in self.devices:
            raise DeviceError(f"device {spec.name!r} already exists")
        device = Device(self.kernel, spec, self.rng)
        self.topology.add_cloud(spec.name, wan)
        return self._register_device(device)

    def _register_device(self, device: Device) -> Device:
        """Shared tail of device admission: runtime, probes, watchers."""
        spec = device.spec
        self.devices[spec.name] = device
        if self._perf is not None:
            self._apply_perf_to_device(device)
        if self._data_plane is not None:
            self._apply_data_plane_to_device(device)
        if self.auditor is not None:
            self.auditor.watch_store(device.frame_store)
            if device.arena is not None:
                self.auditor.watch_arena(device.arena)
        ModuleRuntime(self.kernel, device, self._get_transport())
        if self.monitor is not None:
            self.monitor.add_probe(f"device/{spec.name}", device_probe(device))
        if self.detector is not None:
            self._install_heartbeat(device)
            if spec.name != self.detector.home_device:
                self.detector.watch(spec.name)
        return device

    def cloud_stats(self) -> dict:
        """Cloud-tier accounting for this home: WAN egress bytes, calls
        served by cloud-hosted services, and their modeled CPU seconds.
        All zeros while no cloud device is attached."""
        calls = 0
        compute_s = 0.0
        for service_name in self.registry.service_names():
            for host in self.registry.hosts_of(service_name):
                if not self.topology.is_cloud(host.device.name):
                    continue
                served = host.local_calls + host.remote_calls
                calls += served
                compute_s += served * host.device.spec.compute_time(
                    host.service.reference_cost_s
                )
        return {
            "devices": self.topology.cloud_devices(),
            "egress_bytes": self.topology.wan_egress_bytes(),
            "calls": calls,
            "compute_s": compute_s,
        }

    def device(self, name: str) -> Device:
        try:
            return self.devices[name]
        except KeyError:
            raise DeviceError(f"unknown device {name!r}")

    def _get_transport(self) -> Transport:
        if self.transport is None:
            if self._transport_kind == "zeromq":
                self.transport = BrokerlessTransport(self.kernel, self.topology)
            elif self._transport_kind == "broker":
                if self._broker_device is None:
                    raise ConfigError("broker transport needs broker_device")
                # the broker is one of the home devices, so it must be the
                # first device added to the home
                self.transport = BrokeredTransport(
                    self.kernel, self.topology, self._broker_device
                )
            else:
                raise ConfigError(f"unknown transport {self._transport_kind!r}")
            if self.auditor is not None:
                self.auditor.watch_transport(self.transport)
        return self.transport

    # -- services ----------------------------------------------------------------
    def deploy_service(
        self,
        service: Service,
        device_name: str,
        replicas: int = 1,
        native: bool = False,
        port: int | None = None,
    ) -> ServiceHost:
        """Host a stateless service on a device.

        Container services require a container-capable device; ``native``
        services (Fig. 4's blue boxes) run anywhere.
        """
        device = self.device(device_name)
        host = ServiceHost(
            self.kernel,
            device,
            service,
            self._get_transport(),
            replicas=replicas,
            native=native,
            port=port,
        )
        if native:
            device.register_native_service_host(host)
        else:
            device.register_service_host(host)
        self.registry.register(host)
        if self._perf is not None:
            self._apply_perf_to_host(host)
        if (self._data_plane is not None and self._data_plane.replica_pool
                and device.replica_pool is not None):
            host.attach_pool(device.replica_pool)
        if self.autoscaler is not None:
            self.autoscaler.watch(host)
        if self.tracer is not None:
            host.tracer = self.tracer
        if self.monitor is not None:
            self.monitor.add_probe(
                f"service/{service.name}@{device_name}", service_probe(host)
            )
        return host

    # -- fast path -----------------------------------------------------------------
    def enable_fast_path(self, perf: PerfConfig | None = None) -> PerfConfig:
        """Turn on the service-layer fast path: frame dedup, result caching
        and micro-batching, per *perf* (defaults to :class:`PerfConfig`).

        Applies to every current and future device and service host. With a
        config whose features are all off, this is a no-op and the home
        behaves bit-for-bit like one that never called it.
        """
        self._perf = perf or PerfConfig()
        for device in self.devices.values():
            self._apply_perf_to_device(device)
        for service_name in self.registry.service_names():
            for host in self.registry.hosts_of(service_name):
                self._apply_perf_to_host(host)
        return self._perf

    def _apply_perf_to_device(self, device: Device) -> None:
        assert self._perf is not None
        if self._perf.frame_dedup:
            store = device.frame_store
            store.dedup = True
            store.retain_limit = self._perf.dedup_retain_limit

    def _apply_perf_to_host(self, host: ServiceHost) -> None:
        assert self._perf is not None
        if self._perf.result_cache and host.service.cacheable:
            host.enable_result_cache(
                max_entries=self._perf.cache_max_entries,
                ttl_s=self._perf.cache_ttl_s,
            )
        if self._perf.batching and host.service.max_batch > 1:
            host.enable_batching(
                max_batch=self._perf.max_batch,
                max_wait_s=self._perf.max_wait_s,
            )

    def perf_stats(self) -> dict:
        """Aggregate fast-path statistics across the home: dedup counters
        per frame store, cache hit rates per host, and the batch-size
        distribution. All zeros while the fast path is off."""
        dedup = {
            "hits": 0, "misses": 0, "bytes_saved": 0, "retained": 0,
        }
        for device in self.devices.values():
            store = device.frame_store
            dedup["hits"] += store.dedup_hits
            dedup["misses"] += store.dedup_misses
            dedup["bytes_saved"] += store.dedup_bytes_saved
            dedup["retained"] += store.retained_count
        attempts = dedup["hits"] + dedup["misses"]
        dedup["ratio"] = dedup["hits"] / attempts if attempts else 0.0

        cache = {"hits": 0, "misses": 0, "by_service": {}}
        batching = {"dispatches": 0, "batched_items": 0, "size_counts": {}}
        for service_name in self.registry.service_names():
            for host in self.registry.hosts_of(service_name):
                cache["hits"] += host.cache_hits
                cache["misses"] += host.cache_misses
                if host.cache_hits or host.cache_misses:
                    entry = cache["by_service"].setdefault(
                        service_name, {"hits": 0, "misses": 0}
                    )
                    entry["hits"] += host.cache_hits
                    entry["misses"] += host.cache_misses
                for size, count in host.batch_size_counts.items():
                    batching["dispatches"] += count
                    batching["batched_items"] += size * count
                    batching["size_counts"][size] = (
                        batching["size_counts"].get(size, 0) + count
                    )
        lookups = cache["hits"] + cache["misses"]
        cache["hit_rate"] = cache["hits"] / lookups if lookups else 0.0
        batching["avg_batch_size"] = (
            batching["batched_items"] / batching["dispatches"]
            if batching["dispatches"] else 1.0
        )
        return {"dedup": dedup, "cache": cache, "batching": batching}

    # -- data plane ----------------------------------------------------------------
    def enable_data_plane(
        self, config: DataPlaneConfig | None = None
    ) -> DataPlaneConfig:
        """Turn on the zero-copy data plane: per-device shared-memory frame
        arenas and pooled service replicas, per *config* (defaults to
        :class:`DataPlaneConfig` — both on).

        Applies to every current and future device and service host, like
        :meth:`enable_fast_path`. Arena-backed stores hand out generation-
        counted handles so intra-device hops ship a fixed-size handle tuple
        instead of walking and pricing the payload tree; pooled hosts share
        the device's worker slots instead of statically partitioning them
        (``docs/PERF.md``). With a config whose features are all off this is
        a no-op.
        """
        self._data_plane = config or DataPlaneConfig()
        for device in self.devices.values():
            self._apply_data_plane_to_device(device)
        return self._data_plane

    def enable_arena(
        self, capacity_bytes: int | None = None
    ) -> DataPlaneConfig:
        """Arena half of :meth:`enable_data_plane` only (no replica pools).
        Keeps an already-enabled pool config intact."""
        prior = self._data_plane
        return self.enable_data_plane(DataPlaneConfig(
            arena=True,
            arena_capacity_bytes=capacity_bytes,
            replica_pool=prior.replica_pool if prior else False,
            pool_slots=prior.pool_slots if prior else None,
        ))

    def enable_replica_pool(
        self, slots: int | None = None
    ) -> DataPlaneConfig:
        """Pool half of :meth:`enable_data_plane` only (no arenas). Keeps
        an already-enabled arena config intact."""
        prior = self._data_plane
        return self.enable_data_plane(DataPlaneConfig(
            arena=prior.arena if prior else False,
            arena_capacity_bytes=prior.arena_capacity_bytes if prior else None,
            replica_pool=True,
            pool_slots=slots,
        ))

    def _apply_data_plane_to_device(self, device: Device) -> None:
        assert self._data_plane is not None
        if self._data_plane.arena:
            arena = device.enable_arena(
                capacity_bytes=self._data_plane.arena_capacity_bytes
            )
            if self.auditor is not None and arena.auditor is None:
                self.auditor.watch_arena(arena)
        if self._data_plane.replica_pool:
            device.enable_replica_pool(slots=self._data_plane.pool_slots)

    def data_plane_stats(self) -> dict:
        """Aggregate data-plane statistics across the home: arena
        allocation counters per device and replica-pool sharing counters.
        All zeros while the data plane is off."""
        arena = {
            "allocs": 0, "frees": 0, "live": 0, "bytes_in_use": 0,
            "peak_bytes": 0, "stale_accesses": 0, "by_device": {},
        }
        pool = {
            "grants": 0, "borrowed": 0, "revoked": 0, "backlog": 0,
            "by_device": {},
        }
        for name, device in self.devices.items():
            if device.arena is not None:
                stats = device.arena.stats()
                arena["by_device"][name] = stats
                arena["allocs"] += stats["allocs"]
                arena["frees"] += stats["frees"]
                arena["live"] += stats["live"]
                arena["bytes_in_use"] += stats["bytes_in_use"]
                arena["peak_bytes"] += stats["peak_bytes"]
                arena["stale_accesses"] += sum(stats["stale_accesses"].values())
            if device.replica_pool is not None:
                stats = device.replica_pool.stats()
                pool["by_device"][name] = stats
                pool["grants"] += stats["total_grants"]
                pool["borrowed"] += stats["borrowed_grants"]
                pool["revoked"] += sum(
                    lease.revoked_grants
                    for lease in device.replica_pool.leases.values()
                )
                pool["backlog"] += stats["backlog"]
        pool["borrow_ratio"] = (
            pool["borrowed"] / pool["grants"] if pool["grants"] else 0.0
        )
        return {"arena": arena, "pool": pool}

    # -- tracing -------------------------------------------------------------------
    def enable_tracing(self, trace: TraceConfig | None = None) -> TraceRecorder:
        """Turn on per-frame distributed tracing home-wide.

        Every current and future pipeline and service host reports spans to
        one :class:`~repro.trace.recorder.TraceRecorder`. Tracing is passive
        — the recorder never schedules kernel events and trace headers ride
        outside the charged message envelope — so a traced run is
        bit-for-bit identical to an untraced one. Idempotent: a second call
        returns the existing recorder.
        """
        if self.tracer is None:
            config = trace or TraceConfig()
            self.tracer = TraceRecorder(self.kernel, max_spans=config.max_spans)
            for pipeline in self.pipelines:
                pipeline.wiring.tracer = self.tracer
            for service_name in self.registry.service_names():
                for host in self.registry.hosts_of(service_name):
                    host.tracer = self.tracer
            if self.monitor is not None:
                self.monitor.add_probe("tracing", tracing_probe(self.tracer))
        return self.tracer

    # -- auditing ------------------------------------------------------------------
    def enable_audit(self, audit: AuditConfig | None = None) -> InvariantAuditor:
        """Turn on the runtime invariant auditor home-wide.

        One :class:`~repro.audit.auditor.InvariantAuditor` watches every
        current and future device frame store, the transport, every
        pipeline's metrics collector, and the autoscaler, and observes the
        kernel for clock hygiene. Auditing is passive — the auditor never
        schedules events, consumes randomness or touches message sizes —
        so an audited run is bit-for-bit identical to an unaudited one
        (``docs/AUDIT.md``). Idempotent: a second call returns the
        existing auditor. Also reachable via ``REPRO_AUDIT=1`` in the
        environment, which audits every home without code changes.
        """
        if self.auditor is None:
            self.auditor = InvariantAuditor(self.kernel, audit or AuditConfig())
            self.auditor.attach_kernel(self.kernel)
            if self.transport is not None:
                self.auditor.watch_transport(self.transport)
            for device in self.devices.values():
                self.auditor.watch_store(device.frame_store)
                if device.arena is not None:
                    self.auditor.watch_arena(device.arena)
            for pipeline in self.pipelines:
                self.auditor.watch_metrics(pipeline.metrics)
            if self.autoscaler is not None:
                self.auditor.watch_autoscaler(self.autoscaler)
            if self.slo is not None:
                self.auditor.watch_slo(self.slo)
            if self.liveops is not None:
                self.auditor.watch_liveops(self.liveops)
            if self.monitor is not None:
                self.monitor.add_probe("audit", audit_probe(self.auditor))
        return self.auditor

    def check_invariants(self, quiesce: bool | None = None) -> list[Violation]:
        """Run the auditor's checks now and return any *new* violations.

        With ``quiesce=True`` the end-of-run laws are included: every
        frame reference released, no in-flight messages, no pending RPCs.
        Those laws only hold once the kernel has drained, so the default
        (``None``) picks automatically: quiesce checks when
        ``kernel.pending_events == 0``, instantaneous conservation checks
        otherwise — calling this mid-run never reports a still-working
        frame as a leak. Requires :meth:`enable_audit` to have been called
        (directly or via ``REPRO_AUDIT=1``)."""
        if self.auditor is None:
            raise ConfigError("call enable_audit() before check_invariants()")
        if quiesce is None:
            quiesce = self.kernel.pending_events == 0
        if quiesce:
            return self.auditor.check_quiesce()
        return self.auditor.check_now()

    def enable_monitoring(self, period_s: float = 0.5) -> Monitor:
        """Turn on the §7 future-work monitor: every current and future
        device, service host and pipeline gets a probe."""
        if self.monitor is None:
            self.monitor = Monitor(self.kernel, period_s=period_s)
            for name, device in self.devices.items():
                self.monitor.add_probe(f"device/{name}", device_probe(device))
            for service_name in self.registry.service_names():
                for host in self.registry.hosts_of(service_name):
                    self.monitor.add_probe(
                        f"service/{service_name}@{host.device.name}",
                        service_probe(host),
                    )
            if self.detector is not None:
                self.monitor.add_probe("failures", failure_probe(self.detector))
            if self.tracer is not None:
                self.monitor.add_probe("tracing", tracing_probe(self.tracer))
            if self.auditor is not None:
                self.monitor.add_probe("audit", audit_probe(self.auditor))
            if self.slo is not None:
                self.monitor.add_probe("slo", slo_probe(self.slo))
            self.monitor.start()
        return self.monitor

    def enable_optimizer(self, config: OptimizerConfig | None = None) -> OnlineOptimizer:
        """Turn on online placement re-optimization for all current and
        future pipelines.

        The optimizer periodically re-scores each watched pipeline's
        placement against the capacity-aware cost model — calibrated with
        live metrics/trace data — and live-migrates modules when the
        predicted improvement clears the config's threshold (see
        :class:`~repro.pipeline.optimizer.OnlineOptimizer` and
        ``docs/PLACEMENT.md``). Also makes the ``"optimized"`` strategy in
        :meth:`plan`/:meth:`deploy_pipeline` use *config*'s knobs.
        Idempotent: a second call returns the existing optimizer.
        """
        if self.optimizer is None:
            self.optimizer = OnlineOptimizer(self, config)
            for pipeline in self.pipelines:
                self.optimizer.watch(pipeline)
            self.optimizer.start()
        return self.optimizer

    def enable_autoscaling(self, policy: ScalingPolicy | None = None) -> AutoScaler:
        """Turn on the §7 future-work autoscaler for all current and future
        service hosts."""
        if self.autoscaler is None:
            self.autoscaler = AutoScaler(self.kernel, policy)
            for name in self.registry.service_names():
                for host in self.registry.hosts_of(name):
                    self.autoscaler.watch(host)
            if self.auditor is not None:
                self.auditor.watch_autoscaler(self.autoscaler)
            self.autoscaler.start()
        return self.autoscaler

    def enable_slo(
        self,
        config: SLOConfig | None = None,
        default_slo: SLO | None = None,
    ) -> SLOController:
        """Turn on the closed-loop SLO guardian (``docs/SLO.md``).

        A :class:`~repro.slo.controller.SLOController` periodically
        classifies every enrolled pipeline against its
        :class:`~repro.slo.spec.SLO` and actuates the reversible
        degradation ladder when it is overloaded; deploys through
        :meth:`deploy_pipeline` are priced by admission control first.
        Existing pipelines that declared an SLO at deploy time are
        enrolled immediately; *default_slo*, when given, enrolls every
        pipeline that declared none. Idempotent: a second call returns
        the existing controller.
        """
        if self.slo is None:
            self.slo = SLOController(self, config, default_slo)
            for pipeline in self.pipelines:
                self.slo.watch(
                    pipeline, self._pending_slos.pop(pipeline.config.name, None)
                )
            if self.auditor is not None:
                self.auditor.watch_slo(self.slo)
            if self.monitor is not None:
                self.monitor.add_probe("slo", slo_probe(self.slo))
            self.slo.start()
        return self.slo

    # -- live operations -----------------------------------------------------------
    def enable_liveops(self, policy: CanaryPolicy | None = None) -> LiveOpsManager:
        """Turn on live operations: hot module upgrades with canary
        mirroring, and per-frame version lineage (``docs/LIVEOPS.md``).

        One :class:`~repro.liveops.upgrade.LiveOpsManager` serves the home;
        every current and future pipeline's wiring gets the lineage
        recorder, so each frame's path records which module and service
        versions touched it. Live-ops observation is passive (lineage
        never schedules events, consumes randomness or touches message
        sizes), so a home with live-ops enabled but no upgrade in flight
        runs bit-for-bit identically to one without it. Idempotent: a
        second call returns the existing manager; *policy* sets the default
        :class:`~repro.liveops.policy.CanaryPolicy` for upgrades that don't
        pass their own.
        """
        if self.liveops is None:
            self.liveops = LiveOpsManager(self, policy)
            for pipeline in self.pipelines:
                pipeline.wiring.lineage = self.liveops.lineage
            if self.auditor is not None:
                self.auditor.watch_liveops(self.liveops)
        return self.liveops

    def upgrade_module(
        self,
        pipeline: Pipeline,
        module_name: str,
        new_include: str | None = None,
        params: dict | None = None,
        version: str | None = None,
        policy: CanaryPolicy | None = None,
        module_instance: Module | None = None,
    ) -> ModuleUpgrade:
        """Hot-upgrade one module of a running pipeline.

        Deploys the candidate version beside the incumbent on the same
        device, mirrors live frames to it without touching the credit
        path, and (with an auto policy, the default) promotes it into the
        incumbent's address — zero frame loss — or rolls it back based on
        the mirrored traffic's health. Requires :meth:`enable_liveops`
        (called implicitly if needed). Returns the
        :class:`~repro.liveops.upgrade.ModuleUpgrade` handle.
        """
        manager = self.enable_liveops()
        return manager.start_upgrade(
            pipeline, module_name,
            new_include=new_include, params=params, version=version,
            policy=policy, module_instance=module_instance,
        )

    def liveops_status(self) -> dict:
        """Live upgrade report: every upgrade's state plus lineage
        counters. Requires :meth:`enable_liveops`."""
        if self.liveops is None:
            raise ConfigError("call enable_liveops() before liveops_status()")
        return self.liveops.status()

    def slo_status(self) -> dict:
        """Live SLO report: per-pipeline state, ladder depth and
        attainment, plus the admission counters. Requires
        :meth:`enable_slo`."""
        if self.slo is None:
            raise ConfigError("call enable_slo() before slo_status()")
        return self.slo.status()

    # -- faults & recovery --------------------------------------------------------
    def crash_device(self, name: str) -> None:
        """Hard-fail a device: power off its hosts, drop queued work, and
        make the network refuse traffic to and from it."""
        self.device(name).crash()
        self.topology.set_device_up(name, False)

    def restart_device(self, name: str) -> None:
        """Bring a crashed device back: network first, then its hosts."""
        device = self.device(name)
        self.topology.set_device_up(name, True)
        device.restart()

    def _install_heartbeat(self, device: Device) -> None:
        if device.spec.name not in self._responders:
            self._responders[device.spec.name] = HeartbeatResponder(
                self.kernel, self._get_transport(), device.spec.name
            )

    def enable_failure_detection(
        self,
        home_device: str | None = None,
        period_s: float = 0.5,
        timeout_s: float | None = None,
        miss_threshold: int = 3,
    ) -> FailureDetector:
        """Turn on heartbeat-based failure detection from *home_device*
        (default: the first device). Every current and future device gets a
        heartbeat responder and is watched."""
        if self.detector is None:
            if not self.devices:
                raise ConfigError("add devices before enabling detection")
            home = home_device or next(iter(self.devices))
            if home not in self.devices:
                raise DeviceError(f"unknown device {home!r}")
            self.detector = FailureDetector(
                self.kernel,
                self._get_transport(),
                home,
                period_s=period_s,
                timeout_s=timeout_s,
                miss_threshold=miss_threshold,
            )
            for device in self.devices.values():
                self._install_heartbeat(device)
                if device.spec.name != home:
                    self.detector.watch(device.spec.name)
            self.detector.start()
            if self.monitor is not None:
                self.monitor.add_probe("failures", failure_probe(self.detector))
        return self.detector

    def enable_fault_injection(self, plan: FaultPlan) -> ChaosInjector:
        """Arm a fault plan against this home (one injector per home)."""
        if self.injector is not None:
            raise ConfigError("fault injection already enabled")
        self.injector = ChaosInjector(self, plan)
        self.injector.arm()
        return self.injector

    def enable_orchestration(self, period_s: float = 1.0) -> Orchestrator:
        """Turn on the remediation loop (creates the monitor if needed)."""
        if self.orchestrator is None:
            monitor = self.enable_monitoring()
            self.orchestrator = Orchestrator(
                self.kernel, monitor, period_s=period_s
            )
            self.orchestrator.start()
        return self.orchestrator

    def enable_self_healing(
        self, pipeline: Pipeline, cooldown_s: float = 1.0
    ) -> Orchestrator:
        """Close the §7 loop for *pipeline*: failure detection + a remedy
        that evacuates its modules off any device declared dead."""
        detector = self.enable_failure_detection()
        orchestrator = self.enable_orchestration()
        orchestrator.add_remedy(
            evacuate_dead_device_remedy(
                self, pipeline, detector, cooldown_s=cooldown_s
            )
        )
        return orchestrator

    # -- pipelines ------------------------------------------------------------------
    def plan(
        self,
        config: PipelineConfig,
        strategy: str = COLOCATED,
        default_device: str | None = None,
        host_device: str | None = None,
    ) -> PlacementPlan:
        """Compute a placement without deploying (inspection/testing)."""
        if strategy == COLOCATED:
            default = default_device or next(iter(self.devices))
            return plan_colocated(config, self.devices, self.registry, default)
        if strategy == SINGLE_HOST:
            host = host_device or next(iter(self.devices))
            return plan_single_host(config, self.devices, host)
        if strategy == COST_OPTIMIZED:
            default = default_device or next(iter(self.devices))
            return plan_cost_optimized(
                config, self.devices, self.registry, self.topology, default
            )
        if strategy == OPTIMIZED:
            default = default_device or next(iter(self.devices))
            return plan_optimized(
                config, self.devices, self.registry, self.topology, default,
                optimizer=self.optimizer.config if self.optimizer else None,
            )
        raise ConfigError(f"unknown placement strategy {strategy!r}")

    def deploy_pipeline(
        self,
        config: PipelineConfig,
        strategy: str = COLOCATED,
        default_device: str | None = None,
        host_device: str | None = None,
        module_instances: dict[str, Module] | None = None,
        prefer_local_services: bool = True,
        placement: PlacementPlan | None = None,
        slo: SLO | None = None,
        admission: str = "check",
    ) -> Pipeline | None:
        """Place and deploy a pipeline; returns its handle.

        With :meth:`enable_slo` active, the deploy is priced by admission
        control first. *admission* selects what happens when the predicted
        cost would violate the threshold: ``"check"`` (default) raises
        :class:`~repro.errors.AdmissionError` carrying the typed
        :class:`~repro.slo.spec.AdmissionDecision`; ``"queue"`` parks the
        deploy until capacity returns (returns ``None`` — the SLO
        controller deploys it later); ``"bypass"`` skips the check. A
        *slo* given here enrolls the pipeline with the controller (now, or
        when :meth:`enable_slo` is later called).
        """
        if admission not in ("check", "queue", "bypass"):
            raise ConfigError(f"unknown admission mode {admission!r}")
        if self.deployer is None:
            self.deployer = Deployer(
                self.kernel, self._get_transport(), self.devices, self.registry
            )
        if placement is None:
            placement = self.plan(config, strategy, default_device, host_device)
        gated = self.slo is not None and admission != "bypass"
        if gated:
            decision = self.slo.admit(
                config, placement, queue=(admission == "queue")
            )
            if decision.action == REJECTED:
                raise AdmissionError(decision.reason, decision)
            if decision.action == QUEUED:
                self.slo.enqueue(config, slo, {
                    "strategy": strategy,
                    "default_device": default_device,
                    "host_device": host_device,
                    "module_instances": module_instances,
                    "prefer_local_services": prefer_local_services,
                })
                return None
        try:
            pipeline = self.deployer.deploy(
                config,
                placement,
                module_instances=module_instances,
                prefer_local_services=prefer_local_services,
            )
        except Exception:
            if gated:
                # admitted but never deployed: withdrawn, so admission
                # conservation still balances
                self.slo.on_deploy_failed()
            raise
        if gated:
            self.slo.on_deployed()
        self.pipelines.append(pipeline)
        if self.optimizer is not None:
            self.optimizer.watch(pipeline)
        if self.tracer is not None:
            pipeline.wiring.tracer = self.tracer
        if self.liveops is not None:
            pipeline.wiring.lineage = self.liveops.lineage
        if self.auditor is not None:
            self.auditor.watch_metrics(pipeline.metrics)
        if self.monitor is not None:
            self.monitor.add_probe(
                f"pipeline/{pipeline.name}", pipeline_probe(pipeline)
            )
        if self.slo is not None:
            self.slo.watch(pipeline, slo)
        elif slo is not None:
            self._pending_slos[config.name] = slo
        return pipeline

    def migrate_module(self, pipeline: Pipeline, module_name: str,
                       target_device: str) -> None:
        """Live-migrate a module (with its encapsulated state) to another
        device; peers re-route automatically through the shared wiring."""
        if self.deployer is None:
            raise ConfigError("nothing deployed yet")
        self.deployer.migrate(pipeline, module_name, target_device)

    # -- execution ----------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.kernel.now

    def run(self, until: float | None = None) -> float:
        """Run the home until *until* (or until idle)."""
        return self.kernel.run(until=until)

    def run_for(self, seconds: float) -> float:
        """Run the home for *seconds* more simulated seconds."""
        return self.kernel.run(until=self.kernel.now + seconds)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<VideoPipe {len(self.devices)} devices,"
            f" services={self.registry.service_names()}>"
        )
