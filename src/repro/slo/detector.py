"""Overload detection: classify a pipeline's live state against its SLO.

The detector is read-only. Each reading combines three signals that already
exist in the system — the pipeline's completion stream (latency tail and
delivered fps, via :meth:`MetricsCollector.latency_events
<repro.metrics.collector.MetricsCollector.latency_events>`), and queue
pressure on the services the pipeline calls (via
:func:`~repro.services.balancer.service_pressure`) — into one of three
states:

* ``healthy`` — every signal inside its target;
* ``strained`` — a target is being missed but not badly: the hold band.
  The controller takes no action here, which is what gives the closed loop
  its hysteresis;
* ``overloaded`` — the tail latency ratio or queue pressure crossed the
  overload threshold, or delivered fps fell well under the minimum. The
  controller degrades one ladder step.

The no-queue credit gate (§2.3) shapes what overload looks like: a
pipeline sharing a saturated service does not build an internal backlog —
its per-frame latency stretches (queueing at the service host) and its
delivered fps sags. Both show up in the completion stream, which is why
the detector reads that rather than mailbox depths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..services.balancer import service_pressure
from .spec import HEALTHY, OVERLOADED, STRAINED, SLO, SLOConfig, quantile

if TYPE_CHECKING:  # pragma: no cover
    from ..core.videopipe import VideoPipe
    from ..pipeline.pipeline import Pipeline


@dataclass(frozen=True, slots=True)
class DetectorReading:
    """One classification instant for one pipeline."""

    at: float
    state: str
    latency_ratio: float
    fps_ratio: float
    queue_pressure: float
    samples: int
    paused: bool = False


def classify_signals(
    slo: SLO,
    config: SLOConfig,
    *,
    at: float,
    latency_ratio: float,
    fps_ratio: float,
    queue_pressure: float,
    samples: int,
    ever_completed: bool,
    paused: bool = False,
) -> DetectorReading:
    """Pure classification rules over already-gathered signals.

    A *paused* pipeline (the ladder's last rung) emits no frames, so its
    latency/fps ratios are meaningless — it is judged on queue pressure
    alone, which is also its recovery signal: once the services it shares
    drain, the pipeline reads healthy and the controller resumes it.
    """
    if paused:
        if queue_pressure >= config.queue_overload:
            state = OVERLOADED
        elif queue_pressure >= config.queue_strain:
            state = STRAINED
        else:
            state = HEALTHY
        return DetectorReading(
            at=at, state=state, latency_ratio=latency_ratio,
            fps_ratio=fps_ratio, queue_pressure=queue_pressure,
            samples=samples, paused=True,
        )
    trusted = samples >= config.min_samples
    # a pipeline that completed frames before but produced none in the
    # whole window has stalled: fps_ratio 0 is real, not a cold start
    stalled = ever_completed and samples == 0
    overloaded = (
        (trusted and latency_ratio >= config.overload_ratio)
        or ((trusted or stalled) and fps_ratio < config.fps_overload_frac)
        or queue_pressure >= config.queue_overload
    )
    strained = (
        (trusted and latency_ratio > 1.0)
        or ((trusted or stalled) and fps_ratio < 1.0)
        or queue_pressure >= config.queue_strain
    )
    state = OVERLOADED if overloaded else (STRAINED if strained else HEALTHY)
    return DetectorReading(
        at=at, state=state, latency_ratio=latency_ratio, fps_ratio=fps_ratio,
        queue_pressure=queue_pressure, samples=samples, paused=False,
    )


class OverloadDetector:
    """Gathers live signals from a home and classifies each pipeline."""

    def __init__(self, home: "VideoPipe", config: SLOConfig | None = None) -> None:
        self.home = home
        self.config = config or SLOConfig()

    def reading(
        self,
        pipeline: "Pipeline",
        slo: SLO,
        *,
        enrolled_at: float = 0.0,
        paused: bool = False,
    ) -> DetectorReading:
        """Classify *pipeline* now."""
        now = self.home.kernel.now
        events = pipeline.metrics.latency_events()
        # scale the window down right after enrollment so a cold pipeline's
        # first seconds aren't judged as a dropped frame rate
        window = min(slo.window_s, max(now - enrolled_at, 1e-9))
        cutoff = now - window
        recent: list[float] = []
        for at, latency in reversed(events):
            if at <= cutoff:
                break
            recent.append(latency)
        samples = len(recent)
        fps_ratio = (samples / window) / slo.min_fps
        latency_ratio = (
            quantile(recent, 0.99) / slo.p99_latency_s if recent else 0.0
        )
        return classify_signals(
            slo, self.config,
            at=now,
            latency_ratio=latency_ratio,
            fps_ratio=fps_ratio,
            queue_pressure=self.queue_pressure(pipeline),
            samples=samples,
            ever_completed=bool(events),
            paused=paused,
        )

    def queue_pressure(self, pipeline: "Pipeline") -> float:
        """Total backlog on the services this pipeline's modules call."""
        services: set[str] = set()
        for name in pipeline.config.module_names():
            services.update(pipeline.config.module(name).services)
        return sum(
            service_pressure(self.home.registry, service)
            for service in sorted(services)
        )
