"""SLO guardian: declarations, overload detection, closed-loop control.

See :mod:`repro.slo.spec` for the :class:`SLO` contract,
:mod:`repro.slo.detector` for classification, :mod:`repro.slo.ladder` for
the reversible degradation ladder, :mod:`repro.slo.admission` for
deploy-time admission control and :mod:`repro.slo.controller` for the loop
that ties them together. ``docs/SLO.md`` walks through the design.
"""

from .admission import AdmissionController, pipeline_fps
from .controller import Enrollment, QueuedDeploy, SLOController
from .detector import DetectorReading, OverloadDetector, classify_signals
from .ladder import LadderAction, LadderStep, build_ladder, find_source
from .spec import (
    ADMITTED,
    HEALTHY,
    OVERLOADED,
    QUEUED,
    REJECTED,
    SLO,
    STRAINED,
    AdmissionDecision,
    SLOConfig,
    attainment,
    quantile,
)

__all__ = [
    "ADMITTED",
    "AdmissionController",
    "AdmissionDecision",
    "DetectorReading",
    "Enrollment",
    "HEALTHY",
    "LadderAction",
    "LadderStep",
    "OVERLOADED",
    "OverloadDetector",
    "QUEUED",
    "QueuedDeploy",
    "REJECTED",
    "SLO",
    "SLOConfig",
    "SLOController",
    "STRAINED",
    "attainment",
    "build_ladder",
    "classify_signals",
    "find_source",
    "pipeline_fps",
    "quantile",
]
