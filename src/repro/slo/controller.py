"""The SLO controller: a closed loop from detection to actuation.

Every ``check_interval_s`` the controller classifies each enrolled
pipeline (:class:`~repro.slo.detector.OverloadDetector`) and actuates the
degradation ladder (:mod:`repro.slo.ladder`):

* ``overloaded`` — apply the next rung (one per action);
* ``strained`` — hold: the band between thresholds is the loop's
  hysteresis in *state* space;
* ``healthy`` for ``recovery_hold_s`` — restore the most recent rung, so
  recovery retraces the ladder in exactly reverse order back to full
  fidelity.

Actions on one pipeline are additionally spaced ``hysteresis_s`` apart in
*time*, whichever direction they go — the auditor's ladder invariants
(:meth:`~repro.audit.auditor.InvariantAuditor.on_slo_action`) hold the
controller to that.

The controller also owns deploy-time admission
(:class:`~repro.slo.admission.AdmissionController`) and the queue of
deploys admission parked; its loop re-prices the queue head each tick and
deploys it when capacity has returned. Conservation over the whole flow —
``deploys_requested == deploys_deployed + deploys_rejected +
deploys_withdrawn + queued_now`` — is an audited invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..errors import Interrupt
from ..metrics.collector import MetricsCollector
from .admission import AdmissionController
from .detector import DetectorReading, OverloadDetector
from .ladder import LadderAction, LadderStep, build_ladder
from .spec import (
    ADMITTED,
    HEALTHY,
    OVERLOADED,
    QUEUED,
    REJECTED,
    SLO,
    AdmissionDecision,
    SLOConfig,
    attainment,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..core.videopipe import VideoPipe
    from ..pipeline.config import PipelineConfig
    from ..pipeline.pipeline import Pipeline

_EPS = 1e-9


@dataclass
class Enrollment:
    """Per-pipeline controller state."""

    pipeline: "Pipeline"
    slo: SLO
    ladder: list[LadderStep]
    enrolled_at: float
    state: str = HEALTHY
    #: (rung index, step) for every currently-applied rung, in order.
    applied: list[tuple[int, LadderStep]] = field(default_factory=list)
    last_action_at: float | None = None
    healthy_since: float | None = None
    readings: list[DetectorReading] = field(default_factory=list)
    actions: list[LadderAction] = field(default_factory=list)

    @property
    def depth(self) -> int:
        return len(self.applied)

    @property
    def paused(self) -> bool:
        return any(step.name == "pause" for _, step in self.applied)

    def applied_steps(self) -> list[str]:
        return [step.name for _, step in self.applied]


@dataclass
class QueuedDeploy:
    """A deploy admission parked until capacity returns."""

    config: "PipelineConfig"
    slo: SLO | None
    kwargs: dict[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.config.name


class SLOController:
    """Holds enrolled pipelines to their SLOs by actuating existing knobs."""

    def __init__(
        self,
        home: "VideoPipe",
        config: SLOConfig | None = None,
        default_slo: SLO | None = None,
    ) -> None:
        self.home = home
        self.kernel = home.kernel
        self.config = config or SLOConfig()
        self.default_slo = default_slo
        self.detector = OverloadDetector(home, self.config)
        self.admission = AdmissionController(home, self.config)
        #: Home-level counters (``deploys_*``); per-pipeline counters such
        #: as ``service_rejections`` live on each pipeline's collector.
        self.metrics = MetricsCollector("slo")
        self._enrolled: dict[str, Enrollment] = {}
        self._queue: list[QueuedDeploy] = []
        #: Every ladder action across all pipelines, in order.
        self.actions: list[LadderAction] = []
        self._running = False
        self._proc = None
        #: The home's auditor, or ``None`` (set by ``watch_slo``).
        self.auditor: Any = None

    # -- enrollment ----------------------------------------------------------
    def watch(self, pipeline: "Pipeline", slo: SLO | None = None) -> Enrollment | None:
        """Enroll *pipeline* under *slo* (or the controller default).

        Returns the enrollment, or ``None`` when neither an explicit SLO
        nor a default exists — a pipeline with no stated objective is left
        alone. Idempotent by pipeline name."""
        existing = self._enrolled.get(pipeline.config.name)
        if existing is not None:
            return existing
        effective = slo or self.default_slo
        if effective is None:
            return None
        enrollment = Enrollment(
            pipeline=pipeline,
            slo=effective,
            ladder=build_ladder(self.home, pipeline, effective, self.config),
            enrolled_at=self.kernel.now,
        )
        self._enrolled[pipeline.config.name] = enrollment
        return enrollment

    def enrollment(self, name: str) -> Enrollment | None:
        return self._enrolled.get(name)

    @property
    def enrollments(self) -> list[Enrollment]:
        return list(self._enrolled.values())

    # -- control loop --------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._proc = self.kernel.process(self._loop(), name="slo-controller")

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        if self._proc is not None and self._proc.alive:
            self._proc.interrupt("slo controller stopped")
        self._proc = None

    def _loop(self):
        try:
            while self._running:
                yield self.config.check_interval_s
                self._tick()
        except Interrupt:
            return

    def _tick(self) -> None:
        self._drain_queue()
        now = self.kernel.now
        for enrollment in list(self._enrolled.values()):
            if enrollment.pipeline.stopped:
                continue
            reading = self.detector.reading(
                enrollment.pipeline, enrollment.slo,
                enrolled_at=enrollment.enrolled_at,
                paused=enrollment.paused,
            )
            enrollment.state = reading.state
            enrollment.readings.append(reading)
            if len(enrollment.readings) > self.config.history:
                del enrollment.readings[: -self.config.history]
            if reading.state == OVERLOADED:
                enrollment.healthy_since = None
                if self._can_act(enrollment, now):
                    self._degrade(enrollment, now)
            elif reading.state == HEALTHY:
                if enrollment.healthy_since is None:
                    enrollment.healthy_since = now
                elif (
                    enrollment.applied
                    and now - enrollment.healthy_since
                    >= self.config.recovery_hold_s - _EPS
                    and self._can_act(enrollment, now)
                ):
                    self._restore(enrollment, now)
            else:  # strained: the hold band — no action, no recovery credit
                enrollment.healthy_since = None

    def _can_act(self, enrollment: Enrollment, now: float) -> bool:
        last = enrollment.last_action_at
        return last is None or now - last >= self.config.hysteresis_s - _EPS

    def _degrade(self, enrollment: Enrollment, now: float) -> None:
        start = enrollment.applied[-1][0] + 1 if enrollment.applied else 0
        for rung in range(start, len(enrollment.ladder)):
            step = enrollment.ladder[rung]
            detail = step.apply()
            if detail is None:
                continue  # rung not actionable right now; try the next
            depth_before = enrollment.depth
            enrollment.applied.append((rung, step))
            self._record(enrollment, LadderAction(
                at=now, pipeline=enrollment.pipeline.config.name,
                step=step.name, direction="degrade",
                depth_before=depth_before, depth_after=enrollment.depth,
                detail=detail,
            ))
            return
        # ladder exhausted: nothing left to shed

    def _restore(self, enrollment: Enrollment, now: float) -> None:
        rung, step = enrollment.applied[-1]
        detail = step.revert()
        depth_before = enrollment.depth
        enrollment.applied.pop()
        self._record(enrollment, LadderAction(
            at=now, pipeline=enrollment.pipeline.config.name,
            step=step.name, direction="restore",
            depth_before=depth_before, depth_after=enrollment.depth,
            detail=detail,
        ))

    def _record(self, enrollment: Enrollment, action: LadderAction) -> None:
        enrollment.last_action_at = action.at
        enrollment.actions.append(action)
        self.actions.append(action)
        self.metrics.increment(f"slo_{action.direction}s")
        if self.auditor is not None:
            self.auditor.on_slo_action(self, action)

    # -- admission flow ------------------------------------------------------
    def admit(
        self,
        config: "PipelineConfig",
        placement,
        queue: bool = False,
    ) -> AdmissionDecision:
        """Price one deploy request (the facade calls this from
        :meth:`~repro.core.videopipe.VideoPipe.deploy_pipeline`)."""
        self.metrics.increment("deploys_requested")
        decision = self.admission.decide(
            config, placement, on_reject=QUEUED if queue else REJECTED
        )
        if decision.action == ADMITTED:
            self.metrics.increment("deploys_admitted")
        elif decision.action == REJECTED:
            self.metrics.increment("deploys_rejected")
        if self.auditor is not None:
            self.auditor.on_admission(self, decision)
        return decision

    def enqueue(
        self,
        config: "PipelineConfig",
        slo: SLO | None,
        kwargs: dict[str, Any] | None = None,
    ) -> QueuedDeploy:
        item = QueuedDeploy(config=config, slo=slo, kwargs=dict(kwargs or {}))
        self._queue.append(item)
        self.metrics.increment("deploys_queued")
        return item

    def withdraw(self, name: str) -> bool:
        """Remove a queued deploy by pipeline name; ``True`` if found."""
        for index, item in enumerate(self._queue):
            if item.name == name:
                del self._queue[index]
                self.metrics.increment("deploys_withdrawn")
                return True
        return False

    def on_deployed(self) -> None:
        """An admitted deploy completed (facade bookkeeping)."""
        self.metrics.increment("deploys_deployed")

    def on_deploy_failed(self) -> None:
        """An admitted deploy failed in the deployer — counted as withdrawn
        so admission conservation still balances."""
        self.metrics.increment("deploys_withdrawn")

    @property
    def queued(self) -> list[QueuedDeploy]:
        return list(self._queue)

    def _drain_queue(self) -> None:
        while self._queue:
            item = self._queue[0]
            try:
                placement = self.home.plan(
                    item.config,
                    strategy=item.kwargs.get("strategy", "colocated"),
                    default_device=item.kwargs.get("default_device"),
                    host_device=item.kwargs.get("host_device"),
                )
            except Exception:
                return  # cannot even plan right now; retry next tick
            decision = self.admission.decide(
                item.config, placement, on_reject=QUEUED
            )
            if self.auditor is not None:
                self.auditor.on_admission(self, decision)
            if decision.action != ADMITTED:
                return  # head still does not fit; keep FIFO order
            self._queue.pop(0)
            self.metrics.increment("deploys_admitted")
            try:
                self.home.deploy_pipeline(
                    item.config, placement=placement, slo=item.slo,
                    admission="bypass", **{
                        k: v for k, v in item.kwargs.items()
                        if k not in ("strategy", "default_device", "host_device")
                    },
                )
            except Exception:
                self.metrics.increment("deploys_withdrawn")
                continue
            self.metrics.increment("deploys_deployed")

    # -- reporting -----------------------------------------------------------
    def attainment(
        self,
        name: str,
        start: float | None = None,
        end: float | None = None,
        bucket_s: float = 1.0,
    ) -> float:
        """SLO attainment for one enrolled pipeline over ``[start, end)``
        (defaults: enrollment time to now)."""
        enrollment = self._enrolled[name]
        return attainment(
            enrollment.slo,
            enrollment.pipeline.metrics.latency_events(),
            start=enrollment.enrolled_at if start is None else start,
            end=self.kernel.now if end is None else end,
            bucket_s=bucket_s,
        )

    def status(self) -> dict:
        """The facade's ``slo_status()`` payload."""
        pipelines = {}
        for name, enrollment in self._enrolled.items():
            pipelines[name] = {
                "state": enrollment.state,
                "slo": enrollment.slo.as_dict(),
                "depth": enrollment.depth,
                "applied": enrollment.applied_steps(),
                "actions": len(enrollment.actions),
                "attainment": self.attainment(name),
            }
        counters = self.metrics.counters()
        return {
            "pipelines": pipelines,
            "admission": {
                "requested": counters.get("deploys_requested", 0),
                "admitted": counters.get("deploys_admitted", 0),
                "rejected": counters.get("deploys_rejected", 0),
                "queued": counters.get("deploys_queued", 0),
                "withdrawn": counters.get("deploys_withdrawn", 0),
                "deployed": counters.get("deploys_deployed", 0),
                "queued_now": [item.name for item in self._queue],
                "threshold": self.config.admission_threshold,
            },
            "actions_total": len(self.actions),
        }
