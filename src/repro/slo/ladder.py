"""The reversible degradation ladder.

When a pipeline is overloaded the controller applies exactly one rung per
action, in a fixed order chosen so fidelity is spent last:

1. **scale up** — add a service replica through the
   :class:`~repro.services.scaling.AutoScaler` (no fidelity cost);
2. **replan** — ask the :class:`~repro.pipeline.optimizer.OnlineOptimizer`
   for a better placement (no fidelity cost);
3. **resolution** — shrink capture resolution (smaller JPEG wire size and
   encode/decode compute; content fidelity drops);
4. **service tier** — switch the heavy services to a cheaper compute tier
   (model fidelity drops);
5. **fps** — lower the source rate, never below the SLO's ``min_fps``;
6. **pause** — stop admitting frames entirely: the explicit, reversible
   form of "drop the pipeline", taken only when everything above failed.

Every rung records what it changed and restores exactly that on revert, so
recovery — steps popped in reverse order as load clears — returns the
pipeline to full fidelity: original resolution, original fps, original
service tier, original replica count.

A rung that is not actionable right now (no camera to shrink, autoscaler
refuses under cooldown, optimizer sees nothing better) returns ``None``
from :meth:`LadderStep.apply` and the controller moves past it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .spec import SLO, SLOConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..core.videopipe import VideoPipe
    from ..pipeline.pipeline import Pipeline


@dataclass(frozen=True, slots=True)
class LadderAction:
    """Record of one controller actuation (a degrade or a restore)."""

    at: float
    pipeline: str
    step: str
    direction: str  # "degrade" | "restore"
    depth_before: int
    depth_after: int
    detail: str


class LadderStep:
    """One reversible knob. ``apply`` returns a human-readable detail of
    what changed, or ``None`` when the rung is not actionable right now;
    ``revert`` undoes exactly what the matching ``apply`` did."""

    name = "step"

    def apply(self) -> str | None:  # pragma: no cover - interface
        raise NotImplementedError

    def revert(self) -> str:  # pragma: no cover - interface
        raise NotImplementedError


class ScaleUpStep(LadderStep):
    """Add one replica to the most backlogged service the pipeline calls."""

    name = "scale_up"

    def __init__(self, home: "VideoPipe", services: list[str]) -> None:
        self.home = home
        self.services = sorted(services)
        self._host = None

    def _pick_host(self):
        candidates = []
        for service in self.services:
            for host in self.home.registry.hosts_of(service):
                if host.up and host.device.up:
                    candidates.append(host)
        if not candidates:
            return None
        # the deepest backlog first; device name breaks ties so the pick is
        # deterministic
        return max(
            candidates,
            key=lambda h: (h.queue_length + h.busy_workers, h.device.name),
        )

    def apply(self) -> str | None:
        scaler = self.home.autoscaler
        if scaler is None:
            return None
        host = self._pick_host()
        if host is None:
            return None
        if not scaler.request_scale(host, +1, reason="slo_degrade"):
            return None
        self._host = host
        return (
            f"replicas {host.service_name}@{host.device.name}"
            f" -> {host.replicas}"
        )

    def revert(self) -> str:
        host, self._host = self._host, None
        scaler = self.home.autoscaler
        if host is None or scaler is None:
            return "no replica to retire"
        if host.up and scaler.request_scale(host, -1, reason="slo_restore"):
            return (
                f"replicas {host.service_name}@{host.device.name}"
                f" -> {host.replicas}"
            )
        return f"replica retire refused for {host.service_name}"


class ReplanStep(LadderStep):
    """Ask the online optimizer to reconsider this pipeline's placement."""

    name = "replan"

    def __init__(self, home: "VideoPipe", pipeline: "Pipeline") -> None:
        self.home = home
        self.pipeline = pipeline

    def apply(self) -> str | None:
        optimizer = self.home.optimizer
        if optimizer is None:
            return None
        event = optimizer.replan_now(self.pipeline)
        if event is None:
            return None
        moves = ", ".join(
            f"{name}:{src}->{dst}"
            for name, (src, dst) in sorted(event.moves.items())
        )
        return f"replanned ({moves})"

    def revert(self) -> str:
        # placement has no 'previous' to restore — load changed, so let the
        # optimizer re-place for the recovered regime instead
        optimizer = self.home.optimizer
        if optimizer is not None:
            event = optimizer.replan_now(self.pipeline)
            if event is not None:
                return "replanned for recovered load"
        return "placement kept"


class ResolutionStep(LadderStep):
    """Shrink the capture resolution by ``resolution_factor``."""

    name = "resolution"

    def __init__(self, camera, factor: float) -> None:
        self.camera = camera
        self.factor = factor
        self._prev: tuple[int, int] | None = None

    def apply(self) -> str | None:
        camera = self.camera
        if camera is None or not hasattr(camera, "set_resolution"):
            return None
        width, height = camera.width, camera.height
        new_w = max(16, round(width * self.factor))
        new_h = max(16, round(height * self.factor))
        if (new_w, new_h) == (width, height):
            return None
        self._prev = (width, height)
        camera.set_resolution(new_w, new_h)
        return f"resolution {width}x{height} -> {new_w}x{new_h}"

    def revert(self) -> str:
        prev, self._prev = self._prev, None
        if prev is None or self.camera is None:
            return "resolution kept"
        self.camera.set_resolution(*prev)
        return f"resolution -> {prev[0]}x{prev[1]}"


class TierStep(LadderStep):
    """Move the heavy services to a cheaper compute tier (``tier_factor``
    on ``reference_cost_s``) — a stand-in for swapping in a smaller model,
    which also cheapens every *other* pipeline's calls to the service."""

    name = "service_tier"

    def __init__(self, home: "VideoPipe", services: tuple[str, ...],
                 factor: float) -> None:
        self.home = home
        self.services = services
        self.factor = factor
        self._originals: list[tuple[object, float]] = []

    def apply(self) -> str | None:
        seen: set[int] = set()
        changed: list[str] = []
        for service_name in self.services:
            for host in self.home.registry.hosts_of(service_name):
                service = host.service
                if id(service) in seen:
                    continue
                seen.add(id(service))
                self._originals.append((service, service.reference_cost_s))
                service.reference_cost_s *= self.factor
                changed.append(
                    f"{service_name}@{host.device.name}"
                    f"={service.reference_cost_s * 1e3:.1f}ms"
                )
        if not changed:
            return None
        return "tier down: " + ", ".join(changed)

    def revert(self) -> str:
        originals, self._originals = self._originals, []
        if not originals:
            return "tier kept"
        for service, cost in originals:
            service.reference_cost_s = cost
        return f"tier restored for {len(originals)} service instance(s)"


class FpsStep(LadderStep):
    """Lower the source rate by ``fps_factor``, floored at ``min_fps``."""

    name = "fps"

    def __init__(self, source, factor: float, floor_fps: float) -> None:
        self.source = source
        self.factor = factor
        self.floor_fps = floor_fps
        self._prev: float | None = None

    def apply(self) -> str | None:
        source = self.source
        if source is None:
            return None
        current = source.fps
        new = max(self.floor_fps, current * self.factor)
        if new >= current - 1e-9:
            return None  # already at (or under) the SLO floor
        self._prev = current
        source.set_fps(new)
        return f"fps {current:.1f} -> {new:.1f}"

    def revert(self) -> str:
        prev, self._prev = self._prev, None
        if prev is None or self.source is None:
            return "fps kept"
        self.source.set_fps(prev)
        return f"fps -> {prev:.1f}"


class PauseStep(LadderStep):
    """Stop admitting frames — reversible 'drop the pipeline'."""

    name = "pause"

    def __init__(self, source) -> None:
        self.source = source

    def apply(self) -> str | None:
        source = self.source
        if source is None or source.paused:
            return None
        source.set_paused(True)
        return "paused"

    def revert(self) -> str:
        if self.source is not None:
            self.source.set_paused(False)
        return "resumed"


def find_source(pipeline: "Pipeline"):
    """The pipeline's :class:`~repro.frames.video_source.VideoSource`, or
    ``None`` for pipelines without a paced source module."""
    for name in pipeline.config.module_names():
        try:
            instance = pipeline.module_instance(name)
        except Exception:
            continue
        source = getattr(instance, "source", None)
        if source is not None and hasattr(source, "set_fps"):
            return source
    return None


def build_ladder(
    home: "VideoPipe",
    pipeline: "Pipeline",
    slo: SLO,
    config: SLOConfig,
) -> list[LadderStep]:
    """Construct the rungs applicable to *pipeline*, in degradation order."""
    source = find_source(pipeline)
    camera = getattr(source, "camera", None) if source is not None else None
    services: set[str] = set()
    for name in pipeline.config.module_names():
        services.update(pipeline.config.module(name).services)
    steps: list[LadderStep] = []
    for _ in range(config.max_extra_replicas):
        steps.append(ScaleUpStep(home, sorted(services)))
    if config.use_optimizer:
        steps.append(ReplanStep(home, pipeline))
    for _ in range(config.resolution_steps):
        steps.append(ResolutionStep(camera, config.resolution_factor))
    tiered = tuple(s for s in config.tier_services if s in services)
    if tiered and config.tier_factor < 1.0:
        steps.append(TierStep(home, tiered, config.tier_factor))
    for _ in range(config.fps_steps):
        steps.append(FpsStep(source, config.fps_factor, slo.min_fps))
    if config.allow_pause:
        steps.append(PauseStep(source))
    return steps
