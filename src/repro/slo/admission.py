"""Admission control: predicted-cost gating of new deploys.

Reuses the :class:`~repro.pipeline.optimizer.CostModel`'s utilization view
(offered busy-seconds per second per device, normalized by cores): the home
is already carrying its deployed pipelines' load, and a candidate deploy is
admitted only when the *combined* prediction stays under the configured
per-device threshold. A deploy that would push any device past it gets a
typed :data:`~repro.slo.spec.REJECTED` (or :data:`~repro.slo.spec.QUEUED`)
:class:`~repro.slo.spec.AdmissionDecision` instead of degrading the
pipelines that were promised an SLO.

The check **fails open**: when the cost model cannot price a candidate
(a service hosted nowhere yet, a device mid-crash), the deploy is admitted
with the reason recorded — admission control protects SLOs from load, not
from configuration errors, which the deployer reports on its own.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..pipeline.optimizer import CostModel, OptimizerConfig
from .spec import ADMITTED, QUEUED, REJECTED, AdmissionDecision, SLOConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..core.videopipe import VideoPipe
    from ..pipeline.config import PipelineConfig
    from ..pipeline.placement import PlacementPlan

#: Fallback offered load when a pipeline's source declares no fps.
DEFAULT_FPS = 10.0


def pipeline_fps(config: "PipelineConfig") -> float:
    """The offered load a pipeline's source declares (its ``fps`` param)."""
    try:
        fps = config.module(config.source_module).params.get("fps")
    except Exception:
        fps = None
    if not fps or fps <= 0:
        return DEFAULT_FPS
    return float(fps)


class AdmissionController:
    """Prices candidate deploys against the home's current load."""

    def __init__(self, home: "VideoPipe", config: SLOConfig | None = None) -> None:
        self.home = home
        self.config = config or SLOConfig()
        #: Every decision ever made, in order (the audit trail).
        self.decisions: list[AdmissionDecision] = []

    # -- prediction ----------------------------------------------------------
    def _pipeline_load(
        self, config: "PipelineConfig", assignments: dict[str, str]
    ) -> dict[str, float]:
        model = CostModel(
            config, self.home.devices, self.home.registry,
            self.home.topology,
            optimizer=OptimizerConfig(fps=pipeline_fps(config)),
        )
        return model.utilization(assignments)

    def predicted_utilization(
        self,
        candidate: "tuple[PipelineConfig, PlacementPlan] | None" = None,
    ) -> dict[str, float]:
        """Per-device utilization with every running pipeline — plus the
        *candidate* ``(config, placement)``, when given — deployed."""
        totals: dict[str, float] = {name: 0.0 for name in self.home.devices}
        loads = [
            (p.config, p.placement.assignments)
            for p in self.home.pipelines
            if not p.stopped
        ]
        if candidate is not None:
            loads.append((candidate[0], candidate[1].assignments))
        for config, assignments in loads:
            for device, load in self._pipeline_load(config, assignments).items():
                totals[device] = totals.get(device, 0.0) + load
        return totals

    # -- the decision --------------------------------------------------------
    def decide(
        self,
        config: "PipelineConfig",
        placement: "PlacementPlan",
        on_reject: str = REJECTED,
    ) -> AdmissionDecision:
        """Price admitting *config* at *placement* and record the verdict.

        ``on_reject`` selects the action recorded when the threshold is
        exceeded: :data:`REJECTED` (the deploy fails) or :data:`QUEUED`
        (the controller parks it until capacity returns).
        """
        now = self.home.kernel.now
        threshold = self.config.admission_threshold
        try:
            predicted = self.predicted_utilization((config, placement))
        except Exception as exc:  # fail open — see module docstring
            decision = AdmissionDecision(
                at=now, pipeline=config.name, action=ADMITTED,
                reason=f"cost model unavailable ({exc}); admitted unpriced",
                worst_device="", worst_utilization=0.0, threshold=threshold,
            )
            self.decisions.append(decision)
            return decision
        worst_device, worst = max(
            predicted.items(), key=lambda item: (item[1], item[0])
        )
        if worst <= threshold + 1e-9:
            action, reason = ADMITTED, (
                f"predicted utilization {worst:.2f} on {worst_device!r}"
                f" within threshold {threshold:.2f}"
            )
        else:
            action, reason = on_reject, (
                f"predicted utilization {worst:.2f} on {worst_device!r}"
                f" exceeds threshold {threshold:.2f}"
            )
        decision = AdmissionDecision(
            at=now, pipeline=config.name, action=action, reason=reason,
            worst_device=worst_device, worst_utilization=worst,
            threshold=threshold, predicted=predicted,
        )
        self.decisions.append(decision)
        return decision
