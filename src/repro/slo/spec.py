"""SLO declarations and attainment scoring.

The paper's pipelines get whatever latency their placement happens to give
them; this package inverts the contract (ROADMAP item 1). An :class:`SLO`
states what a pipeline's owner actually cares about — tail end-to-end
latency and a minimum delivered frame rate — and :func:`attainment` scores
a run against it: the fraction of one-second buckets in which **both**
targets held. Everything else in :mod:`repro.slo` (detection, the
degradation ladder, admission control) exists to keep that number high.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ConfigError

#: System states the :class:`~repro.slo.detector.OverloadDetector` reports.
HEALTHY = "healthy"
STRAINED = "strained"
OVERLOADED = "overloaded"

#: Admission decision outcomes.
ADMITTED = "admitted"
REJECTED = "rejected"
QUEUED = "queued"


@dataclass(frozen=True, slots=True)
class SLO:
    """A per-pipeline service-level objective.

    Attributes:
        p99_latency_s: target tail (p99) source-to-completion latency.
        min_fps: minimum delivered (completed) frames per second. The SLO
            controller's fps rung never degrades the source below this.
        window_s: trailing window the detector evaluates live signals over.
    """

    p99_latency_s: float = 0.25
    min_fps: float = 1.0
    window_s: float = 2.0

    def __post_init__(self) -> None:
        if self.p99_latency_s <= 0:
            raise ConfigError("p99_latency_s must be positive")
        if self.min_fps <= 0:
            raise ConfigError("min_fps must be positive")
        if self.window_s <= 0:
            raise ConfigError("window_s must be positive")

    def as_dict(self) -> dict:
        return {
            "p99_latency_s": self.p99_latency_s,
            "min_fps": self.min_fps,
            "window_s": self.window_s,
        }


@dataclass(frozen=True, slots=True)
class SLOConfig:
    """Knobs for the SLO controller, detector and admission check.

    Attributes:
        check_interval_s: controller loop period.
        hysteresis_s: minimum spacing between two ladder actions (either
            direction) on one pipeline — the anti-flapping guard the
            auditor enforces on every recorded action.
        recovery_hold_s: how long a pipeline must hold ``healthy`` before
            one ladder step is restored.
        overload_ratio: observed-tail / target latency ratio at (or above)
            which the detector reports ``overloaded``; ratios in
            ``[1, overload_ratio)`` report ``strained`` (the hold band).
        fps_overload_frac: delivered/min-fps ratio *below* which the
            detector reports ``overloaded``; ``[fps_overload_frac, 1)``
            reports ``strained``.
        queue_strain: service-queue pressure (see
            :func:`~repro.services.balancer.service_pressure`) at which a
            pipeline counts as strained.
        queue_overload: pressure at which it counts as overloaded.
        min_samples: completions required in the window before the
            latency/fps ratios are trusted (avoids judging a cold start).
        max_extra_replicas: scale-up rungs at the top of the ladder.
        use_optimizer: include a placement-replan rung (needs
            ``enable_optimizer``).
        resolution_steps: resolution rungs; each multiplies capture
            width/height by ``resolution_factor``.
        resolution_factor: per-rung resolution multiplier.
        tier_factor: cost multiplier for the service-tier rung (a cheaper,
            lower-fidelity model variant of each service in
            ``tier_services``).
        tier_services: services whose compute tier the ladder may degrade.
        fps_steps: fps rungs; each multiplies source fps by ``fps_factor``
            (floored at the pipeline's ``SLO.min_fps``).
        fps_factor: per-rung fps multiplier.
        allow_pause: include the last-resort pause rung (frames stop
            entering the pipeline until recovery resumes them).
        admission_threshold: maximum predicted per-device utilization
            (busy-seconds per second per core) a deploy may push the home
            to before admission control rejects or queues it.
        history: detector readings retained per pipeline.
    """

    check_interval_s: float = 0.5
    hysteresis_s: float = 1.5
    recovery_hold_s: float = 3.0
    overload_ratio: float = 1.25
    fps_overload_frac: float = 0.75
    queue_strain: float = 1.0
    queue_overload: float = 6.0
    min_samples: int = 3
    max_extra_replicas: int = 1
    use_optimizer: bool = True
    resolution_steps: int = 2
    resolution_factor: float = 0.7
    tier_factor: float = 0.6
    tier_services: tuple[str, ...] = ("pose_detector",)
    fps_steps: int = 2
    fps_factor: float = 0.7
    allow_pause: bool = True
    admission_threshold: float = 1.0
    history: int = 256

    def __post_init__(self) -> None:
        if self.check_interval_s <= 0:
            raise ConfigError("check_interval_s must be positive")
        if self.hysteresis_s < 0 or self.recovery_hold_s < 0:
            raise ConfigError("hysteresis and recovery hold must be >= 0")
        if self.overload_ratio < 1.0:
            raise ConfigError("overload_ratio must be >= 1")
        if not 0 < self.fps_overload_frac <= 1.0:
            raise ConfigError("fps_overload_frac must be in (0, 1]")
        if self.queue_strain < 0 or self.queue_overload < self.queue_strain:
            raise ConfigError("need 0 <= queue_strain <= queue_overload")
        if self.min_samples < 1:
            raise ConfigError("min_samples must be >= 1")
        if self.max_extra_replicas < 0:
            raise ConfigError("max_extra_replicas must be >= 0")
        if self.resolution_steps < 0 or self.fps_steps < 0:
            raise ConfigError("ladder step counts must be >= 0")
        if not 0 < self.resolution_factor < 1.0:
            raise ConfigError("resolution_factor must be in (0, 1)")
        if not 0 < self.fps_factor < 1.0:
            raise ConfigError("fps_factor must be in (0, 1)")
        if not 0 < self.tier_factor <= 1.0:
            raise ConfigError("tier_factor must be in (0, 1]")
        if self.admission_threshold <= 0:
            raise ConfigError("admission_threshold must be positive")
        if self.history < 1:
            raise ConfigError("history must be >= 1")


@dataclass(frozen=True)
class AdmissionDecision:
    """The typed outcome of one admission check at deploy time.

    ``action`` is one of :data:`ADMITTED`, :data:`REJECTED` or
    :data:`QUEUED`; ``predicted`` maps device name to the utilization the
    home would run at with the candidate deployed.
    """

    at: float
    pipeline: str
    action: str
    reason: str
    worst_device: str
    worst_utilization: float
    threshold: float
    predicted: dict[str, float] = field(default_factory=dict)

    @property
    def admitted(self) -> bool:
        return self.action == ADMITTED

    def as_dict(self) -> dict:
        return {
            "at": self.at,
            "pipeline": self.pipeline,
            "action": self.action,
            "reason": self.reason,
            "worst_device": self.worst_device,
            "worst_utilization": self.worst_utilization,
            "threshold": self.threshold,
            "predicted": dict(self.predicted),
        }


def quantile(values: list[float], q: float) -> float:
    """Nearest-rank quantile (ceil convention); 0.0 on an empty list."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ConfigError("q must be in [0, 1]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def attainment(
    slo: SLO,
    latency_events: list[tuple[float, float]],
    start: float,
    end: float,
    bucket_s: float = 1.0,
) -> float:
    """Fraction of *bucket_s* buckets in ``[start, end)`` meeting the SLO.

    A bucket complies when **both** hold: at least ``min_fps * bucket_s``
    frames completed in it, and the p99 of their latencies is at or under
    ``p99_latency_s``. A bucket with no completions at all fails (a stalled
    pipeline is not meeting anything). Only whole buckets count; 1.0 when
    the range holds none.
    """
    if bucket_s <= 0:
        raise ConfigError("bucket_s must be positive")
    buckets = int((end - start + 1e-9) // bucket_s)
    if buckets <= 0:
        return 1.0
    per_bucket: list[list[float]] = [[] for _ in range(buckets)]
    for at, latency in latency_events:
        index = int((at - start) // bucket_s)
        if 0 <= index < buckets:
            per_bucket[index].append(latency)
    needed = slo.min_fps * bucket_s - 1e-9
    compliant = 0
    for latencies in per_bucket:
        if len(latencies) < needed:
            continue
        if quantile(latencies, 0.99) <= slo.p99_latency_s + 1e-9:
            compliant += 1
    return compliant / buckets
