"""The application modules behind the paper's pipelines (Fig. 4).

Each module is the Python analog of the JavaScript file the configuration
``include``s — stateful, event-driven, talking to stateless services. The
fitness pipeline chains::

    VideoStreaming -> PoseDetection -> ActivityRecognition -> {RepCounter,
                                                               Display}
    RepCounter -> Display

with the display module granting the source its next-frame credit (§2.3).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..frames.video_source import SyntheticCamera, VideoSource
from ..motion.exercises import make_model
from ..motion.skeleton import Pose
from ..motion.trajectory import random_subject
from ..runtime.context import ModuleContext
from ..runtime.events import ModuleEvent
from ..runtime.module import Module
from ..runtime.registry import register_module
from ..vision.features import WINDOW_FRAMES, window_feature


@register_module("./VideoStreamingModule.js")
class VideoStreamingModule(Module):
    """The source: captures camera frames and feeds the pipeline under the
    no-queue credit protocol.

    Params (configuration ``params``):
        fps: camera frame rate.
        motion: activity label for the synthetic subject.
        duration_s / max_frames: capture bounds.
        mode: ``"signal"`` (paper) or ``"push"`` (queued ablation).
        render: render real pixels (slower, exercises the pixel path).
        capture_jitter_cv: camera timing jitter.
    """

    def __init__(
        self,
        fps: float = 10.0,
        motion: str = "squat",
        duration_s: float | None = None,
        max_frames: int | None = None,
        mode: str = "signal",
        render: bool = False,
        capture_jitter_cv: float = 0.02,
        period_s: float = 2.0,
        randomize_subject: bool = False,
        credit_timeout_s: float | None = None,
        static_scene: bool = False,
    ) -> None:
        self.fps = fps
        self.motion = motion
        self.duration_s = duration_s
        self.max_frames = max_frames
        self.mode = mode
        self.render = render
        self.capture_jitter_cv = capture_jitter_cv
        self.period_s = period_s
        self.randomize_subject = randomize_subject
        self.credit_timeout_s = credit_timeout_s
        #: Freeze the camera content after the first capture: every frame is
        #: byte-identical (fresh ids/timestamps), the dedup/cache workload.
        self.static_scene = static_scene
        self.source: VideoSource | None = None

    def init(self, ctx: ModuleContext) -> None:
        rng = ctx.rng("camera")
        subject = random_subject(rng) if self.randomize_subject else None
        camera = SyntheticCamera(
            ctx.device_name,
            make_model(self.motion, period_s=self.period_s),
            subject=subject,
            render=self.render,
            rng=rng if self.render else None,
            freeze=self.static_scene,
        )
        self.source = VideoSource(
            ctx._runtime.kernel,
            camera,
            fps=self.fps,
            deliver=lambda frame: self._admit(ctx, frame),
            mode=self.mode,
            jitter_cv=self.capture_jitter_cv,
            rng=rng,
            credit_timeout_s=self.credit_timeout_s,
            on_drop=lambda frame: ctx.frame_dropped(frame.frame_id),
        )
        self.source.start(duration_s=self.duration_s, max_frames=self.max_frames)

    def _admit(self, ctx: ModuleContext, frame) -> None:
        ctx.frame_entered(frame.frame_id)
        ref = ctx.store_frame(frame)
        ctx.call_next(
            {
                "frame": ref,
                "frame_id": frame.frame_id,
                "capture_time": frame.capture_time,
            }
        )

    def event_received(self, ctx: ModuleContext, event: ModuleEvent) -> Any:
        """The source has no upstream; data events are ignored."""

    def on_ready_signal(self, ctx: ModuleContext, event: ModuleEvent) -> Any:
        assert self.source is not None
        self.source.grant_credit()

    def shutdown(self, ctx: ModuleContext) -> None:
        if self.source is not None:
            self.source.stop()


@register_module("./PoseDetectorModule.js")
class PoseDetectionModule(Module):
    """Calls the pose service per frame; forwards keypoints (and, when the
    downstream needs pixels, the frame itself)."""

    service = "pose_detector"

    def __init__(self, forward_frame: bool = True) -> None:
        #: Pipelines that never render the frame downstream (e.g. gesture
        #: control) set this False so pixels stop travelling here.
        self.forward_frame = forward_frame

    def event_received(self, ctx: ModuleContext, event: ModuleEvent):
        def flow():
            payload = event.payload
            ref = payload["frame"]
            load_s = ctx.now - event.enqueued_at
            call_started = ctx.now
            try:
                result = yield ctx.call_service(self.service, {"frame": ref})
            except Exception:
                # a failed inference must not wedge the pipeline: free the
                # frame, refill the credit, surface the error to the runtime
                ctx.release(ref)
                ctx.metrics.increment("pose_failures")
                ctx.frame_completed(payload["frame_id"])
                ctx.signal_source()
                raise
            prepare_s = ctx.service_prepare_s(self.service)
            ctx.record_stage("load_frame", load_s + prepare_s)
            ctx.record_stage("pose_detection", ctx.now - call_started - prepare_s)
            if not result.get("detected"):
                # nothing to analyze: drop the frame, free the pipeline
                ctx.release(ref)
                ctx.metrics.increment("pose_misses")
                ctx.frame_completed(payload["frame_id"])
                ctx.signal_source()
                return
            out = {
                "frame_id": payload["frame_id"],
                "capture_time": payload["capture_time"],
                "keypoints": np.asarray(result["keypoints"]),
                "visibility": np.asarray(result["visibility"]),
                "pose_score": result["score"],
            }
            if self.forward_frame:
                out["frame"] = ref
            else:
                ctx.release(ref)
            ctx.call_next(out)

        return flow()


@register_module("./ActivityDetectorModule.js")
class ActivityRecognitionModule(Module):
    """Maintains the 15-frame window (module state) and calls the stateless
    activity classifier once the window is full."""

    def __init__(self, window: int = WINDOW_FRAMES, forward_frame_to: str = "display",
                 service: str = "activity_classifier") -> None:
        #: Which classifier backs this module — the fitness pipeline uses
        #: "activity_classifier", the gesture pipeline "gesture_classifier".
        self.service = service
        self.window = window
        #: Substring selecting which downstream modules receive the frame
        #: itself; the others get keypoints/labels only (the rep counter
        #: needs no pixels, so shipping it the frame would waste the link).
        self.forward_frame_to = forward_frame_to
        self._poses: list[Pose] = []

    def event_received(self, ctx: ModuleContext, event: ModuleEvent):
        def flow():
            payload = event.payload
            pose = Pose(payload["keypoints"], payload.get("visibility"))
            self._poses.append(pose)
            if len(self._poses) > self.window:
                self._poses.pop(0)
            label = None
            confidence = 0.0
            started = ctx.now
            if len(self._poses) == self.window:
                feature = window_feature(self._poses)
                try:
                    result = yield ctx.call_service(
                        self.service, {"window_feature": feature}
                    )
                    label = result["label"]
                    confidence = result["confidence"]
                except Exception:
                    # degrade to an unlabelled frame rather than stall
                    ctx.metrics.increment("activity_failures")
            ctx.record_stage("activity_detection", ctx.now - started)
            out = dict(payload)
            out["activity"] = label
            out["activity_confidence"] = confidence
            self._fan_out(ctx, out)

        return flow()

    def _fan_out(self, ctx: ModuleContext, out: dict) -> None:
        """Send the frame only to frame-consuming targets; others get a
        frame-free copy. Reference holds are balanced per frame-bearing send."""
        ref = out.pop("frame", None)
        frameless = out
        frame_targets = [
            t for t in ctx.next_modules if self.forward_frame_to in t
        ]
        other_targets = [
            t for t in ctx.next_modules if self.forward_frame_to not in t
        ]
        for target in other_targets:
            ctx.call_module(target, dict(frameless))
        if ref is None:
            # nothing to attach: frame-consuming targets still get the data
            for target in frame_targets:
                ctx.call_module(target, dict(frameless))
            return
        if not frame_targets:
            ctx.release(ref)
            return
        for _ in range(len(frame_targets) - 1):
            ctx.add_ref(ref)
        for target in frame_targets:
            ctx.call_module(target, dict(frameless, frame=ref))


@register_module("./RepCounterModule.js")
class RepCounterModule(Module):
    """Accumulates the bout's per-frame features (module state); ships them
    to the stateless rep counter service; forwards the count."""

    service = "rep_counter"

    def __init__(self, min_frames: int = 20, max_frames: int = 150) -> None:
        self.min_frames = min_frames
        self.max_frames = max_frames
        self._features: list[np.ndarray] = []
        self.reps = 0

    def event_received(self, ctx: ModuleContext, event: ModuleEvent):
        def flow():
            payload = event.payload
            pose = Pose(payload["keypoints"], payload.get("visibility"))
            self._features.append(pose.normalized().flatten())
            if len(self._features) > self.max_frames:
                self._features.pop(0)
            started = ctx.now
            if len(self._features) >= self.min_frames:
                try:
                    result = yield ctx.call_service(
                        self.service, {"features": np.stack(self._features)}
                    )
                    self.reps = result["reps"]
                except Exception:
                    # keep the previous count rather than stall the chain
                    ctx.metrics.increment("rep_count_failures")
            ctx.record_stage("rep_count", ctx.now - started)
            # frames fan out to display via ActivityRecognition; the rep
            # counter only forwards the number (Fig. 4)
            out = {
                "frame_id": payload["frame_id"],
                "capture_time": payload["capture_time"],
                "reps": self.reps,
            }
            if "frame" in payload:
                ctx.release(payload["frame"])
            ctx.call_next(out)

        return flow()


@register_module("./DisplayModule.js")
class DisplayModule(Module):
    """The sink: composites to the screen and — once it is done with the
    frame — signals the source for the next one (§2.3).

    Keeps the latest activity label and rep count as module state so every
    rendered frame carries current overlay info, whichever upstream event
    arrived last.
    """

    service = "display"

    def __init__(self) -> None:
        self.last_label: str | None = None
        self.last_reps: int | None = None
        self.frames_shown = 0

    def event_received(self, ctx: ModuleContext, event: ModuleEvent):
        payload = event.payload
        if "reps" in payload:
            self.last_reps = payload["reps"]
        if payload.get("activity") is not None:
            self.last_label = payload["activity"]
        ref = payload.get("frame")
        if ref is None:
            return  # a reps-only update; nothing to composite
        frame = ctx.get_frame(ref)

        def finish():
            ctx.record_stage("total_duration", ctx.now - frame.capture_time)
            ctx.frame_completed(payload["frame_id"])
            ctx.signal_source()

        def flow():
            finished = False
            try:
                call = ctx.call_service(
                    self.service,
                    {
                        "frame": ref,
                        "keypoints": payload.get("keypoints"),
                        "label": self.last_label,
                        "reps": self.last_reps,
                    },
                )
                if ctx.service_is_local(self.service):
                    # co-located display: the frame was handed over by
                    # reference, so the module is done with its data now —
                    # refill the source credit before the screen even paints
                    finish()
                    finished = True
                    yield call
                else:
                    # remote display: the module still owns the frame until
                    # the RPC has shipped it; only then is it 'done'
                    yield call
                    finish()
                    finished = True
                self.frames_shown += 1
            finally:
                # a crashed display call must neither leak the frame nor
                # starve the source of credit
                if not finished:
                    finish()
                ctx.release(ref)

        return flow()


@register_module("./GestureControlModule.js")
class GestureControlModule(Module):
    """Turns recognized gestures into IoT commands (§4.2).

    "Two examples are using 'clapping' to toggle the light in the living
    room and using 'waving' to toggle a doorbell camera." A gesture must be
    seen on ``confirm_frames`` consecutive windows to fire, and a per-target
    cooldown stops one long clap from toggling the light repeatedly.
    """

    def __init__(
        self,
        bindings: dict[str, str] | None = None,
        confirm_frames: int = 3,
        cooldown_s: float = 2.0,
        rest_label: str = "stand",
    ) -> None:
        self.bindings = bindings or {
            "clap": "living_room_light",
            "wave": "doorbell_camera",
        }
        self.confirm_frames = confirm_frames
        self.cooldown_s = cooldown_s
        self.rest_label = rest_label
        self._streak_label: str | None = None
        self._streak = 0
        self._last_fired: dict[str, float] = {}
        self.triggers: list[tuple[float, str, str]] = []

    def event_received(self, ctx: ModuleContext, event: ModuleEvent):
        def flow():
            payload = event.payload
            label = payload.get("activity")
            fired = None
            if label == self._streak_label:
                self._streak += 1
            else:
                self._streak_label = label
                self._streak = 1
            if (
                label is not None
                and label != self.rest_label
                and label in self.bindings
                and self._streak >= self.confirm_frames
            ):
                target = self.bindings[label]
                last = self._last_fired.get(target, -1e9)
                if ctx.now - last >= self.cooldown_s:
                    self._last_fired[target] = ctx.now
                    try:
                        yield ctx.call_service(
                            "iot_controller",
                            {"target": target, "action": "toggle"},
                        )
                        fired = (ctx.now, label, target)
                        self.triggers.append(fired)
                        ctx.metrics.increment("gesture_triggers")
                    except Exception:
                        ctx.metrics.increment("iot_failures")
            if "frame" in payload:
                ctx.release(payload["frame"])
            ctx.record_stage(
                "total_duration", ctx.now - payload["capture_time"]
            )
            ctx.frame_completed(payload["frame_id"])
            ctx.signal_source()

        return flow()


@register_module("./FallDetectorModule.js")
class FallDetectionModule(Module):
    """Detects falls from the pose stream (§4.3's fall detection pipeline).

    A fall is a rapid hip drop (more than ``drop_frac`` of body height
    within ``window_s``) that ends in a horizontal posture (bounding box
    wider than tall). On detection it raises an alert through the IoT
    service, once per ``realert_s``.
    """

    def __init__(
        self,
        drop_frac: float = 0.25,
        window_s: float = 1.5,
        aspect_threshold: float = 1.1,
        alert_target: str = "caregiver_alert",
        realert_s: float = 10.0,
    ) -> None:
        self.drop_frac = drop_frac
        self.window_s = window_s
        self.aspect_threshold = aspect_threshold
        self.alert_target = alert_target
        self.realert_s = realert_s
        self._history: list[tuple[float, float, float]] = []  # (t, hip_y, height)
        self._last_alert = -1e9
        self.falls_detected: list[float] = []

    def _posture(self, pose: Pose) -> tuple[float, float, float]:
        keypoints = pose.keypoints
        x0, y0 = keypoints.min(axis=0)
        x1, y1 = keypoints.max(axis=0)
        width = float(x1 - x0)
        height = float(y1 - y0)
        hip_y = float(pose.hip_center()[1])
        aspect = width / height if height > 1e-6 else float("inf")
        return hip_y, height, aspect

    def event_received(self, ctx: ModuleContext, event: ModuleEvent):
        def flow():
            payload = event.payload
            pose = Pose(payload["keypoints"], payload.get("visibility"))
            hip_y, height, aspect = self._posture(pose)
            now = payload["capture_time"]
            self._history.append((now, hip_y, height))
            cutoff = now - self.window_s
            self._history = [h for h in self._history if h[0] >= cutoff]
            is_fall = False
            if len(self._history) >= 2 and aspect >= self.aspect_threshold:
                oldest_hip = min(h[1] for h in self._history)
                reference_height = max(h[2] for h in self._history)
                drop = hip_y - oldest_hip  # y grows downward
                if reference_height > 0 and drop >= self.drop_frac * reference_height:
                    is_fall = True
            if is_fall and ctx.now - self._last_alert >= self.realert_s:
                self._last_alert = ctx.now
                self.falls_detected.append(ctx.now)
                ctx.metrics.increment("falls_detected")
                try:
                    yield ctx.call_service(
                        "iot_controller",
                        {"target": self.alert_target, "action": "on"},
                    )
                except Exception:
                    ctx.metrics.increment("iot_failures")
            if "frame" in payload:
                ctx.release(payload["frame"])
            ctx.frame_completed(payload["frame_id"])
            ctx.signal_source()

        return flow()
