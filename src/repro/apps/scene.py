"""Scene analytics: object detection + tracking over a synthetic room camera.

§4.3: "Real-time video analytics consisting of hand detection/tracking,
face detection/tracking and pose detection/tracking, can create ample
opportunities for new user interfaces with IoT devices". This module builds
the detection/tracking flavour of that family on the same VideoPipe
primitives: a camera watching household objects drift through the frame, a
detection module calling the object_detector service, and a tracking module
that keeps identity state while the stateless tracker service does the
association work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import modules as _modules  # noqa: F401 - registry side effects
from ..frames.frame import VideoFrame
from ..frames.video_source import VideoSource
from ..pipeline.config import ModuleConfig, PipelineConfig
from ..runtime.context import ModuleContext
from ..runtime.events import ModuleEvent
from ..runtime.module import Module
from ..runtime.registry import register_module
from ..vision.bbox import BBox
from ..vision.object_detector import COLOR_CLASSES, SceneObject, render_scene


@dataclass(slots=True)
class MovingObject:
    """One object drifting around the scene, bouncing off the edges."""

    kind: str
    x: float
    y: float
    vx: float
    vy: float
    size: float

    def at(self, t: float, width: int, height: int) -> SceneObject:
        """Position at time *t* with elastic reflection off the borders."""
        span_x = max(1.0, width - self.size)
        span_y = max(1.0, height - self.size)
        x = _bounce(self.x + self.vx * t, span_x)
        y = _bounce(self.y + self.vy * t, span_y)
        return SceneObject(
            self.kind, BBox(x, y, x + self.size, y + self.size)
        )


def _bounce(value: float, span: float) -> float:
    """Reflect *value* into [0, span] (triangle wave)."""
    period = 2.0 * span
    value = value % period
    return value if value <= span else period - value


class SceneCamera:
    """Renders an RGB frame of the moving objects at each capture."""

    def __init__(
        self,
        device: str,
        objects: list[MovingObject] | None = None,
        width: int = 160,
        height: int = 120,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.device = device
        self.width = width
        self.height = height
        self.rng = rng
        if objects is None:
            objects = default_scene(rng or np.random.default_rng(0),
                                    width, height)
        self.objects = objects

    def capture(self, frame_id: int, t: float) -> VideoFrame:
        scene = [obj.at(t, self.width, self.height) for obj in self.objects]
        pixels = render_scene(scene, self.width, self.height, rng=self.rng)
        return VideoFrame(
            frame_id=frame_id,
            source=self.device,
            capture_time=t,
            width=self.width,
            height=self.height,
            channels=3,
            pixels=pixels,
            metadata={"truth_objects": [(o.kind, o.bbox.as_tuple())
                                        for o in scene]},
        )


def default_scene(rng: np.random.Generator, width: int, height: int,
                  count: int = 3) -> list[MovingObject]:
    """A few distinct household objects with gentle drift."""
    kinds = list(COLOR_CLASSES)
    objects = []
    for i in range(count):
        objects.append(MovingObject(
            kind=kinds[i % len(kinds)],
            x=float(rng.uniform(0, width * 0.7)),
            y=float(rng.uniform(0, height * 0.7)),
            vx=float(rng.uniform(3.0, 9.0)) * (1 if i % 2 else -1),
            vy=float(rng.uniform(2.0, 6.0)),
            size=float(rng.uniform(14, 22)),
        ))
    return objects


@register_module("./SceneCameraModule.js")
class SceneCameraModule(Module):
    """Source module for the scene pipeline (credit-gated like §2.3)."""

    def __init__(self, fps: float = 10.0, duration_s: float | None = None,
                 object_count: int = 3) -> None:
        self.fps = fps
        self.duration_s = duration_s
        self.object_count = object_count
        self.source: VideoSource | None = None

    def init(self, ctx: ModuleContext) -> None:
        rng = ctx.rng("scene")
        camera = SceneCamera(
            ctx.device_name,
            objects=default_scene(rng, 160, 120, self.object_count),
            rng=rng,
        )
        self.source = VideoSource(
            ctx._runtime.kernel, camera, fps=self.fps,
            deliver=lambda frame: self._admit(ctx, frame),
            on_drop=lambda frame: ctx.frame_dropped(frame.frame_id),
        )
        self.source.start(duration_s=self.duration_s)

    def _admit(self, ctx: ModuleContext, frame: VideoFrame) -> None:
        ctx.frame_entered(frame.frame_id)
        ref = ctx.store_frame(frame)
        ctx.call_next({"frame": ref, "frame_id": frame.frame_id,
                       "capture_time": frame.capture_time})

    def event_received(self, ctx: ModuleContext, event: ModuleEvent):
        pass

    def on_ready_signal(self, ctx: ModuleContext, event: ModuleEvent):
        assert self.source is not None
        self.source.grant_credit()

    def shutdown(self, ctx: ModuleContext) -> None:
        if self.source is not None:
            self.source.stop()


@register_module("./ObjectDetectionModule.js")
class ObjectDetectionModule(Module):
    """Calls the object detector; forwards labelled boxes (drops pixels)."""

    def event_received(self, ctx: ModuleContext, event: ModuleEvent):
        def flow():
            payload = event.payload
            ref = payload["frame"]
            try:
                result = yield ctx.call_service("object_detector",
                                                {"frame": ref})
            except Exception:
                ctx.metrics.increment("detection_failures")
                ctx.frame_completed(payload["frame_id"])
                ctx.signal_source()
                raise
            finally:
                ctx.release(ref)
            ctx.call_next({
                "frame_id": payload["frame_id"],
                "capture_time": payload["capture_time"],
                "detections": result["detections"],
            })

        return flow()


@register_module("./ObjectTrackingModule.js")
class ObjectTrackingModule(Module):
    """Keeps track state (module state); the stateless service associates."""

    def __init__(self) -> None:
        self.tracks: list[dict] = []
        self.next_track_id = 1
        self.appeared: list[tuple[float, int, str]] = []
        self._seen_ids: set[int] = set()

    def event_received(self, ctx: ModuleContext, event: ModuleEvent):
        def flow():
            payload = event.payload
            try:
                result = yield ctx.call_service("object_tracker", {
                    "detections": payload["detections"],
                    "tracks": self.tracks,
                    "next_track_id": self.next_track_id,
                })
                self.tracks = result["tracks"]
                self.next_track_id = result["next_track_id"]
                for track in self.tracks:
                    if track["track_id"] not in self._seen_ids:
                        self._seen_ids.add(track["track_id"])
                        self.appeared.append(
                            (ctx.now, track["track_id"], track["label"])
                        )
                        ctx.metrics.increment("tracks_created")
            except Exception:
                ctx.metrics.increment("tracking_failures")
            ctx.frame_completed(payload["frame_id"])
            ctx.signal_source()

        return flow()


def scene_pipeline_config(
    name: str = "scene",
    fps: float = 10.0,
    duration_s: float | None = None,
    base_port: int = 5920,
    source_device: str = "camera",
    object_count: int = 3,
) -> PipelineConfig:
    """camera → object detection → tracking."""
    return PipelineConfig(
        name=name,
        modules=[
            ModuleConfig(
                name="scene_camera_module", include="./SceneCameraModule.js",
                endpoint=f"bind#tcp://*:{base_port}", device=source_device,
                next_modules=["object_detection_module"],
                params={"fps": fps, "duration_s": duration_s,
                        "object_count": object_count},
            ),
            ModuleConfig(
                name="object_detection_module",
                include="./ObjectDetectionModule.js",
                services=["object_detector"],
                endpoint=f"bind#tcp://*:{base_port + 1}",
                next_modules=["object_tracking_module"],
            ),
            ModuleConfig(
                name="object_tracking_module",
                include="./ObjectTrackingModule.js",
                services=["object_tracker"],
                endpoint=f"bind#tcp://*:{base_port + 2}",
                next_modules=[],
            ),
        ],
        source="scene_camera_module",
    )
