"""The fall-detection pipeline (§4.3).

"In addition to the above two applications, we also implement a fall
detection application pipeline with VideoPipe." Shares the pose detector;
the fall logic lives in a module (it is inherently stateful — it watches
hip trajectories over time) and raises alerts through the IoT actuator.
"""

from __future__ import annotations

from . import modules  # noqa: F401 - ensure module includes are registered
from ..pipeline.config import ModuleConfig, PipelineConfig


def fall_pipeline_config(
    name: str = "falldetect",
    fps: float = 10.0,
    duration_s: float | None = None,
    motion: str = "fall",
    base_port: int = 5900,
    source_device: str = "camera",
    alert_target: str = "caregiver_alert",
) -> PipelineConfig:
    """streaming → pose → fall detection (alerts via IoT)."""
    return PipelineConfig(
        name=name,
        modules=[
            ModuleConfig(
                name="fall_video_module",
                include="./VideoStreamingModule.js",
                endpoint=f"bind#tcp://*:{base_port}",
                next_modules=["fall_pose_module"],
                device=source_device,
                params={
                    "fps": fps,
                    "motion": motion,
                    "duration_s": duration_s,
                },
            ),
            ModuleConfig(
                name="fall_pose_module",
                include="./PoseDetectorModule.js",
                services=["pose_detector"],
                endpoint=f"bind#tcp://*:{base_port + 1}",
                next_modules=["fall_detector_module"],
                params={"forward_frame": False},
            ),
            ModuleConfig(
                name="fall_detector_module",
                include="./FallDetectorModule.js",
                services=["iot_controller"],
                endpoint=f"bind#tcp://*:{base_port + 2}",
                next_modules=[],
                params={"alert_target": alert_target},
            ),
        ],
        source="fall_video_module",
    )
