"""Multi-camera scene fusion: N views of one home, fused into world tracks.

The fan-in application ROADMAP item 3 asks for. One *scene rig* source
module owns the shared ground truth (a :class:`~repro.motion.multiview.
MultiViewScene`) and emits one frame per camera per tick through the
credit gate; per-camera branch modules estimate poses (via the
``scene_pose_estimator`` service), run the existing
:class:`~repro.vision.tracking.IoUTracker` and compute re-ID embeddings;
and a single :class:`SceneFusionModule` consumes every branch through a
fan-in DAG, maintaining the camera → room → home scene graph with fused
world tracks and per-track provenance::

    scene_rig ──> cam_track_0 ──┐
              ──> cam_track_1 ──┼──> scene_fusion
              ──> cam_track_2 ──┘

Flow control generalizes §2.3 to fan-in: the rig holds one credit worth N
frames (one per camera); each fused event returns one ready signal, and
the rig emits the next synchronized tick only when all N came back. A
``credit_timeout_s`` watchdog regenerates the credit when signals are lost
(module crash, mid-flight migration), mirroring ``VideoSource``.

Frames are *annotated* (``pixels=None``): metadata carries the per-camera
ground-truth observations (already occlusion-filtered), and the pose
estimator service adds detector noise — the same fidelity model the
single-camera sources use. Ground-truth actor ids ride along purely for
offline accuracy scoring; no pipeline stage reads them to associate.
"""

from __future__ import annotations

import random
from typing import Any

import numpy as np

from . import modules as _modules  # noqa: F401 - registry side effects
from ..errors import ServiceError
from ..frames.frame import VideoFrame
from ..motion.multiview import (
    CameraView,
    MultiViewScene,
    camera_from_dict,
    camera_to_dict,
    crossing_scene,
    random_scene,
)
from ..motion.skeleton import Pose
from ..pipeline.config import ModuleConfig, PipelineConfig
from ..runtime.context import ModuleContext
from ..runtime.events import ModuleEvent
from ..runtime.module import Module
from ..runtime.registry import register_module
from ..services.base import Service, ServiceCallContext
from ..vision.bbox import BBox
from ..vision.object_detector import Detection
from ..vision.reid import SceneFusionCore, pose_embedding
from ..vision.tracking import IoUTracker


def build_scene(
    preset: str,
    cameras: int,
    actors: int,
    rng: np.random.Generator,
    cross_at: float = 3.0,
) -> MultiViewScene:
    """Materialize a scene preset for the rig.

    ``crossing`` is the fixed accuracy-harness geometry (*actors* must be
    2); ``random`` draws a seeded fuzz scene through the device RNG so
    every fleet home gets its own layout deterministically."""
    if preset == "crossing":
        if actors != 2:
            raise ServiceError("the crossing preset is a 2-actor scene")
        return crossing_scene(cameras=cameras, cross_at=cross_at)
    if preset == "random":
        seed = int(rng.integers(0, 2**31 - 1))
        return random_scene(random.Random(seed), actor_count=actors,
                            camera_count=cameras)
    raise ServiceError(f"unknown scene preset {preset!r}")


class ScenePoseEstimatorService(Service):
    """Detector front-end for the scene branches.

    Reads the ground-truth observations off an annotated frame, perturbs
    each keypoint with Gaussian detector noise scaled to apparent body
    height (distant actors are noisier in world terms — exactly why
    position-only association degrades), and returns per-person detections
    sorted by image x so output order leaks nothing about identity."""

    name = "scene_pose_estimator"
    version = "v1"
    reference_cost_s = 0.018
    default_port = 7015

    def __init__(self, sigma_frac: float = 0.008) -> None:
        self.sigma_frac = sigma_frac

    def handle(self, payload: Any, ctx: ServiceCallContext) -> Any:
        frame = payload.get("frame") if isinstance(payload, dict) else None
        if not isinstance(frame, VideoFrame):
            raise ServiceError("scene_pose_estimator expects {'frame': ref}")
        observations = frame.metadata.get("observations")
        if observations is None:
            raise ServiceError("frame carries no scene observations")
        detections = []
        for obs in observations:
            kp = np.asarray(obs["keypoints"], dtype=float)
            height_px = float(kp[:, 1].max() - kp[:, 1].min())
            sigma = max(0.35, self.sigma_frac * height_px)
            noisy = kp + ctx.rng.normal(0.0, sigma, size=kp.shape)
            pose = Pose(noisy)
            detections.append({
                "bbox": pose.bounding_box(margin=0.05),
                "keypoints": noisy,
                "actor_id": obs["actor_id"],  # evaluation hint only
            })
        detections.sort(key=lambda d: d["bbox"][0])
        return {
            "camera": frame.metadata["camera"]["name"],
            "frame_id": frame.frame_id,
            "detections": detections,
        }


@register_module("./SceneRigModule.js")
class SceneRigModule(Module):
    """Source module owning the shared ground truth for all N cameras.

    Each tick it captures one annotated frame per camera and sends it to
    the matching branch (``next_modules`` order == scene camera order).
    The credit gate is the fan-in generalization of §2.3: a tick is
    emitted only when every frame of the previous tick was fused and
    signalled back; busy ticks are dropped whole, at the source."""

    def __init__(
        self,
        fps: float = 8.0,
        duration_s: float | None = None,
        cameras: int = 3,
        actors: int = 2,
        scene: str = "crossing",
        cross_at: float = 3.0,
        credit_timeout_s: float | None = None,
    ) -> None:
        self.fps = fps
        self.duration_s = duration_s
        self.cameras = cameras
        self.actors = actors
        self.scene_preset = scene
        self.cross_at = cross_at
        self.credit_timeout_s = credit_timeout_s
        self.scene: MultiViewScene | None = None
        self._branches: list[str] = []
        self._outstanding = 0
        self._running = False
        self._last_emit_at = 0.0
        self.emitted_ticks = 0
        self.dropped_ticks = 0
        self.watchdog_recoveries = 0

    def init(self, ctx: ModuleContext) -> None:
        self.scene = build_scene(
            self.scene_preset, self.cameras, self.actors,
            ctx.rng("scene_rig"), cross_at=self.cross_at,
        )
        self._branches = list(ctx.next_modules)
        if len(self._branches) != len(self.scene.cameras):
            raise ServiceError(
                f"scene rig has {len(self.scene.cameras)} cameras but "
                f"{len(self._branches)} downstream branches"
            )
        self._running = True
        ctx._runtime.kernel.process(self._capture_loop(ctx), name="scene-rig")

    def _capture(self, camera: CameraView, frame_id: int, t: float) -> VideoFrame:
        assert self.scene is not None
        observations = self.scene.observe(camera, t)
        return VideoFrame(
            frame_id=frame_id,
            source=camera.name,
            capture_time=t,
            width=camera.width,
            height=camera.height,
            channels=3,
            pixels=None,
            metadata={
                "camera": camera_to_dict(camera),
                "observations": [
                    {
                        "actor_id": obs.actor_id,
                        "keypoints": obs.pose.keypoints.tolist(),
                        "bbox": obs.bbox,
                        "world": obs.world,
                    }
                    for obs in observations
                ],
            },
        )

    def _capture_loop(self, ctx: ModuleContext):
        assert self.scene is not None
        start_time = ctx.now
        tick = 0
        n = len(self._branches)
        while self._running:
            elapsed = ctx.now - start_time
            if (self.duration_s is not None
                    and elapsed >= self.duration_s - 1e-9):
                break
            if (
                self._outstanding > 0
                and self.credit_timeout_s is not None
                and self.emitted_ticks > 0
                and ctx.now - self._last_emit_at >= self.credit_timeout_s
            ):
                # ready signals lost downstream (crash, migration):
                # regenerate the credit instead of stalling forever
                self.watchdog_recoveries += 1
                ctx.metrics.increment("scene_credit_timeouts")
                self._outstanding = 0
            frame_ids = [tick * n + i + 1 for i in range(n)]
            if self._outstanding == 0:
                t = ctx.now
                for i, branch in enumerate(self._branches):
                    frame = self._capture(self.scene.cameras[i],
                                          frame_ids[i], t)
                    ctx.frame_entered(frame.frame_id)
                    ref = ctx.store_frame(frame)
                    ctx.call_module(branch, {
                        "frame": ref,
                        "frame_id": frame.frame_id,
                        "capture_time": t,
                    })
                    self._outstanding += 1
                self.emitted_ticks += 1
                self._last_emit_at = t
            else:
                # pipeline still busy: the whole tick is dropped at the
                # source (§2.3 — never queue inside the pipeline)
                for frame_id in frame_ids:
                    ctx.frame_dropped(frame_id)
                self.dropped_ticks += 1
            tick += 1
            yield 1.0 / self.fps
        self._running = False

    def event_received(self, ctx: ModuleContext, event: ModuleEvent):
        pass

    def on_ready_signal(self, ctx: ModuleContext, event: ModuleEvent):
        if self._outstanding > 0:
            self._outstanding -= 1

    def shutdown(self, ctx: ModuleContext) -> None:
        self._running = False


@register_module("./SceneTrackModule.js")
class SceneTrackModule(Module):
    """One camera's branch: pose estimation, IoU tracking, re-ID features.

    Module state is the per-camera tracker plus an EMA embedding per local
    track; the heavy lifting (keypoint estimation) is the stateless
    service. Forwards only *fresh* tracklets (matched this frame) to the
    fusion stage, each with its embedding, back-projected world position
    and provenance-ready (camera, track id) identity.

    When ``reid_gate`` is set, the branch layers appearance-gated identity
    on top of the geometric tracker: a matched detection whose
    instantaneous embedding sits farther than the gate from the track's
    EMA means the IoU tracker glued two people together (the crossing
    steal), so the branch mints a fresh branch-track id with a clean EMA
    instead of corrupting the old one. ``reid_gate=None`` trusts IoU
    association blindly — the degraded arm."""

    def __init__(self, iou_threshold: float = 0.35, max_misses: int = 3,
                 ema: float = 0.30, reid_gate: float | None = 0.45) -> None:
        self.iou_threshold = iou_threshold
        self.max_misses = max_misses
        self.ema = ema
        self.reid_gate = reid_gate
        self.tracker = IoUTracker(iou_threshold=iou_threshold,
                                  max_misses=max_misses)
        self.created_track_ids: list[int] = []
        self.reid_splits = 0
        self._next_branch_id = 1
        self._branch_ids: dict[int, int] = {}  # tracker id -> branch id
        self._embeddings: dict[int, np.ndarray] = {}  # branch id -> EMA
        self._camera: CameraView | None = None

    def event_received(self, ctx: ModuleContext, event: ModuleEvent):
        def flow():
            payload = event.payload
            ref = payload["frame"]
            started = ctx.now
            frame = ctx.get_frame(ref)
            if self._camera is None:
                self._camera = camera_from_dict(frame.metadata["camera"])
            try:
                result = yield ctx.call_service("scene_pose_estimator",
                                                {"frame": ref})
            except Exception:
                ctx.metrics.increment("scene_pose_failures")
                ctx.frame_completed(payload["frame_id"])
                ctx.signal_source()
                raise
            finally:
                ctx.release(ref)
            tracklets = self._track(result["detections"])
            ctx.record_stage("camera_track", ctx.now - started)
            ctx.call_next({
                "camera": self._camera.name,
                "room": self._camera.room,
                "frame_id": payload["frame_id"],
                "capture_time": payload["capture_time"],
                "tracklets": tracklets,
            })

        return flow()

    def _branch_identity(self, tracker_id: int,
                         instantaneous: np.ndarray) -> int:
        """Resolve the stable branch-track id for a matched tracker track,
        splitting off a fresh identity when the appearance gate trips."""
        branch_id = self._branch_ids.get(tracker_id)
        if branch_id is not None and self.reid_gate is not None:
            previous = self._embeddings[branch_id]
            if float(np.linalg.norm(instantaneous - previous)) > self.reid_gate:
                self.reid_splits += 1
                self._embeddings.pop(branch_id, None)
                branch_id = None  # the IoU match glued two people together
        if branch_id is None:
            branch_id = self._next_branch_id
            self._next_branch_id += 1
            self._branch_ids[tracker_id] = branch_id
            self.created_track_ids.append(branch_id)
            self._embeddings[branch_id] = instantaneous
        else:
            self._embeddings[branch_id] = (
                (1.0 - self.ema) * self._embeddings[branch_id]
                + self.ema * instantaneous
            )
        return branch_id

    def _track(self, detections: list[dict]) -> list[dict]:
        assert self._camera is not None
        boxes = [Detection(label="person", bbox=BBox(*d["bbox"]), score=1.0)
                 for d in detections]
        tracks = self.tracker.update(boxes)
        by_bbox = {tuple(d["bbox"]): d for d in detections}
        fresh: list[dict] = []
        for track in sorted(tracks, key=lambda tr: tr.track_id):
            if track.misses > 0:
                continue  # coasting on a miss; nothing fresh to fuse
            detection = by_bbox.get(track.bbox.as_tuple())
            if detection is None:
                continue
            pose = Pose(np.asarray(detection["keypoints"], dtype=float))
            branch_id = self._branch_identity(track.track_id,
                                              pose_embedding(pose))
            x0, y0, x1, y1 = track.bbox.as_tuple()
            # bounding_box pads 5% per side; undo it to recover the
            # keypoint span that back-projection expects
            height_px = (y1 - y0) / 1.1
            world = self._camera.back_project((x0 + x1) / 2.0, height_px)
            fresh.append({
                "track_id": branch_id,
                "bbox": (x0, y0, x1, y1),
                "embedding": self._embeddings[branch_id],
                "world": world,
                "actor_id": detection.get("actor_id"),  # evaluation only
            })
        live = {track.track_id for track in self.tracker.tracks}
        for tracker_id in [tid for tid in self._branch_ids
                           if tid not in live]:
            branch_id = self._branch_ids.pop(tracker_id)
            self._embeddings.pop(branch_id, None)
        return fresh


@register_module("./SceneFusionModule.js")
class SceneFusionModule(Module):
    """Fan-in sink: fuses every camera's tracklets into world tracks.

    Wraps the kernel-free :class:`~repro.vision.reid.SceneFusionCore`;
    each arriving branch event re-associates the scene, completes its
    frame and returns the rig's ready signal. ``fusion_cost_s`` is the
    modelled association compute charged per event, which is what makes
    the fusion stage's placement a real optimizer decision."""

    def __init__(
        self,
        use_reid: bool = True,
        embed_threshold: float = 0.30,
        position_threshold_m: float = 0.90,
        retention_s: float = 2.5,
        fusion_cost_s: float = 0.004,
    ) -> None:
        self.core = SceneFusionCore(
            use_reid=use_reid,
            embed_threshold=embed_threshold,
            position_threshold_m=position_threshold_m,
            retention_s=retention_s,
        )
        self.event_overhead_s = fusion_cost_s
        self.frame_ids: list[int] = []

    def event_received(self, ctx: ModuleContext, event: ModuleEvent):
        payload = event.payload
        try:
            self.core.update(
                payload["camera"], payload["capture_time"],
                payload["tracklets"], room=payload.get("room", "home"),
            )
        finally:
            self.frame_ids.append(payload["frame_id"])
            ctx.record_stage("total_duration",
                             ctx.now - payload["capture_time"])
            ctx.frame_completed(payload["frame_id"])
            ctx.signal_source()

    def scene_graph(self) -> dict:
        return self.core.scene_graph()

    @property
    def history(self) -> list[dict]:
        return self.core.history


def install_scene_services(home, device: str, *, port: int | None = None,
                           sigma_frac: float = 0.008) -> None:
    """Deploy the scene branches' pose estimator on *device*."""
    home.deploy_service(ScenePoseEstimatorService(sigma_frac=sigma_frac),
                        device, port=port)


def multi_camera_pipeline_config(
    name: str = "scene_fusion",
    cameras: int = 3,
    actors: int = 2,
    fps: float = 8.0,
    duration_s: float | None = None,
    base_port: int = 5930,
    source_device: str = "camera",
    scene: str = "crossing",
    cross_at: float = 3.0,
    use_reid: bool = True,
    embed_threshold: float = 0.30,
    position_threshold_m: float = 0.90,
    reid_gate: float = 0.45,
    credit_timeout_s: float | None = None,
    fusion_name: str = "scene_fusion_module",
    balancing: str | None = None,
) -> PipelineConfig:
    """rig → N per-camera track branches → one fused sink (fan-in DAG)."""
    branches = [f"cam_track_{i}" for i in range(cameras)]
    modules = [
        ModuleConfig(
            name="scene_rig_module", include="./SceneRigModule.js",
            endpoint=f"bind#tcp://*:{base_port}", device=source_device,
            next_modules=list(branches),
            params={
                "fps": fps, "duration_s": duration_s, "cameras": cameras,
                "actors": actors, "scene": scene, "cross_at": cross_at,
                "credit_timeout_s": credit_timeout_s,
            },
        ),
        *[
            ModuleConfig(
                name=branch, include="./SceneTrackModule.js",
                services=["scene_pose_estimator"],
                endpoint=f"bind#tcp://*:{base_port + 1 + i}",
                next_modules=[fusion_name],
                params={"reid_gate": reid_gate if use_reid else None},
            )
            for i, branch in enumerate(branches)
        ],
        ModuleConfig(
            name=fusion_name, include="./SceneFusionModule.js",
            endpoint=f"bind#tcp://*:{base_port + 1 + cameras}",
            next_modules=[],
            params={
                "use_reid": use_reid,
                "embed_threshold": embed_threshold,
                "position_threshold_m": position_threshold_m,
            },
        ),
    ]
    return PipelineConfig(name=name, modules=modules,
                          source="scene_rig_module", balancing=balancing)
