"""Gesture control for IoT (§4.2) — the paper's second evaluated pipeline.

"With the same pose detector service, we use a similar activity classifier
to support activities, such as 'waving' and 'clapping'." Crucially for
Table 2's fourth column, this pipeline **shares** the pose detector service
with the fitness pipeline; only the classifier differs.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import modules  # noqa: F401 - ensure module includes are registered
from ..core.videopipe import VideoPipe
from ..pipeline.config import ModuleConfig, PipelineConfig
from ..services.builtin.activity import ActivityClassifierService
from ..services.builtin.iot import IoTActuatorService, IoTDeviceFleet
from ..vision.activity import ActivityRecognizer
from ..vision.datasets import generate_activity_dataset

#: The gesture vocabulary; "stand" is the rest class.
GESTURE_ACTIVITIES = ("wave", "clap", "stand")

#: Default gesture→device bindings from §4.2.
DEFAULT_BINDINGS = {
    "clap": "living_room_light",
    "wave": "doorbell_camera",
}


class GestureClassifierService(ActivityClassifierService):
    """The gesture-vocabulary twin of the activity classifier.

    "The activity classifier can be trained with custom actions that
    trigger custom behaviours" — a separately trained model behind its own
    service name, while the pose detector stays shared.
    """

    name = "gesture_classifier"
    default_port = 7009


def train_gesture_recognizer(
    seed: int = 0, train_subjects: int = 5
) -> ActivityRecognizer:
    """Train the kNN model on the gesture vocabulary."""
    dataset = generate_activity_dataset(
        activities=GESTURE_ACTIVITIES,
        train_subjects=train_subjects,
        test_subjects=1,
        duration_s=6.0,
        seed=seed,
    )
    return ActivityRecognizer(k=5).fit(dataset.train_windows, dataset.train_labels)


@dataclass(slots=True)
class GestureServices:
    """Handles to the gesture pipeline's services."""

    classifier: GestureClassifierService
    iot: IoTActuatorService

    @property
    def fleet(self) -> IoTDeviceFleet:
        return self.iot.fleet


def install_gesture_services(
    home: VideoPipe,
    recognizer: ActivityRecognizer | None = None,
    compute_device: str = "desktop",
    iot_device: str = "tv",
    bindings: dict[str, str] | None = None,
) -> GestureServices:
    """Install the gesture classifier (container, on the compute device)
    and the IoT actuator (native, near the controlled devices).

    The pose detector is *not* installed here — the pipeline reuses
    whichever pose service the home already runs (service sharing, §5.2.2).
    """
    recognizer = recognizer or train_gesture_recognizer()
    fleet = IoTDeviceFleet()
    for target in (bindings or DEFAULT_BINDINGS).values():
        fleet.ensure(target)
    fleet.ensure("caregiver_alert")
    services = GestureServices(
        classifier=GestureClassifierService(recognizer),
        iot=IoTActuatorService(fleet),
    )
    home.deploy_service(services.classifier, compute_device)
    home.deploy_service(services.iot, iot_device, native=True)
    return services


def gesture_pipeline_config(
    name: str = "gesture",
    fps: float = 10.0,
    duration_s: float | None = None,
    motion: str = "clap",
    mode: str = "signal",
    base_port: int = 5880,
    source_device: str = "camera",
    bindings: dict[str, str] | None = None,
) -> PipelineConfig:
    """streaming → pose → gesture classification → IoT control."""
    return PipelineConfig(
        name=name,
        modules=[
            ModuleConfig(
                name="gesture_video_module",
                include="./VideoStreamingModule.js",
                endpoint=f"bind#tcp://*:{base_port}",
                next_modules=["gesture_pose_module"],
                device=source_device,
                params={
                    "fps": fps,
                    "motion": motion,
                    "duration_s": duration_s,
                    "mode": mode,
                    "period_s": 1.2,
                },
            ),
            ModuleConfig(
                name="gesture_pose_module",
                include="./PoseDetectorModule.js",
                services=["pose_detector"],
                endpoint=f"bind#tcp://*:{base_port + 1}",
                next_modules=["gesture_classifier_module"],
                params={"forward_frame": False},
            ),
            ModuleConfig(
                name="gesture_classifier_module",
                include="./ActivityDetectorModule.js",
                services=["gesture_classifier"],
                endpoint=f"bind#tcp://*:{base_port + 2}",
                next_modules=["gesture_control_module"],
                params={"service": "gesture_classifier"},
            ),
            ModuleConfig(
                name="gesture_control_module",
                include="./GestureControlModule.js",
                services=["iot_controller"],
                endpoint=f"bind#tcp://*:{base_port + 3}",
                next_modules=[],
                params={"bindings": dict(bindings or DEFAULT_BINDINGS)},
            ),
        ],
        source="gesture_video_module",
    )
