"""The paper's applications, built on the public VideoPipe API."""

from . import modules  # noqa: F401 - registers the module includes
from .falldetect import fall_pipeline_config
from .fitness import (
    FITNESS_ACTIVITIES,
    FITNESS_LISTING,
    FitnessApp,
    FitnessServices,
    fitness_pipeline_config,
    fitness_pipeline_from_listing,
    install_fitness_services,
    train_activity_recognizer,
)
from .gesture import (
    DEFAULT_BINDINGS,
    GESTURE_ACTIVITIES,
    GestureClassifierService,
    GestureServices,
    gesture_pipeline_config,
    install_gesture_services,
    train_gesture_recognizer,
)
from .scene import (
    MovingObject,
    SceneCamera,
    default_scene,
    scene_pipeline_config,
)
from .scenefusion import (
    SceneFusionModule,
    ScenePoseEstimatorService,
    SceneRigModule,
    SceneTrackModule,
    install_scene_services,
    multi_camera_pipeline_config,
)

__all__ = [
    "DEFAULT_BINDINGS",
    "FITNESS_ACTIVITIES",
    "FITNESS_LISTING",
    "FitnessApp",
    "fitness_pipeline_from_listing",
    "FitnessServices",
    "GESTURE_ACTIVITIES",
    "GestureClassifierService",
    "GestureServices",
    "MovingObject",
    "SceneCamera",
    "SceneFusionModule",
    "ScenePoseEstimatorService",
    "SceneRigModule",
    "SceneTrackModule",
    "default_scene",
    "fall_pipeline_config",
    "scene_pipeline_config",
    "fitness_pipeline_config",
    "gesture_pipeline_config",
    "install_fitness_services",
    "install_gesture_services",
    "install_scene_services",
    "multi_camera_pipeline_config",
    "train_activity_recognizer",
    "train_gesture_recognizer",
]
