"""The fitness application (§4.1) — the paper's primary evaluation workload.

"A workout guidance system that tracks the progress of users' fitness
routine … the user places their smartphone on a phone cradle mounted on the
TV … renders the output on the living room TV display."

:func:`install_fitness_services` puts the services where Fig. 4 shows them
(pose + activity in containers on the desktop; rep counter + display native
on the TV); :func:`fitness_pipeline_config` is Listing 1's DAG;
:class:`FitnessApp` bundles deployment for both the VideoPipe and baseline
architectures.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import modules  # noqa: F401 - ensure module includes are registered
from ..core.videopipe import VideoPipe
from ..pipeline.config import ModuleConfig, PipelineConfig
from ..pipeline.pipeline import Pipeline
from ..pipeline.placement import COLOCATED, SINGLE_HOST
from ..services.builtin.activity import ActivityClassifierService
from ..services.builtin.display import DisplayService, DisplaySink
from ..services.builtin.pose import PoseDetectorService
from ..services.builtin.repcount import RepCounterService
from ..vision.activity import ActivityRecognizer
from ..vision.datasets import generate_activity_dataset
from ..vision.pose_estimator import PoseNoiseModel

#: Activities the fitness recognizer is trained on.
FITNESS_ACTIVITIES = ("squat", "jumping_jack", "lunge", "lateral_raise", "stand")


def train_activity_recognizer(
    activities: tuple[str, ...] = FITNESS_ACTIVITIES,
    seed: int = 0,
    train_subjects: int = 5,
) -> ActivityRecognizer:
    """Train the kNN activity model on synthetic recording sessions."""
    dataset = generate_activity_dataset(
        activities=activities,
        train_subjects=train_subjects,
        test_subjects=1,
        duration_s=6.0,
        seed=seed,
    )
    return ActivityRecognizer(k=5).fit(dataset.train_windows, dataset.train_labels)


@dataclass(slots=True)
class FitnessServices:
    """Handles to the installed fitness services."""

    pose: PoseDetectorService
    activity: ActivityClassifierService
    rep: RepCounterService
    display: DisplayService

    @property
    def sink(self) -> DisplaySink:
        return self.display.sink


def install_fitness_services(
    home: VideoPipe,
    recognizer: ActivityRecognizer | None = None,
    pose_noise: PoseNoiseModel | None = None,
    compute_device: str = "desktop",
    display_device: str = "tv",
    pose_replicas: int = 1,
    baseline_layout: bool = False,
) -> FitnessServices:
    """Install the four fitness services.

    Default layout is Fig. 4: containers (pose, activity) on
    *compute_device*; native services (rep counter, display) on
    *display_device*. ``baseline_layout=True`` reproduces Fig. 5 instead:
    **all** services on the one remote server (*compute_device*).
    """
    recognizer = recognizer or train_activity_recognizer()
    services = FitnessServices(
        pose=PoseDetectorService(pose_noise),
        activity=ActivityClassifierService(recognizer),
        rep=RepCounterService(),
        display=DisplayService(DisplaySink()),
    )
    home.deploy_service(services.pose, compute_device, replicas=pose_replicas)
    home.deploy_service(services.activity, compute_device)
    if baseline_layout:
        home.deploy_service(services.rep, compute_device, native=True)
        home.deploy_service(services.display, compute_device, native=True)
    else:
        home.deploy_service(services.rep, display_device, native=True)
        home.deploy_service(services.display, display_device, native=True)
    return services


def fitness_pipeline_config(
    name: str = "fitness",
    fps: float = 10.0,
    duration_s: float | None = None,
    motion: str = "squat",
    mode: str = "signal",
    base_port: int = 5860,
    source_device: str = "phone",
    render: bool = False,
    static_scene: bool = False,
) -> PipelineConfig:
    """The Listing-1 DAG: streaming → pose → activity → {reps, display}."""
    return PipelineConfig(
        name=name,
        modules=[
            ModuleConfig(
                name="video_streaming_module",
                include="./VideoStreamingModule.js",
                endpoint=f"bind#tcp://*:{base_port}",
                next_modules=["pose_detector_module"],
                device=source_device,  # the camera is physically on the phone
                params={
                    "fps": fps,
                    "motion": motion,
                    "duration_s": duration_s,
                    "mode": mode,
                    "render": render,
                    "static_scene": static_scene,
                },
            ),
            ModuleConfig(
                name="pose_detector_module",
                include="./PoseDetectorModule.js",
                services=["pose_detector"],
                endpoint=f"bind#tcp://*:{base_port + 1}",
                next_modules=["activity_detector_module"],
            ),
            ModuleConfig(
                name="activity_detector_module",
                include="./ActivityDetectorModule.js",
                services=["activity_classifier"],
                endpoint=f"bind#tcp://*:{base_port + 2}",
                next_modules=["rep_counter_module", "display_module"],
            ),
            ModuleConfig(
                name="rep_counter_module",
                include="./RepCounterModule.js",
                services=["rep_counter"],
                endpoint=f"bind#tcp://*:{base_port + 3}",
                next_modules=["display_module"],
            ),
            ModuleConfig(
                name="display_module",
                include="./DisplayModule.js",
                services=["display"],
                endpoint=f"bind#tcp://*:{base_port + 4}",
                next_modules=[],
            ),
        ],
        source="video_streaming_module",
    )


#: The paper's Listing 1, extended with the source and display entries the
#: listing elides ("Some details elided to simplify presentation").
FITNESS_LISTING = """
// An Example of DAG Configuration for a Pipeline (paper Listing 1)
modules : [
    { name: video_streaming_module
      include ("./VideoStreamingModule.js")
      endpoint: ["bind#tcp://*:5860"]
      next_module: pose_detector_module }
    { name: pose_detector_module
      include ("./PoseDetectorModule.js")
      service: ['pose_detector']
      endpoint: ["bind#tcp://*:5861"]
      next_module: activity_detector_module }
    { name: activity_detector_module
      include ("./ActivityDetectorModule.js")
      service: ['activity_classifier']
      endpoint: ["bind#tcp://*:5862"]
      next_module: [rep_counter_module,
                    display_module] }
    { name: rep_counter_module
      include ("./RepCounterModule.js")
      service: ['rep_counter']
      endpoint: ["bind#tcp://*:5863"]
      next_module: display_module }
    { name: display_module
      include ("./DisplayModule.js")
      service: ['display']
      endpoint: ["bind#tcp://*:5864"]
      next_module: [] }
]
"""


def fitness_pipeline_from_listing(
    fps: float = 10.0,
    duration_s: float | None = None,
    motion: str = "squat",
    source_device: str = "phone",
) -> PipelineConfig:
    """Build the fitness pipeline by parsing the paper's Listing-1 text.

    Functionally identical to :func:`fitness_pipeline_config`; exists to
    prove the text configuration path drives the real application.
    """
    from ..pipeline.parser import parse_pipeline_text

    config = parse_pipeline_text(FITNESS_LISTING, name="fitness")
    source = config.module("video_streaming_module")
    source.device = source_device
    source.params = {"fps": fps, "motion": motion, "duration_s": duration_s}
    config.source = "video_streaming_module"
    return config


class FitnessApp:
    """Deploy-and-measure wrapper around the fitness pipeline."""

    def __init__(
        self,
        home: VideoPipe,
        services: FitnessServices,
        architecture: str = "videopipe",
        app_device: str = "phone",
    ) -> None:
        if architecture not in ("videopipe", "baseline"):
            raise ValueError(f"unknown architecture {architecture!r}")
        self.home = home
        self.services = services
        self.architecture = architecture
        self.app_device = app_device
        self.pipeline: Pipeline | None = None

    def deploy(self, config: PipelineConfig) -> Pipeline:
        """Deploy with the architecture's placement:

        * ``videopipe``: co-located modules (Fig. 4);
        * ``baseline``: all modules on the app device, remote API calls to
          every service (Fig. 5 / EdgeEye).
        """
        if self.architecture == "videopipe":
            self.pipeline = self.home.deploy_pipeline(
                config, strategy=COLOCATED, default_device=self.app_device
            )
        else:
            self.pipeline = self.home.deploy_pipeline(
                config,
                strategy=SINGLE_HOST,
                host_device=self.app_device,
                prefer_local_services=False,
            )
        return self.pipeline

    def measure_fps(self, end_time: float, warmup_s: float = 2.0) -> float:
        assert self.pipeline is not None, "deploy first"
        return self.pipeline.metrics.throughput_fps(end_time, warmup_s)
