"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — the home inventory this build ships (devices, services, apps);
* ``table2`` — a quick Table-2 reproduction sweep (both architectures);
* ``fig6`` — a quick Fig-6 per-stage latency comparison;
* ``demo`` — run the fitness pipeline once and print its metrics.

These are fast spot-checks; the full assertion-bearing harness lives in
``benchmarks/`` (``pytest benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

import argparse
from typing import Sequence

from .apps import (
    FitnessApp,
    fitness_pipeline_config,
    install_fitness_services,
    train_activity_recognizer,
)
from .core import VideoPipe
from .devices import CATALOG, make_spec
from .metrics import format_table

FIG6_STAGES = ("load_frame", "pose_detection", "activity_detection",
               "rep_count", "total_duration")


def _run_fitness(recognizer, architecture: str, fps: float, duration: float,
                 seed: int):
    home = VideoPipe.paper_testbed(seed=seed)
    services = install_fitness_services(
        home, recognizer=recognizer,
        baseline_layout=(architecture == "baseline"),
    )
    app = FitnessApp(home, services, architecture=architecture)
    pipeline = app.deploy(fitness_pipeline_config(fps=fps, duration_s=duration))
    home.run(until=duration + 1.0)
    fps_out = pipeline.metrics.throughput_fps(duration + 1.0, warmup_s=2.0)
    return fps_out, pipeline.metrics.stage_means_ms(), services


def cmd_info(args: argparse.Namespace) -> int:
    from . import __version__
    from .runtime.registry import registered_modules
    import repro.apps  # noqa: F401 - ensure app modules registered

    print(f"VideoPipe reproduction v{__version__}")
    print("\ndevice catalog:")
    rows = []
    for kind in sorted(CATALOG):
        spec = make_spec(kind)
        rows.append([kind, f"{spec.cpu_factor:.1f}x", spec.cores,
                     f"{spec.memory_mb} MB",
                     "yes" if spec.supports_containers else "no", spec.os])
    print(format_table(
        ["kind", "cpu", "cores", "memory", "containers", "os"], rows,
    ))
    print("\nregistered module includes:")
    for include in sorted(registered_modules()):
        print(f"  {include}")
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    print("training the activity recognizer ...")
    recognizer = train_activity_recognizer(seed=args.seed)
    print(f"running the fitness pipeline ({args.fps} fps source,"
          f" {args.duration:.0f}s) ...")
    fps, stages, services = _run_fitness(
        recognizer, "videopipe", args.fps, args.duration, args.seed
    )
    print(f"\nend-to-end: {fps:.2f} fps; {services.sink.count} frames shown")
    print(format_table(
        ["stage", "mean latency (ms)"],
        [[s, stages[s]] for s in FIG6_STAGES if s in stages],
        float_format="{:.1f}",
    ))
    last = services.sink.frames[-1]
    print(f"last overlay: activity={last.label!r} reps={last.reps}")
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    recognizer = train_activity_recognizer(seed=args.seed)
    rows = []
    for fps in (5.0, 10.0, 20.0, 30.0, 60.0):
        vp, _, _ = _run_fitness(recognizer, "videopipe", fps, args.duration,
                                args.seed)
        base, _, _ = _run_fitness(recognizer, "baseline", fps, args.duration,
                                  args.seed)
        rows.append([int(fps), vp, base])
    print(format_table(
        ["Source FPS", "VideoPipe", "Baseline"], rows,
        title="Table 2 (quick sweep — paper: VP saturates ~11, baseline ~8.3)",
    ))
    return 0


def cmd_fig6(args: argparse.Namespace) -> int:
    recognizer = train_activity_recognizer(seed=args.seed)
    _, vp_stages, _ = _run_fitness(recognizer, "videopipe", 10.0,
                                   args.duration, args.seed)
    _, base_stages, _ = _run_fitness(recognizer, "baseline", 10.0,
                                     args.duration, args.seed)
    print(format_table(
        ["stage", "VideoPipe (ms)", "Baseline (ms)"],
        [[s, vp_stages[s], base_stages[s]] for s in FIG6_STAGES],
        title="Fig. 6 (quick run — VideoPipe must win every stage)",
        float_format="{:.1f}",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VideoPipe (Middleware Industry '19) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="device catalog and registered modules")

    for name, help_text in (
        ("demo", "run the fitness pipeline once"),
        ("table2", "quick Table-2 sweep"),
        ("fig6", "quick Fig-6 stage comparison"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--seed", type=int, default=7)
        cmd.add_argument("--duration", type=float, default=20.0,
                         help="simulated seconds per configuration")
        if name == "demo":
            cmd.add_argument("--fps", type=float, default=20.0)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": cmd_info,
        "demo": cmd_demo,
        "table2": cmd_table2,
        "fig6": cmd_fig6,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
