"""Bounding boxes and overlap math."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class BBox:
    """An axis-aligned box, (x0, y0) top-left to (x1, y1) bottom-right."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError(f"degenerate box {self}")

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    def intersection(self, other: "BBox") -> float:
        """Overlap area with *other* (0 when disjoint)."""
        dx = min(self.x1, other.x1) - max(self.x0, other.x0)
        dy = min(self.y1, other.y1) - max(self.y0, other.y0)
        if dx <= 0 or dy <= 0:
            return 0.0
        return dx * dy

    def iou(self, other: "BBox") -> float:
        """Intersection-over-union in [0, 1]."""
        inter = self.intersection(other)
        union = self.area + other.area - inter
        if union <= 0:
            return 0.0
        return inter / union

    def contains_point(self, x: float, y: float) -> bool:
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1

    def expanded(self, margin: float) -> "BBox":
        """Grow by *margin* fraction of each dimension on every side."""
        dx, dy = self.width * margin, self.height * margin
        return BBox(self.x0 - dx, self.y0 - dy, self.x1 + dx, self.y1 + dy)

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.x0, self.y0, self.x1, self.y1)
