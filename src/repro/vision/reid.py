"""Cross-camera re-identification and scene fusion.

The re-ID signal is a *pose embedding*: the vector of skeleton-edge
lengths of a hip-centred, torso-scaled pose
(:meth:`repro.motion.skeleton.Pose.normalized`). In the synthetic world a
camera projection is a uniform scale plus a translation, so the normalized
pose — and therefore the embedding — is exactly view-invariant: two
cameras observing the same actor at the same instant compute the same
vector (up to detector noise). What separates *different* actors is body
shape (:class:`repro.motion.multiview.BodyShape` limb ratios), which the
embedding reads out directly.

On top of the embedding sit two pure pieces:

* :func:`associate_tracklets` — greedy agglomerative cross-camera
  association with a camera-disjointness constraint (two tracklets from
  the same camera are never the same person). Deterministic and invariant
  to input order.
* :class:`SceneFusionCore` — the stateful (but kernel-free) fusion engine:
  it keeps per-camera tracklet snapshots, associates them into fused
  world tracks with stable ids, revives recently-lost tracks by embedding
  similarity (this is what survives per-camera ID switches), and records
  an assignment history that :func:`fusion_accuracy` scores against
  ground truth.

Ground-truth actor ids ride along in tracklets/history for *evaluation
only* — nothing in the association path reads them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..motion.skeleton import SKELETON_EDGES, Pose

__all__ = [
    "FusedTrack",
    "SceneFusionCore",
    "associate_tracklets",
    "embedding_distance",
    "fusion_accuracy",
    "pose_embedding",
]


def pose_embedding(pose: Pose) -> np.ndarray:
    """Limb-length embedding: skeleton-edge lengths of the normalized pose.

    One float per edge in :data:`~repro.motion.skeleton.SKELETON_EDGES`.
    View-invariant in the synthetic geometry (projection is uniform scale +
    translation); distance between embeddings of differently-shaped actors
    is bounded below by their limb-ratio gaps."""
    kp = pose.normalized().keypoints
    lengths = [float(np.linalg.norm(kp[a] - kp[b])) for a, b in SKELETON_EDGES]
    return np.asarray(lengths, dtype=float)


def embedding_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two embeddings (or world positions)."""
    return float(np.linalg.norm(np.asarray(a, dtype=float) -
                                np.asarray(b, dtype=float)))


MemberKey = tuple[str, int]  # (camera name, per-camera track id)


def associate_tracklets(
    tracklets: list[tuple[str, int, np.ndarray]],
    threshold: float,
) -> list[list[MemberKey]]:
    """Cluster per-camera tracklets into cross-camera identities.

    ``tracklets`` is a list of ``(camera, track_id, vector)`` — the vector
    is an embedding (re-ID on) or a world position (re-ID off); the metric
    is Euclidean either way. Greedy agglomerative union-find: candidate
    pairs from *different* cameras with distance <= ``threshold`` merge in
    ascending-distance order, except when the merge would place two
    tracklets of the same camera in one cluster (one camera never sees the
    same person twice).

    Deterministic and symmetric in input order: pairs are tie-broken by
    ``(distance, camera, track_id)`` keys and the output is sorted, so any
    permutation of ``tracklets`` yields identical clusters."""
    items = sorted(tracklets, key=lambda t: (t[0], t[1]))
    n = len(items)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    cameras_of: list[set[str]] = [{items[i][0]} for i in range(n)]
    pairs: list[tuple[float, str, int, str, int, int, int]] = []
    for i in range(n):
        cam_i, tid_i, vec_i = items[i]
        for j in range(i + 1, n):
            cam_j, tid_j, vec_j = items[j]
            if cam_i == cam_j:
                continue
            dist = embedding_distance(vec_i, vec_j)
            if dist <= threshold:
                pairs.append((dist, cam_i, tid_i, cam_j, tid_j, i, j))
    pairs.sort(key=lambda p: p[:5])
    for _dist, _ci, _ti, _cj, _tj, i, j in pairs:
        ri, rj = find(i), find(j)
        if ri == rj:
            continue
        if cameras_of[ri] & cameras_of[rj]:
            continue  # would alias two tracks of one camera
        parent[rj] = ri
        cameras_of[ri] = cameras_of[ri] | cameras_of[rj]
    clusters: dict[int, list[MemberKey]] = {}
    for i in range(n):
        clusters.setdefault(find(i), []).append((items[i][0], items[i][1]))
    return sorted((sorted(members) for members in clusters.values()),
                  key=lambda members: members[0])


@dataclass(slots=True)
class FusedTrack:
    """One world-coordinate identity with cross-camera provenance."""

    fused_id: int
    vector: np.ndarray  # embedding (re-ID) or world position (degraded)
    world: tuple[float, float]
    rooms: tuple[str, ...]
    provenance: tuple[MemberKey, ...]  # live (camera, track_id) members
    first_seen_t: float
    last_seen_t: float
    updates: int = 1

    def as_dict(self) -> dict:
        return {
            "fused_id": self.fused_id,
            "world": [round(self.world[0], 4), round(self.world[1], 4)],
            "rooms": list(self.rooms),
            "provenance": [list(m) for m in self.provenance],
            "first_seen_t": round(self.first_seen_t, 6),
            "last_seen_t": round(self.last_seen_t, 6),
            "updates": self.updates,
        }


class SceneFusionCore:
    """Kernel-free fusion engine behind ``SceneFusionModule``.

    Feed it per-camera tracklet snapshots via :meth:`update`; it maintains
    fused identities with stable ids and a camera -> room -> home scene
    graph. Id stability has three tiers, applied per association round in
    deterministic cluster order:

    1. a cluster containing members previously assigned to a fused id
       keeps that id (smallest unclaimed previous id wins),
    2. otherwise a recently-lost fused track (within ``retention_s``)
       whose stored vector is within ``revive_factor * threshold`` of the
       cluster mean is revived — this is what erases per-camera ID
       switches,
    3. otherwise a fresh id is minted.

    With ``use_reid=False`` the association vector degrades from the pose
    embedding to the back-projected world position (threshold
    ``position_threshold_m``) — the provably-worse arm of the accuracy
    harness."""

    def __init__(
        self,
        use_reid: bool = True,
        embed_threshold: float = 0.30,
        position_threshold_m: float = 0.90,
        retention_s: float = 2.5,
        revive_factor: float = 1.5,
        ema: float = 0.30,
    ) -> None:
        if not 0.0 < ema <= 1.0:
            raise ValueError("ema must be in (0, 1]")
        self.use_reid = use_reid
        self.embed_threshold = float(embed_threshold)
        self.position_threshold_m = float(position_threshold_m)
        self.retention_s = float(retention_s)
        self.revive_factor = float(revive_factor)
        self.ema = float(ema)
        self._snapshots: dict[str, dict] = {}  # camera -> snapshot
        self._rooms: dict[str, str] = {}  # camera -> room scope
        self._fused: dict[int, FusedTrack] = {}
        self._member_fused: dict[MemberKey, int] = {}
        self._member_seen: dict[MemberKey, float] = {}
        self._next_id = 1
        self.updates = 0
        #: association log for offline scoring: one entry per update with
        #: the full live assignment [(fused_id, camera, track_id, actor_id)]
        self.history: list[dict] = []

    @property
    def threshold(self) -> float:
        return self.embed_threshold if self.use_reid else self.position_threshold_m

    # -- feeding -----------------------------------------------------------

    def update(self, camera: str, t: float, tracklets: list[dict],
               room: str = "home") -> list[FusedTrack]:
        """Ingest one camera's fresh tracklets and re-associate the scene.

        Each tracklet dict needs ``track_id``, ``world`` (floor metres) and
        — when re-ID is on — ``embedding``; ``actor_id`` is an optional
        ground-truth hint copied into :attr:`history` for evaluation only.
        Returns the live fused tracks after the round."""
        self._snapshots[camera] = {
            "t": float(t),
            "tracklets": {int(tr["track_id"]): tr for tr in tracklets},
        }
        self._rooms[camera] = room
        self._associate(float(t))
        self.updates += 1
        live = self.live_tracks()
        self.history.append({
            "t": float(t),
            "camera": camera,
            "assignments": self._assignments(live),
        })
        return live

    def _vector_of(self, tracklet: dict) -> np.ndarray:
        if self.use_reid:
            return np.asarray(tracklet["embedding"], dtype=float)
        return np.asarray(tracklet["world"], dtype=float)

    def _associate(self, t: float) -> None:
        fresh: list[tuple[str, int, np.ndarray]] = []
        info: dict[MemberKey, dict] = {}
        for camera in sorted(self._snapshots):
            snap = self._snapshots[camera]
            if t - snap["t"] > self.retention_s:
                continue  # camera went silent; ignore its stale tracklets
            for tid in sorted(snap["tracklets"]):
                tracklet = snap["tracklets"][tid]
                fresh.append((camera, tid, self._vector_of(tracklet)))
                info[(camera, tid)] = tracklet
        clusters = associate_tracklets(fresh, self.threshold)
        vectors = {(cam, tid): vec for cam, tid, vec in fresh}

        claimed: set[int] = set()
        new_fused: dict[int, FusedTrack] = {}
        # larger clusters claim first: the cluster holding most of an
        # identity's members keeps its fused id even if a straggler split off
        clusters.sort(key=lambda members: (-len(members), members[0]))
        for members in clusters:
            mean_vec = np.mean([vectors[m] for m in members], axis=0)
            worlds = [info[m]["world"] for m in members]
            world = (float(np.mean([w[0] for w in worlds])),
                     float(np.mean([w[1] for w in worlds])))
            fid = self._claim_id(members, mean_vec, t, claimed)
            claimed.add(fid)
            previous = self._fused.get(fid)
            if previous is not None:
                vector = (1.0 - self.ema) * previous.vector + self.ema * mean_vec
                first_seen = previous.first_seen_t
                updates = previous.updates + 1
            else:
                vector = mean_vec
                first_seen = t
                updates = 1
            rooms = tuple(sorted({self._rooms.get(cam, "home")
                                  for cam, _tid in members}))
            new_fused[fid] = FusedTrack(
                fused_id=fid, vector=vector, world=world, rooms=rooms,
                provenance=tuple(members), first_seen_t=first_seen,
                last_seen_t=t, updates=updates,
            )
            for member in members:
                self._member_fused[member] = fid
                self._member_seen[member] = t
        # retain recently-lost fused tracks for revival, drop the rest
        for fid, track in self._fused.items():
            if fid in new_fused:
                continue
            if t - track.last_seen_t <= self.retention_s:
                new_fused[fid] = FusedTrack(
                    fused_id=fid, vector=track.vector, world=track.world,
                    rooms=track.rooms, provenance=(),
                    first_seen_t=track.first_seen_t,
                    last_seen_t=track.last_seen_t, updates=track.updates,
                )
        self._fused = new_fused
        horizon = 2.0 * self.retention_s
        for member in [m for m, seen in self._member_seen.items()
                       if t - seen > horizon]:
            self._member_seen.pop(member, None)
            self._member_fused.pop(member, None)

    def _claim_id(self, members: list[MemberKey], mean_vec: np.ndarray,
                  t: float, claimed: set[int]) -> int:
        votes: dict[int, int] = {}
        for member in members:
            fid = self._member_fused.get(member)
            if fid is not None and fid not in claimed:
                votes[fid] = votes.get(fid, 0) + 1
        if votes:
            return min(sorted(votes), key=lambda fid: (-votes[fid], fid))
        revived = self._revive(mean_vec, t, claimed)
        if revived is not None:
            return revived
        fid = self._next_id
        self._next_id += 1
        return fid

    def _revive(self, mean_vec: np.ndarray, t: float,
                claimed: set[int]) -> int | None:
        limit = self.threshold * self.revive_factor
        best: tuple[float, int] | None = None
        for fid in sorted(self._fused):
            if fid in claimed:
                continue
            track = self._fused[fid]
            if track.provenance:  # still live, not a revival candidate
                continue
            if t - track.last_seen_t > self.retention_s:
                continue
            dist = embedding_distance(mean_vec, track.vector)
            if dist <= limit and (best is None or (dist, fid) < best):
                best = (dist, fid)
        return best[1] if best is not None else None

    # -- reading -----------------------------------------------------------

    def live_tracks(self) -> list[FusedTrack]:
        """Fused tracks currently backed by live per-camera members."""
        return [self._fused[fid] for fid in sorted(self._fused)
                if self._fused[fid].provenance]

    def tracks(self) -> list[FusedTrack]:
        """All retained fused tracks, including recently-lost ones."""
        return [self._fused[fid] for fid in sorted(self._fused)]

    def live_member_ids(self, camera: str) -> list[int]:
        snap = self._snapshots.get(camera)
        return sorted(snap["tracklets"]) if snap else []

    def scene_graph(self) -> dict:
        """Hierarchical camera -> room -> home view of the live scene."""
        rooms: dict[str, dict[str, list[int]]] = {}
        for camera in sorted(self._snapshots):
            room = self._rooms.get(camera, "home")
            members: list[int] = []
            for track in self.live_tracks():
                members.extend(tid for cam, tid in track.provenance
                               if cam == camera)
            rooms.setdefault(room, {})[camera] = sorted(members)
        return {
            "home": {room: rooms[room] for room in sorted(rooms)},
            "tracks": [track.as_dict() for track in self.live_tracks()],
        }

    def _assignments(self, live: list[FusedTrack]) -> list[list]:
        rows: list[list] = []
        for track in live:
            for camera, tid in track.provenance:
                snap = self._snapshots.get(camera, {"tracklets": {}})
                tracklet = snap["tracklets"].get(tid, {})
                rows.append([track.fused_id, camera, tid,
                             tracklet.get("actor_id")])
        rows.sort(key=lambda r: (r[0], r[1], r[2]))
        return rows


def fusion_accuracy(history: list[dict]) -> dict:
    """Score an association history against the ground-truth actor hints.

    MOTA-style identity bookkeeping over the per-update assignment log:

    * ``id_switches`` — per ground-truth actor, count changes of the fused
      id that holds the majority of the actor's live members (ties break
      to the smallest fused id). Zero means every actor kept one fused
      identity for the whole run.
    * ``precision`` / ``recall`` — over cross-camera *pairs*: a predicted
      pair is two same-fused-id members on different cameras; it is
      correct when both members observe the same actor. The truth set is
      every co-visible cross-camera pair of the same actor. Precision =
      correct / predicted, recall = correct / truth (vacuously 1.0 when
      the denominator is empty).

    Entries sharing an update timestamp are collapsed to the last one
    (each fan-in event re-reports the whole scene)."""
    by_t: dict[float, list[list]] = {}
    for entry in history:
        by_t[entry["t"]] = entry["assignments"]
    id_switches = 0
    pairs_predicted = 0
    pairs_correct = 0
    pairs_truth = 0
    last_fid: dict[int, int] = {}
    for t in sorted(by_t):
        assignments = [row for row in by_t[t] if row[3] is not None]
        votes: dict[int, dict[int, int]] = {}
        members_by_actor: dict[int, list[tuple[str, int]]] = {}
        members_by_fid: dict[int, list[tuple[str, int]]] = {}
        for fid, camera, tid, actor in assignments:
            votes.setdefault(actor, {})
            votes[actor][fid] = votes[actor].get(fid, 0) + 1
            members_by_actor.setdefault(actor, []).append((camera, actor))
            members_by_fid.setdefault(fid, []).append((camera, actor))
        for actor in sorted(votes):
            majority = min(sorted(votes[actor]),
                           key=lambda fid: (-votes[actor][fid], fid))
            if actor in last_fid and last_fid[actor] != majority:
                id_switches += 1
            last_fid[actor] = majority
        for fid in sorted(members_by_fid):
            members = members_by_fid[fid]
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    if members[i][0] == members[j][0]:
                        continue
                    pairs_predicted += 1
                    if members[i][1] == members[j][1]:
                        pairs_correct += 1
        for actor in sorted(members_by_actor):
            members = members_by_actor[actor]
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    if members[i][0] != members[j][0]:
                        pairs_truth += 1
    return {
        "id_switches": id_switches,
        "precision": (pairs_correct / pairs_predicted
                      if pairs_predicted else 1.0),
        "recall": pairs_correct / pairs_truth if pairs_truth else 1.0,
        "pairs_predicted": pairs_predicted,
        "pairs_correct": pairs_correct,
        "pairs_truth": pairs_truth,
        "frames": len(by_t),
    }
