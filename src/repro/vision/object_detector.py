"""Object, face and image-classification primitives.

These back the paper's other stateless services (§2.2 names object
detection, face detection, activity recognition and object tracking; §4.3
sketches hand/face/pose applications). Scenes are synthetic — colored
rectangles over a noisy background — but the detection path is real image
analysis: channel thresholding, connected components, color classification.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from .bbox import BBox

#: Color classes the synthetic scenes use (RGB).
COLOR_CLASSES = {
    "cup": (220, 40, 40),
    "book": (40, 200, 60),
    "bottle": (50, 80, 220),
    "remote": (230, 220, 50),
}


@dataclass(frozen=True, slots=True)
class SceneObject:
    """A ground-truth object placed in a synthetic scene."""

    kind: str
    bbox: BBox

    def __post_init__(self) -> None:
        if self.kind not in COLOR_CLASSES:
            raise ValueError(f"unknown object kind {self.kind!r}")


@dataclass(frozen=True, slots=True)
class Detection:
    """One detector output: a labelled box with a confidence score."""

    label: str
    bbox: BBox
    score: float


def render_scene(
    objects: list[SceneObject],
    width: int = 160,
    height: int = 120,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Draw the objects as filled color rectangles over a dim background."""
    if rng is not None:
        image = rng.integers(20, 60, size=(height, width, 3)).astype(np.uint8)
    else:
        image = np.full((height, width, 3), 40, dtype=np.uint8)
    for obj in objects:
        color = COLOR_CLASSES[obj.kind]
        x0 = int(max(0, obj.bbox.x0))
        y0 = int(max(0, obj.bbox.y0))
        x1 = int(min(width - 1, obj.bbox.x1))
        y1 = int(min(height - 1, obj.bbox.y1))
        if x1 <= x0 or y1 <= y0:
            continue
        image[y0 : y1 + 1, x0 : x1 + 1] = color
    return image


class ObjectDetector:
    """Detects bright color blobs and classifies them by nearest class color."""

    def __init__(self, brightness_threshold: int = 120, min_area: int = 9) -> None:
        self.brightness_threshold = brightness_threshold
        self.min_area = min_area
        self._class_names = list(COLOR_CLASSES)
        self._class_colors = np.array(
            [COLOR_CLASSES[name] for name in self._class_names], dtype=np.float64
        )

    def detect(self, image: np.ndarray) -> list[Detection]:
        """Find labelled boxes in an (h, w, 3) uint8 image."""
        if image.ndim != 3 or image.shape[2] != 3:
            raise ValueError("object detection expects an RGB image")
        foreground = image.max(axis=2) >= self.brightness_threshold
        labels, count = ndimage.label(foreground)
        detections = []
        for component in range(1, count + 1):
            mask = labels == component
            area = int(mask.sum())
            if area < self.min_area:
                continue
            rows = np.flatnonzero(mask.any(axis=1))
            cols = np.flatnonzero(mask.any(axis=0))
            bbox = BBox(float(cols[0]), float(rows[0]), float(cols[-1]), float(rows[-1]))
            mean_color = image[mask].mean(axis=0)
            dists = np.linalg.norm(self._class_colors - mean_color, axis=1)
            best = int(dists.argmin())
            # confidence decays with color distance (max distance ~ 441)
            score = float(np.clip(1.0 - dists[best] / 200.0, 0.0, 1.0))
            detections.append(Detection(self._class_names[best], bbox, score))
        return detections


def detect_face_region(
    image: np.ndarray, threshold: int = 120, head_fraction: float = 0.16
) -> BBox | None:
    """Locate the subject's head in a rendered grayscale pose frame.

    Real pixel analysis: the foreground silhouette's top slab (people are
    rendered head-up) — the kind of cheap heuristic an embedded face
    detector stage would refine.
    """
    if image.ndim != 2:
        raise ValueError("face detection expects a grayscale image")
    mask = image >= threshold
    if not mask.any():
        return None
    rows = np.flatnonzero(mask.any(axis=1))
    top, bottom = int(rows[0]), int(rows[-1])
    head_rows = max(1, int((bottom - top + 1) * head_fraction))
    head_mask = mask[top : top + head_rows]
    cols = np.flatnonzero(head_mask.any(axis=0))
    if len(cols) == 0:
        return None
    return BBox(float(cols[0]), float(top), float(cols[-1]), float(top + head_rows - 1))


def hand_regions(pose, size_frac: float = 0.10) -> list[BBox]:
    """Boxes around the subject's hands (§4.3 "hand detection/tracking").

    Hands sit at the wrists of a detected pose; the box side is
    ``size_frac`` of the subject's pixel height. Invisible wrists yield no
    box.
    """
    keypoints = pose.keypoints
    height = float(keypoints[:, 1].max() - keypoints[:, 1].min())
    half = max(2.0, height * size_frac / 2.0)
    boxes = []
    from ..motion.skeleton import KEYPOINT_INDEX

    for side in ("left_wrist", "right_wrist"):
        index = KEYPOINT_INDEX[side]
        if not pose.visibility[index]:
            continue
        x, y = keypoints[index]
        boxes.append(BBox(x - half, y - half, x + half, y + half))
    return boxes


class ColorHistogramClassifier:
    """Nearest-centroid image classification on RGB histograms.

    Backs the paper's "image classification" service: a real (if simple)
    classifier trained on example images.
    """

    def __init__(self, bins: int = 4) -> None:
        if bins < 2:
            raise ValueError("bins must be >= 2")
        self.bins = bins
        self._centroids: dict[str, np.ndarray] = {}

    @property
    def classes(self) -> tuple[str, ...]:
        return tuple(sorted(self._centroids))

    def _histogram(self, image: np.ndarray) -> np.ndarray:
        if image.ndim != 3 or image.shape[2] != 3:
            raise ValueError("classifier expects an RGB image")
        quantized = (image.astype(np.int64) * self.bins) // 256
        flat = (
            quantized[..., 0] * self.bins * self.bins
            + quantized[..., 1] * self.bins
            + quantized[..., 2]
        ).ravel()
        hist = np.bincount(flat, minlength=self.bins ** 3).astype(np.float64)
        total = hist.sum()
        return hist / total if total > 0 else hist

    def fit(self, images: list[np.ndarray], labels: list[str]) -> "ColorHistogramClassifier":
        if len(images) != len(labels) or not images:
            raise ValueError("need equal, non-zero numbers of images and labels")
        by_label: dict[str, list[np.ndarray]] = {}
        for image, label in zip(images, labels):
            by_label.setdefault(label, []).append(self._histogram(image))
        self._centroids = {
            label: np.mean(hists, axis=0) for label, hists in by_label.items()
        }
        return self

    def classify(self, image: np.ndarray) -> tuple[str, float]:
        """Return (label, similarity score in [0, 1])."""
        if not self._centroids:
            raise ValueError("classifier is not fitted")
        hist = self._histogram(image)
        best_label, best_dist = None, float("inf")
        for label, centroid in self._centroids.items():
            dist = float(np.linalg.norm(hist - centroid))
            if dist < best_dist:
                best_label, best_dist = label, dist
        assert best_label is not None
        return best_label, float(np.exp(-4.0 * best_dist))
