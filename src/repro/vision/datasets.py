"""Synthetic labelled datasets for training and evaluating the recognizers.

Plays the role of the authors' recorded workout data: subjects (randomized
body/tempo/position parameters) perform each activity; their ground-truth
pose streams pass through the estimator noise model; the result is split
into train and **withheld test subjects** ("The algorithm is trained on all
available labelled data except for a withheld test set", §4.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..motion.exercises import MotionModel, make_model
from ..motion.skeleton import NUM_KEYPOINTS, Pose
from ..motion.trajectory import random_subject, sample_subject_sequence
from .features import WINDOW_FRAMES, sliding_windows
from .pose_estimator import PoseNoiseModel


def apply_estimator_noise(
    poses: list[Pose], noise: PoseNoiseModel, rng: np.random.Generator
) -> list[Pose]:
    """Perturb ground-truth poses the way the pose service would estimate
    them (jitter + dropout), without paying for frame rendering."""
    noisy = []
    for pose in poses:
        height = pose.keypoints[:, 1].max() - pose.keypoints[:, 1].min()
        sigma = max(0.5, noise.sigma_frac * float(height))
        keypoints = pose.keypoints + rng.normal(0.0, sigma, (NUM_KEYPOINTS, 2))
        visibility = rng.random(NUM_KEYPOINTS) >= noise.dropout_prob
        if not visibility.all():
            extra = rng.normal(0.0, sigma * 6.0, (NUM_KEYPOINTS, 2))
            keypoints[~visibility] += extra[~visibility]
        noisy.append(Pose(keypoints, visibility))
    return noisy


@dataclass(slots=True)
class ActivityDataset:
    """Labelled pose windows, split by withheld subjects."""

    train_windows: list[list[Pose]] = field(default_factory=list)
    train_labels: list[str] = field(default_factory=list)
    test_windows: list[list[Pose]] = field(default_factory=list)
    test_labels: list[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"{len(self.train_windows)} train / {len(self.test_windows)} test windows,"
            f" classes: {sorted(set(self.train_labels))}"
        )


def generate_activity_dataset(
    activities: tuple[str, ...] = ("squat", "jumping_jack", "lunge", "lateral_raise", "stand"),
    train_subjects: int = 6,
    test_subjects: int = 2,
    fps: float = 15.0,
    duration_s: float = 8.0,
    window: int = WINDOW_FRAMES,
    stride: int = 5,
    noise: PoseNoiseModel | None = None,
    seed: int = 0,
) -> ActivityDataset:
    """Simulate recording sessions and cut them into labelled windows."""
    noise = noise or PoseNoiseModel()
    rng = np.random.default_rng(seed)
    dataset = ActivityDataset()
    for activity in activities:
        for subject_index in range(train_subjects + test_subjects):
            model: MotionModel = make_model(activity)
            subject = random_subject(rng)
            truth = sample_subject_sequence(model, subject, fps, duration_s)
            estimated = apply_estimator_noise(truth, noise, rng)
            windows = sliding_windows(estimated, window=window, stride=stride)
            is_test = subject_index >= train_subjects
            target_windows = dataset.test_windows if is_test else dataset.train_windows
            target_labels = dataset.test_labels if is_test else dataset.train_labels
            target_windows.extend(windows)
            target_labels.extend([activity] * len(windows))
    return dataset


@dataclass(slots=True)
class RepBout:
    """One exercise bout with its known true repetition count."""

    exercise: str
    poses: list[Pose]
    true_reps: int
    fps: float


def generate_rep_bouts(
    exercises: tuple[str, ...] = ("squat", "jumping_jack", "lateral_raise"),
    bouts_per_exercise: int = 8,
    reps_low: int = 3,
    reps_high: int = 10,
    fps: float = 15.0,
    noise: PoseNoiseModel | None = None,
    seed: int = 0,
) -> list[RepBout]:
    """Simulate bouts with a known number of repetitions each."""
    noise = noise or PoseNoiseModel()
    rng = np.random.default_rng(seed)
    bouts = []
    for exercise in exercises:
        for _ in range(bouts_per_exercise):
            true_reps = int(rng.integers(reps_low, reps_high + 1))
            model = make_model(exercise, period_s=float(rng.uniform(1.6, 2.6)))
            subject = random_subject(rng)
            # exactly true_reps full periods, plus a beat of rest either side
            duration = true_reps * model.period_s * subject.tempo
            rest = model.period_s * subject.tempo * 0.15
            truth = sample_subject_sequence(model, subject, fps, duration + rest)
            estimated = apply_estimator_noise(truth, noise, rng)
            bouts.append(RepBout(exercise, estimated, true_reps, fps))
    return bouts
