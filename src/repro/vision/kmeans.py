"""Lloyd's k-means with k-means++ seeding, from scratch.

The paper's rep counter uses "k-means with k = 2 to classify the frames into
a cluster that occurs near the start of the exercise and a cluster that
occurs near the end" (§4.1.3).
"""

from __future__ import annotations

import numpy as np


class KMeans:
    """Deterministic (seeded) Lloyd's algorithm."""

    def __init__(self, k: int = 2, max_iter: int = 100, tol: float = 1e-6,
                 seed: int = 0) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.centroids: np.ndarray | None = None
        self.inertia: float | None = None
        self.iterations_run = 0

    @property
    def fitted(self) -> bool:
        return self.centroids is not None

    def _init_centroids(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding: spread initial centroids apart."""
        n = len(data)
        centroids = np.empty((self.k, data.shape[1]))
        centroids[0] = data[rng.integers(n)]
        closest_sq = np.full(n, np.inf)
        for i in range(1, self.k):
            deltas = data - centroids[i - 1]
            closest_sq = np.minimum(closest_sq, np.einsum("ij,ij->i", deltas, deltas))
            total = closest_sq.sum()
            if total <= 0:  # all points identical to chosen centroids
                centroids[i:] = centroids[0]
                return centroids
            probs = closest_sq / total
            centroids[i] = data[rng.choice(n, p=probs)]
        return centroids

    def fit(self, data: np.ndarray) -> "KMeans":
        """Cluster *data* (an (n, d) matrix); n must be >= k."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be a (n, d) matrix")
        if len(data) < self.k:
            raise ValueError(f"need at least k={self.k} points, got {len(data)}")
        rng = np.random.default_rng(self.seed)
        centroids = self._init_centroids(data, rng)
        assignment = np.zeros(len(data), dtype=np.int64)
        for iteration in range(self.max_iter):
            self.iterations_run = iteration + 1
            distances = self._distances(data, centroids)
            assignment = distances.argmin(axis=1)
            new_centroids = centroids.copy()
            for j in range(self.k):
                members = data[assignment == j]
                if len(members) > 0:
                    new_centroids[j] = members.mean(axis=0)
            shift = float(np.abs(new_centroids - centroids).max())
            centroids = new_centroids
            if shift <= self.tol:
                break
        self.centroids = centroids
        final = self._distances(data, centroids)
        self.inertia = float(final.min(axis=1).sum())
        return self

    @staticmethod
    def _distances(data: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        """Squared distances, (n, k)."""
        diffs = data[:, None, :] - centroids[None, :, :]
        return np.einsum("nkd,nkd->nk", diffs, diffs)

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Assign each row of *data* to its nearest centroid index."""
        if not self.fitted:
            raise ValueError("kmeans is not fitted")
        data = np.asarray(data, dtype=np.float64)
        single = data.ndim == 1
        if single:
            data = data[None, :]
        labels = self._distances(data, self.centroids).argmin(axis=1)
        return labels[0] if single else labels
