"""Pose feature engineering shared by the recognizers.

Implements exactly the preprocessing in §4.1.2: "we take a list of 15
consecutive frames … we normalize the coordinates framewise so that (0,0)
is located at the average of the left and right hips of the human in that
frame."
"""

from __future__ import annotations

import numpy as np

from ..motion.skeleton import NUM_KEYPOINTS, Pose

#: The paper's window length.
WINDOW_FRAMES = 15


def normalize_framewise(poses: list[Pose]) -> list[Pose]:
    """Hip-center (and torso-scale) each pose independently."""
    return [p.normalized() for p in poses]


def window_feature(poses: list[Pose]) -> np.ndarray:
    """Flatten a window of poses into one feature vector.

    Each pose is normalized framewise, then the (T, 17, 2) block is reshaped
    to length T*34. Raises if the window is empty.
    """
    if not poses:
        raise ValueError("empty pose window")
    normalized = normalize_framewise(poses)
    return np.concatenate([p.flatten() for p in normalized])


def sliding_windows(
    poses: list[Pose], window: int = WINDOW_FRAMES, stride: int = 1
) -> list[list[Pose]]:
    """All length-*window* slices at the given stride."""
    if window < 1 or stride < 1:
        raise ValueError("window and stride must be >= 1")
    return [
        poses[i : i + window]
        for i in range(0, len(poses) - window + 1, stride)
    ]


def windows_to_matrix(windows: list[list[Pose]]) -> np.ndarray:
    """Stack window features into an (n, window*34) matrix."""
    if not windows:
        return np.zeros((0, WINDOW_FRAMES * NUM_KEYPOINTS * 2))
    return np.stack([window_feature(w) for w in windows])


def frame_feature(pose: Pose) -> np.ndarray:
    """Single-frame normalized feature (used by the rep counter)."""
    return pose.normalized().flatten()


def frames_to_matrix(poses: list[Pose]) -> np.ndarray:
    """Stack per-frame features into an (n, 34) matrix."""
    if not poses:
        return np.zeros((0, NUM_KEYPOINTS * 2))
    return np.stack([frame_feature(p) for p in poses])
