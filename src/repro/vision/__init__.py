"""Vision algorithms: pose estimation, recognition, detection, tracking."""

from .activity import ActivityRecognizer, StreamingActivityDetector
from .bbox import BBox
from .datasets import (
    ActivityDataset,
    RepBout,
    apply_estimator_noise,
    generate_activity_dataset,
    generate_rep_bouts,
)
from .features import (
    WINDOW_FRAMES,
    frame_feature,
    frames_to_matrix,
    normalize_framewise,
    sliding_windows,
    window_feature,
    windows_to_matrix,
)
from .kmeans import KMeans
from .knn import KNNClassifier
from .object_detector import (
    COLOR_CLASSES,
    ColorHistogramClassifier,
    Detection,
    ObjectDetector,
    SceneObject,
    detect_face_region,
    hand_regions,
    render_scene,
)
from .pose_estimator import PoseEstimator, PoseNoiseModel, PoseResult
from .reid import (
    FusedTrack,
    SceneFusionCore,
    associate_tracklets,
    embedding_distance,
    fusion_accuracy,
    pose_embedding,
)
from .repcounter import (
    DEBOUNCE_FRAMES,
    RepCounter,
    StreamingRepCounter,
    count_reps_in_labels,
)
from .tracking import IoUTracker, Track

__all__ = [
    "ActivityDataset",
    "ActivityRecognizer",
    "BBox",
    "COLOR_CLASSES",
    "ColorHistogramClassifier",
    "DEBOUNCE_FRAMES",
    "Detection",
    "FusedTrack",
    "IoUTracker",
    "KMeans",
    "KNNClassifier",
    "ObjectDetector",
    "PoseEstimator",
    "PoseNoiseModel",
    "PoseResult",
    "RepBout",
    "RepCounter",
    "SceneFusionCore",
    "SceneObject",
    "StreamingActivityDetector",
    "StreamingRepCounter",
    "Track",
    "WINDOW_FRAMES",
    "apply_estimator_noise",
    "associate_tracklets",
    "count_reps_in_labels",
    "detect_face_region",
    "embedding_distance",
    "frame_feature",
    "fusion_accuracy",
    "frames_to_matrix",
    "generate_activity_dataset",
    "generate_rep_bouts",
    "hand_regions",
    "normalize_framewise",
    "pose_embedding",
    "render_scene",
    "sliding_windows",
    "window_feature",
    "windows_to_matrix",
]
