"""Activity recognition on pose sequences (§4.1.2).

"Our activity recognition system utilizes nearest neighbor on pose
sequences. To feed nearest neighbors, we take a list of 15 consecutive
frames … We normalize the coordinates framewise so that (0,0) is located at
the average of the left and right hips."
"""

from __future__ import annotations

import numpy as np

from ..motion.skeleton import Pose
from .features import WINDOW_FRAMES, window_feature, windows_to_matrix
from .knn import KNNClassifier


class ActivityRecognizer:
    """kNN over 15-frame normalized pose windows."""

    def __init__(self, k: int = 5, window: int = WINDOW_FRAMES) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.classifier = KNNClassifier(k=k)

    @property
    def fitted(self) -> bool:
        return self.classifier.fitted

    @property
    def classes(self) -> tuple[str, ...]:
        return self.classifier.classes

    def fit(self, windows: list[list[Pose]], labels: list[str]) -> "ActivityRecognizer":
        """Train on labelled pose windows (each of length ``window``)."""
        for w in windows:
            if len(w) != self.window:
                raise ValueError(
                    f"every training window must have {self.window} frames,"
                    f" got {len(w)}"
                )
        self.classifier.fit(windows_to_matrix(windows), labels)
        return self

    def classify(self, window: list[Pose]) -> tuple[str, float]:
        """Label one window of consecutive poses; returns (label, confidence)."""
        if len(window) != self.window:
            raise ValueError(f"window must have {self.window} frames, got {len(window)}")
        return self.classifier.predict_with_confidence(window_feature(window))

    def classify_feature(self, feature: np.ndarray) -> tuple[str, float]:
        """Label a precomputed window feature vector (the stateless-service
        entry point: callers ship features, no recognizer state needed)."""
        return self.classifier.predict_with_confidence(feature)

    def accuracy(self, windows: list[list[Pose]], labels: list[str]) -> float:
        """Fraction of windows labelled correctly."""
        if not windows:
            raise ValueError("no evaluation windows")
        correct = sum(
            self.classify(w)[0] == label for w, label in zip(windows, labels)
        )
        return correct / len(windows)


class StreamingActivityDetector:
    """Maintains the rolling window for a live pose stream.

    This is the *module-side* state (modules are stateful; services are
    not): push estimated poses in, get an activity label out once enough
    frames have accumulated.
    """

    def __init__(self, recognizer: ActivityRecognizer) -> None:
        self.recognizer = recognizer
        self._buffer: list[Pose] = []
        self.last_label: str | None = None
        self.last_confidence: float = 0.0

    @property
    def ready(self) -> bool:
        return len(self._buffer) >= self.recognizer.window

    def push(self, pose: Pose) -> str | None:
        """Add one pose; returns the current label once the window fills."""
        self._buffer.append(pose)
        if len(self._buffer) > self.recognizer.window:
            self._buffer.pop(0)
        if not self.ready:
            return None
        label, confidence = self.recognizer.classify(list(self._buffer))
        self.last_label = label
        self.last_confidence = confidence
        return label

    def window_snapshot(self) -> list[Pose]:
        """A copy of the current window (what a stateless service call ships)."""
        return list(self._buffer)

    def reset(self) -> None:
        self._buffer.clear()
        self.last_label = None
        self.last_confidence = 0.0
