"""Greedy IoU multi-object tracking.

Backs the "object tracking" service from §2.2: detections from consecutive
frames are associated to persistent track ids by best IoU match.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from .bbox import BBox
from .object_detector import Detection


@dataclass(slots=True)
class Track:
    """A persistent object identity across frames."""

    track_id: int
    label: str
    bbox: BBox
    hits: int = 1
    misses: int = 0
    history: list[BBox] = field(default_factory=list)

    def update(self, detection: Detection) -> None:
        self.history.append(self.bbox)
        self.bbox = detection.bbox
        self.label = detection.label
        self.hits += 1
        self.misses = 0


class IoUTracker:
    """Frame-to-frame greedy association by IoU.

    Args:
        iou_threshold: minimum overlap to continue a track.
        max_misses: frames a track survives without a matching detection.
    """

    def __init__(self, iou_threshold: float = 0.3, max_misses: int = 5) -> None:
        if not 0.0 < iou_threshold <= 1.0:
            raise ValueError("iou_threshold must be in (0, 1]")
        self.iou_threshold = iou_threshold
        self.max_misses = max_misses
        self._ids = itertools.count(1)
        self.tracks: list[Track] = []
        self.frames_processed = 0

    def update(self, detections: list[Detection]) -> list[Track]:
        """Consume one frame's detections; returns the live tracks."""
        self.frames_processed += 1
        # score all (track, detection) pairs, match greedily best-first
        pairs = []
        for t_index, track in enumerate(self.tracks):
            for d_index, det in enumerate(detections):
                iou = track.bbox.iou(det.bbox)
                if iou >= self.iou_threshold:
                    pairs.append((iou, t_index, d_index))
        pairs.sort(reverse=True)
        matched_tracks: set[int] = set()
        matched_dets: set[int] = set()
        for iou, t_index, d_index in pairs:
            if t_index in matched_tracks or d_index in matched_dets:
                continue
            self.tracks[t_index].update(detections[d_index])
            matched_tracks.add(t_index)
            matched_dets.add(d_index)
        # unmatched tracks age; stale ones die
        survivors = []
        for t_index, track in enumerate(self.tracks):
            if t_index not in matched_tracks:
                track.misses += 1
            if track.misses <= self.max_misses:
                survivors.append(track)
        self.tracks = survivors
        # unmatched detections start new tracks
        for d_index, det in enumerate(detections):
            if d_index not in matched_dets:
                self.tracks.append(
                    Track(track_id=next(self._ids), label=det.label, bbox=det.bbox)
                )
        return self.tracks

    @property
    def live_track_ids(self) -> list[int]:
        return [t.track_id for t in self.tracks]
