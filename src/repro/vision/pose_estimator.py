"""The 2D pose detector (§4.1.1).

"The 2D pose detector first detects a human and places a bounding box
around them. Within that bounding box, it detects 17 keypoints."

The detection stage is real image analysis when the frame carries pixels
(foreground thresholding → bounding box). The keypoint regression — the
part a CNN does in the paper — is substituted by the synthetic camera's
ground truth perturbed with a calibrated noise model (Gaussian jitter,
keypoint dropout, occasional whole-person misses), per the substitution
policy in DESIGN.md. Compute *time* is charged by the service layer, not
here; these functions are pure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..frames.frame import VideoFrame
from ..frames.synthetic import detect_foreground_bbox
from ..motion.skeleton import NUM_KEYPOINTS, Pose
from .bbox import BBox


@dataclass(frozen=True, slots=True)
class PoseNoiseModel:
    """How far the estimator's keypoints stray from the truth.

    Attributes:
        sigma_frac: keypoint jitter std as a fraction of subject height.
        dropout_prob: per-keypoint chance of being marked invisible.
        miss_prob: chance the detector misses the person entirely.
    """

    sigma_frac: float = 0.008
    dropout_prob: float = 0.01
    miss_prob: float = 0.002


@dataclass(slots=True)
class PoseResult:
    """One frame's detection: box + keypoints, or a miss."""

    detected: bool
    bbox: BBox | None = None
    pose: Pose | None = None
    score: float = 0.0

    def require_pose(self) -> Pose:
        if self.pose is None:
            raise ValueError("no pose detected in this frame")
        return self.pose


class PoseEstimator:
    """Framewise 17-keypoint pose estimation."""

    def __init__(
        self,
        noise: PoseNoiseModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.noise = noise or PoseNoiseModel()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.frames_processed = 0
        self.misses = 0

    def estimate(self, frame: VideoFrame) -> PoseResult:
        """Detect the subject and estimate keypoints for one frame."""
        self.frames_processed += 1
        if frame.truth is None:
            # no subject in the scene: an honest no-detection
            return PoseResult(detected=False)
        if self.noise.miss_prob > 0 and self.rng.random() < self.noise.miss_prob:
            self.misses += 1
            return PoseResult(detected=False)

        bbox = self._detect_bbox(frame)
        pose = self._estimate_keypoints(frame)
        score = float(np.clip(self.rng.normal(0.9, 0.05), 0.0, 1.0))
        return PoseResult(detected=True, bbox=bbox, pose=pose, score=score)

    # -- stages -----------------------------------------------------------------
    def _detect_bbox(self, frame: VideoFrame) -> BBox:
        """Stage 1: human detection.

        With pixels present this is real image analysis on the rendered
        frame; otherwise the box comes from the annotated keypoints.
        """
        if frame.pixels is not None:
            found = detect_foreground_bbox(frame.pixels)
            if found is not None:
                x0, y0, x1, y1 = found
                # pixels may be at reduced render resolution; rescale
                sy = frame.height / frame.pixels.shape[0]
                sx = frame.width / frame.pixels.shape[1]
                return BBox(x0 * sx, y0 * sy, max(x0, x1) * sx, max(y0, y1) * sy)
        assert frame.truth is not None
        x0, y0, x1, y1 = frame.truth.bounding_box(margin=0.05)
        return BBox(x0, y0, x1, y1)

    def _estimate_keypoints(self, frame: VideoFrame) -> Pose:
        """Stage 2: keypoint regression (truth + calibrated noise)."""
        truth = frame.truth
        assert truth is not None
        height = truth.keypoints[:, 1].max() - truth.keypoints[:, 1].min()
        sigma = max(0.5, self.noise.sigma_frac * float(height))
        keypoints = truth.keypoints + self.rng.normal(0.0, sigma, (NUM_KEYPOINTS, 2))
        visibility = self.rng.random(NUM_KEYPOINTS) >= self.noise.dropout_prob
        # dropped keypoints get a larger, unreliable error
        if not visibility.all():
            extra = self.rng.normal(0.0, sigma * 6.0, (NUM_KEYPOINTS, 2))
            keypoints[~visibility] += extra[~visibility]
        return Pose(keypoints, visibility)
