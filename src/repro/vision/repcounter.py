"""Repetition counting (§4.1.3).

"We use k-means with k = 2 to classify the frames into a cluster that
occurs near the start of the exercise and a cluster that occurs near the
end … we require 4 frames to have transitioned to count a state transition
… We count a state transition from and back to the initial state as a
single rep."
"""

from __future__ import annotations

import numpy as np

from ..motion.skeleton import Pose
from .features import frame_feature, frames_to_matrix
from .kmeans import KMeans

#: The paper's debounce length: a cluster flip only counts after this many
#: consecutive frames agree, suppressing alternation at the boundary.
DEBOUNCE_FRAMES = 4


def count_reps_in_labels(labels: np.ndarray, debounce: int = DEBOUNCE_FRAMES) -> int:
    """Count initial→other→initial cycles in a 0/1 cluster-label sequence.

    The initial state is the debounced state at the start of the sequence.
    """
    state = None
    initial = None
    run_value: int | None = None
    run_length = 0
    reps = 0
    left_initial = False
    for value in labels:
        value = int(value)
        if value == run_value:
            run_length += 1
        else:
            run_value = value
            run_length = 1
        if run_length < debounce:
            continue
        # the debounced state is now `value`
        if state is None:
            state = value
            initial = value
            continue
        if value == state:
            continue
        state = value
        if state != initial:
            left_initial = True
        elif left_initial:
            reps += 1
            left_initial = False
    return reps


class RepCounter:
    """Batch rep counter: cluster an exercise bout's frames, then count."""

    def __init__(self, debounce: int = DEBOUNCE_FRAMES, seed: int = 0) -> None:
        if debounce < 1:
            raise ValueError("debounce must be >= 1")
        self.debounce = debounce
        self.seed = seed

    def count(self, poses: list[Pose]) -> int:
        """Count reps in a full sequence of estimated poses."""
        if len(poses) < 2 * self.debounce:
            return 0
        features = frames_to_matrix(poses)
        return self.count_features(features)

    def count_features(self, features: np.ndarray) -> int:
        """Count reps from precomputed per-frame features (the stateless
        service entry point)."""
        features = np.asarray(features, dtype=np.float64)
        if len(features) < max(2, 2 * self.debounce):
            return 0
        kmeans = KMeans(k=2, seed=self.seed).fit(features)
        labels = kmeans.predict(features)
        if len(set(labels.tolist())) < 2:
            return 0  # degenerate: no motion
        return count_reps_in_labels(labels, self.debounce)


class StreamingRepCounter:
    """Module-side incremental rep counting.

    Keeps the per-frame feature history (module state) and recounts by
    reclustering the accumulated bout — matching the paper's service, which
    receives all needed data per call and keeps no state of its own.
    """

    def __init__(self, debounce: int = DEBOUNCE_FRAMES, seed: int = 0,
                 min_frames: int = 20, max_frames: int = 2000) -> None:
        self.counter = RepCounter(debounce=debounce, seed=seed)
        self.min_frames = min_frames
        self.max_frames = max_frames
        self._features: list[np.ndarray] = []
        self.reps = 0

    def push(self, pose: Pose) -> int:
        """Add one pose; returns the current rep count."""
        self._features.append(frame_feature(pose))
        if len(self._features) > self.max_frames:
            self._features.pop(0)
        if len(self._features) >= self.min_frames:
            self.reps = self.counter.count_features(np.stack(self._features))
        return self.reps

    def feature_snapshot(self) -> np.ndarray:
        """The accumulated bout features (what a stateless call ships)."""
        if not self._features:
            return np.zeros((0, 34))
        return np.stack(self._features)

    def reset(self) -> None:
        self._features.clear()
        self.reps = 0
