"""k-nearest-neighbour classification, from scratch.

The paper's activity recognizer "utilizes nearest neighbor on pose
sequences" (§4.1.2). This is a dependency-light exact kNN: Euclidean
distance, majority vote, deterministic tie-breaking by nearest neighbour.
"""

from __future__ import annotations

from collections import Counter

import numpy as np


class KNNClassifier:
    """Exact k-nearest-neighbour majority-vote classifier."""

    def __init__(self, k: int = 5) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._features: np.ndarray | None = None
        self._labels: list[str] = []

    @property
    def fitted(self) -> bool:
        return self._features is not None

    @property
    def classes(self) -> tuple[str, ...]:
        return tuple(sorted(set(self._labels)))

    def fit(self, features: np.ndarray, labels: list[str]) -> "KNNClassifier":
        """Store the training set (kNN is lazy)."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be a (n, d) matrix")
        if len(features) != len(labels):
            raise ValueError("features and labels must have equal length")
        if len(features) == 0:
            raise ValueError("training set is empty")
        self._features = features
        self._labels = list(labels)
        return self

    def _neighbours(self, query: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        assert self._features is not None
        deltas = self._features - query
        distances = np.einsum("ij,ij->i", deltas, deltas)  # squared L2
        k = min(self.k, len(distances))
        order = np.argpartition(distances, k - 1)[:k]
        order = order[np.argsort(distances[order], kind="stable")]
        return order, np.sqrt(distances[order])

    def predict(self, query: np.ndarray) -> str:
        """Majority label among the k nearest; ties go to the closer one."""
        label, _ = self.predict_with_confidence(query)
        return label

    def predict_with_confidence(self, query: np.ndarray) -> tuple[str, float]:
        """Return ``(label, vote_fraction)``."""
        if not self.fitted:
            raise ValueError("classifier is not fitted")
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        order, _ = self._neighbours(query)
        votes = Counter(self._labels[i] for i in order)
        top = max(votes.values())
        tied = [label for label, count in votes.items() if count == top]
        if len(tied) == 1:
            winner = tied[0]
        else:
            # tie: the tied label whose representative appears first
            # (nearest) in the neighbour ordering wins
            winner = next(self._labels[i] for i in order if self._labels[i] in tied)
        return winner, top / len(order)

    def predict_batch(self, queries: np.ndarray) -> list[str]:
        return [self.predict(q) for q in np.asarray(queries, dtype=np.float64)]

    def score(self, features: np.ndarray, labels: list[str]) -> float:
        """Accuracy on a labelled set."""
        predictions = self.predict_batch(features)
        correct = sum(p == t for p, t in zip(predictions, labels))
        return correct / len(labels)
