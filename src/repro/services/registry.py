"""Service discovery.

"The list of services that the application can use is predefined" (§3.1):
the registry tracks which devices host which services (and their RPC
addresses), and answers the deployer's placement queries — most importantly
*"is this service available on this device?"*, the condition for
co-location.
"""

from __future__ import annotations

from ..errors import ServiceError
from ..net.address import Address
from .host import ServiceHost


class ServiceRegistry:
    """Name → hosts mapping across the whole home."""

    def __init__(self) -> None:
        self._hosts: dict[str, list[ServiceHost]] = {}

    def register(self, host: ServiceHost) -> None:
        hosts = self._hosts.setdefault(host.service_name, [])
        if any(h.device.name == host.device.name for h in hosts):
            raise ServiceError(
                f"service {host.service_name!r} already registered on"
                f" {host.device.name!r}"
            )
        hosts.append(host)

    def unregister(self, host: ServiceHost) -> None:
        hosts = self._hosts.get(host.service_name, [])
        if host in hosts:
            hosts.remove(host)

    # -- queries ---------------------------------------------------------------
    def service_names(self) -> list[str]:
        return sorted(name for name, hosts in self._hosts.items() if hosts)

    def hosts_of(self, service_name: str) -> list[ServiceHost]:
        return list(self._hosts.get(service_name, []))

    def devices_hosting(self, service_name: str) -> list[str]:
        return [h.device.name for h in self.hosts_of(service_name)]

    def host_on(self, service_name: str, device_name: str) -> ServiceHost | None:
        """The host of *service_name* on *device_name*, if co-located."""
        for host in self.hosts_of(service_name):
            if host.device.name == device_name:
                return host
        return None

    def any_host(self, service_name: str) -> ServiceHost:
        """Some host of the service; raises if none exist."""
        hosts = self.hosts_of(service_name)
        if not hosts:
            raise ServiceError(f"no host registered for service {service_name!r}")
        return hosts[0]

    def address_of(self, service_name: str, device_name: str | None = None) -> Address:
        """The RPC address of a host (optionally on a specific device)."""
        if device_name is not None:
            host = self.host_on(service_name, device_name)
            if host is None:
                raise ServiceError(
                    f"service {service_name!r} is not hosted on {device_name!r}"
                )
            return host.address
        return self.any_host(service_name).address

    def __contains__(self, service_name: str) -> bool:
        return bool(self._hosts.get(service_name))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ServiceRegistry {self.service_names()}>"
