"""Service autoscaling — the paper's stated future work (§7), implemented.

"It also implies that we should scale the services at this point, which is
convenient in our design as the services are stateless" (§5.2.2). The
autoscaler periodically samples each watched host's queue, adds replicas
when requests are persistently waiting, and retires them again when a host
sits idle.

Decisions are made over **non-overlapping** sample windows: once a window
fills, it is consumed whole (evaluated then cleared). Re-evaluating a
mostly-overlapping window every tick — the pre-fix behaviour — lets a
single transient spike trigger a decision on several consecutive ticks and
burst replicas straight to ``max_replicas``. A cooldown
(``ScalingPolicy.cooldown_s``) additionally spaces decisions for one host,
so each sustained-load episode produces one scaling event per cooldown
period; the invariant auditor flags any pair of events closer than that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import Interrupt
from ..sim.kernel import Kernel
from ..sim.process import Process
from .host import ServiceHost


@dataclass(frozen=True, slots=True)
class ScalingPolicy:
    """When and how far to scale a service host.

    Attributes:
        check_interval_s: seconds between queue samples.
        queue_threshold: average queued requests (over a window) that
            triggers a scale-up.
        window: samples per decision; windows never overlap (a decision
            consumes its window), so decisions for one host are at least
            ``window * check_interval_s`` apart.
        max_replicas: hard ceiling.
        step: replicas added (or removed) per decision.
        min_replicas: floor the scale-down path shrinks toward; never
            below 1.
        cooldown_s: minimum spacing between two scaling decisions for the
            same host, in either direction. Prevents a long backlog from
            stacking scale-ups before earlier replicas have had a chance
            to absorb load.
    """

    check_interval_s: float = 0.5
    queue_threshold: float = 0.5
    window: int = 4
    max_replicas: int = 4
    step: int = 1
    min_replicas: int = 1
    cooldown_s: float = 1.0

    def __post_init__(self) -> None:
        if self.check_interval_s <= 0 or self.window < 1:
            raise ValueError("interval must be positive, window >= 1")
        if self.max_replicas < 1 or self.step < 1:
            raise ValueError("max_replicas and step must be >= 1")
        if self.min_replicas < 1 or self.min_replicas > self.max_replicas:
            raise ValueError("min_replicas must be in [1, max_replicas]")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")


@dataclass(slots=True)
class ScalingEvent:
    """Record of one scaling decision (up or down)."""

    at: float
    service: str
    device: str
    from_replicas: int
    to_replicas: int
    avg_queue: float
    reason: str = "scale_up"


class AutoScaler:
    """Watches service hosts and sizes their replica pools to the load."""

    def __init__(self, kernel: Kernel, policy: ScalingPolicy | None = None) -> None:
        self.kernel = kernel
        self.policy = policy or ScalingPolicy()
        self._hosts: list[ServiceHost] = []
        # keyed by host identity (the object itself), not id(host): an id
        # can be reused by a new host after the original is garbage
        # collected (e.g. replaced during an evacuation), silently crossing
        # the two hosts' sample streams
        self._samples: dict[ServiceHost, list[int]] = {}
        self._last_event_at: dict[ServiceHost, float] = {}
        self.events: list[ScalingEvent] = []
        self._running = False
        self._proc: Process | None = None
        #: The home's :class:`~repro.audit.auditor.InvariantAuditor`, or
        #: ``None`` while auditing is off (set by ``watch_autoscaler``).
        self.auditor: Any = None

    def watch(self, host: ServiceHost) -> None:
        """Add a host to the watch list (before or after start).
        Idempotent: watching a host twice does not double-sample it."""
        if host in self._samples:
            return
        self._hosts.append(host)
        self._samples[host] = []

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._proc = self.kernel.process(self._loop(), name="autoscaler")

    def stop(self) -> None:
        """Stop sampling and cancel the pending kernel tick (the sampling
        process is interrupted rather than left waiting on a live timer)."""
        if not self._running:
            return
        self._running = False
        if self._proc is not None and self._proc.alive:
            self._proc.interrupt("autoscaler stopped")
        self._proc = None

    def _loop(self):
        try:
            while self._running:
                yield self.policy.check_interval_s
                for host in self._hosts:
                    self._sample(host)
        except Interrupt:
            return

    def _sample(self, host: ServiceHost) -> None:
        samples = self._samples[host]
        samples.append(host.queue_length)
        if len(samples) < self.policy.window:
            return
        # non-overlapping windows: the decision consumes its samples, so a
        # transient spike is evaluated once, not on every subsequent tick
        window = samples[:]
        samples.clear()
        avg_queue = sum(window) / len(window)
        now = self.kernel.now
        last = self._last_event_at.get(host)
        if last is not None and now - last < self.policy.cooldown_s:
            return
        if (
            avg_queue >= self.policy.queue_threshold
            and host.replicas < self.policy.max_replicas
        ):
            before = host.replicas
            step = min(self.policy.step, self.policy.max_replicas - before)
            host.add_replica(step)
            self._record(host, before, avg_queue, "scale_up")
        elif (
            avg_queue == 0
            and host.busy_workers == 0
            and host.replicas > self.policy.min_replicas
        ):
            before = host.replicas
            step = min(self.policy.step, before - self.policy.min_replicas)
            host.remove_replica(step)
            self._record(host, before, avg_queue, "scale_down")

    def request_scale(
        self, host: ServiceHost, step: int, reason: str = "slo"
    ) -> bool:
        """Externally request a replica change (e.g. from the SLO
        controller's degradation ladder), honouring the same policy bounds
        and cooldown as the sampling loop so the auditor's event-pacing
        invariant holds for every scaling event, whoever initiated it.

        Returns ``True`` when a replica was actually added or removed;
        ``False`` when the request was refused (cooldown still running, or
        the host already sits at the relevant bound)."""
        if step == 0:
            return False
        now = self.kernel.now
        last = self._last_event_at.get(host)
        if last is not None and now - last < self.policy.cooldown_s:
            return False
        before = host.replicas
        target = max(
            self.policy.min_replicas,
            min(self.policy.max_replicas, before + step),
        )
        if target == before:
            return False
        if target > before:
            host.add_replica(target - before)
        else:
            host.remove_replica(before - target)
        self._record(host, before, float(host.queue_length), reason)
        return True

    def _record(
        self, host: ServiceHost, before: int, avg_queue: float, reason: str
    ) -> None:
        event = ScalingEvent(
            at=self.kernel.now,
            service=host.service_name,
            device=host.device.name,
            from_replicas=before,
            to_replicas=host.replicas,
            avg_queue=avg_queue,
            reason=reason,
        )
        self.events.append(event)
        self._last_event_at[host] = self.kernel.now
        if self.auditor is not None:
            self.auditor.on_scaling_event(self, event)
