"""Service autoscaling — the paper's stated future work (§7), implemented.

"It also implies that we should scale the services at this point, which is
convenient in our design as the services are stateless" (§5.2.2). The
autoscaler periodically samples each watched host's queue and adds replicas
when requests are persistently waiting.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.kernel import Kernel
from .host import ServiceHost


@dataclass(frozen=True, slots=True)
class ScalingPolicy:
    """When and how far to scale a service host.

    Attributes:
        check_interval_s: seconds between queue samples.
        queue_threshold: average queued requests (over a window) that
            triggers a scale-up.
        window: samples per decision.
        max_replicas: hard ceiling.
        step: replicas added per scale-up.
    """

    check_interval_s: float = 0.5
    queue_threshold: float = 0.5
    window: int = 4
    max_replicas: int = 4
    step: int = 1

    def __post_init__(self) -> None:
        if self.check_interval_s <= 0 or self.window < 1:
            raise ValueError("interval must be positive, window >= 1")
        if self.max_replicas < 1 or self.step < 1:
            raise ValueError("max_replicas and step must be >= 1")


@dataclass(slots=True)
class ScalingEvent:
    """Record of one scale-up decision."""

    at: float
    service: str
    device: str
    from_replicas: int
    to_replicas: int
    avg_queue: float


class AutoScaler:
    """Watches service hosts and grows their replica pools under load."""

    def __init__(self, kernel: Kernel, policy: ScalingPolicy | None = None) -> None:
        self.kernel = kernel
        self.policy = policy or ScalingPolicy()
        self._hosts: list[ServiceHost] = []
        self._samples: dict[int, list[int]] = {}
        self.events: list[ScalingEvent] = []
        self._running = False

    def watch(self, host: ServiceHost) -> None:
        """Add a host to the watch list (before or after start)."""
        self._hosts.append(host)
        self._samples[id(host)] = []

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.kernel.process(self._loop(), name="autoscaler")

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running:
            yield self.policy.check_interval_s
            for host in self._hosts:
                self._sample(host)

    def _sample(self, host: ServiceHost) -> None:
        samples = self._samples[id(host)]
        samples.append(host.queue_length)
        if len(samples) < self.policy.window:
            return
        recent = samples[-self.policy.window:]
        del samples[:-self.policy.window]
        avg_queue = sum(recent) / len(recent)
        if (
            avg_queue >= self.policy.queue_threshold
            and host.replicas < self.policy.max_replicas
        ):
            before = host.replicas
            step = min(self.policy.step, self.policy.max_replicas - before)
            host.add_replica(step)
            self.events.append(
                ScalingEvent(
                    at=self.kernel.now,
                    service=host.service_name,
                    device=host.device.name,
                    from_replicas=before,
                    to_replicas=host.replicas,
                    avg_queue=avg_queue,
                )
            )
