"""Per-host service result caching keyed by payload content.

LLAMA-style observation: on edge feeds dominated by static scenes, the
single biggest service-layer win is *not running the service at all*. A
:class:`ResultCache` lives on one :class:`~repro.services.host.ServiceHost`
and maps ``(service, payload content, params)`` to the previous result, so
a byte-identical request resolves instantly — zero queueing, zero simulated
CPU — on both the local and RPC call paths.

Keys come from :func:`payload_cache_key`: a content digest over the request
payload in which frame references are replaced by the digest of the frame
they point at (so the key is stable across reference ids) and every other
leaf — parameters included — is hashed by value. Payloads containing
undigestable leaves get no key and are never cached.

Only services that declare ``cacheable = True`` participate: caching is a
*semantic* contract (the service is a pure function of its payload, side
effects excluded), not something a host can infer.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from ..errors import ServiceError
from ..frames.digest import content_digest
from ..frames.framestore import FrameStore

#: Returned by :meth:`ResultCache.lookup` on a miss (``None`` is a valid
#: cached value, so a sentinel is required).
MISS = object()


def payload_cache_key(
    service_name: str, payload: Any, store: FrameStore | None = None
) -> str | None:
    """A cache key for one service request, or ``None`` if uncacheable.

    ``store`` resolves :class:`~repro.frames.frame.FrameRef` leaves to
    content digests (the local call path); wire payloads carry
    :class:`~repro.frames.codec.EncodedFrame` leaves which digest directly.
    """
    resolver = None
    if store is not None:
        def resolver(ref):
            try:
                return store.digest_of(ref)
            except Exception:
                return None  # foreign/released ref: treat as uncacheable
    digest = content_digest(payload, resolve_ref=resolver)
    if digest is None:
        return None
    return f"{service_name}:{digest}"


class ResultCache:
    """A bounded LRU of service results with optional TTL.

    Entries expire ``ttl_s`` simulated seconds after insertion (``None`` =
    never); :meth:`invalidate` supports explicit invalidation, e.g. after a
    model update or a host restart.
    """

    def __init__(self, max_entries: int = 512, ttl_s: float | None = None) -> None:
        if max_entries < 1:
            raise ServiceError("cache max_entries must be >= 1")
        if ttl_s is not None and ttl_s <= 0:
            raise ServiceError("cache ttl_s must be positive")
        self.max_entries = max_entries
        self.ttl_s = ttl_s
        self._entries: OrderedDict[str, tuple[Any, float]] = OrderedDict()
        # statistics
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    # -- protocol --------------------------------------------------------------
    def lookup(self, key: str, now: float) -> Any:
        """The cached value for *key*, or the :data:`MISS` sentinel."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return MISS
        value, stored_at = entry
        if self.ttl_s is not None and now - stored_at > self.ttl_s:
            del self._entries[key]
            self.expirations += 1
            self.misses += 1
            return MISS
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def store(self, key: str, value: Any, now: float) -> None:
        """Insert (or refresh) *key*; evicts the LRU entry when over size."""
        self._entries[key] = (value, now)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, prefix: str | None = None) -> int:
        """Drop entries; returns how many were removed.

        ``prefix=None`` clears everything. A bare service name (no ``":"``)
        matches on the ``"name:"`` boundary, so invalidating ``"pose"``
        leaves ``"pose_v2:..."`` entries alone. A prefix that already
        contains ``":"`` (e.g. ``"pose:ab12"``) matches raw, allowing
        digest-range invalidation.

        Note: the ``invalidations`` statistic counts *entries removed*, not
        calls to this method — invalidating an already-empty cache leaves
        it unchanged.
        """
        if prefix is None:
            removed = len(self._entries)
            self._entries.clear()
        else:
            needle = prefix if ":" in prefix else prefix + ":"
            doomed = [k for k in self._entries if k.startswith(needle)]
            for key in doomed:
                del self._entries[key]
            removed = len(doomed)
        self.invalidations += removed
        return removed

    # -- introspection ----------------------------------------------------------
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ResultCache {len(self._entries)}/{self.max_entries}"
            f" hit_rate={self.hit_rate():.2f}>"
        )
