"""Service hosting: replicas, queueing, and the local vs remote call paths.

A :class:`ServiceHost` is the container (or native process) running one
service on one device. It exposes two entry points:

* :meth:`call_local` — for co-located modules. Payload frame refs are
  resolved against the device's frame store at execution time: **zero
  serialization, zero copies** — the co-location benefit the paper measures.
* an RPC endpoint — for remote callers (the EdgeEye-style baseline).
  Arriving payloads carry encoded frames, whose decode cost is charged to
  this device's CPU before the service runs.

Requests queue on the replica pool, so a shared service saturates exactly
the way Table 2's two-pipeline column shows.
"""

from __future__ import annotations

from typing import Any

from ..devices.device import Device
from ..errors import ServiceError
from ..frames.payloads import decode_frames_inline, resolve_refs
from ..net.address import Address
from ..net.message import Message
from ..net.rpc import RpcServer
from ..net.transport import Transport
from ..sim.kernel import Kernel
from ..sim.resources import Resource
from ..sim.signals import Signal
from .base import Service, ServiceCallContext


class ServiceHost:
    """One service deployed on one device, with N replica workers."""

    def __init__(
        self,
        kernel: Kernel,
        device: Device,
        service: Service,
        transport: Transport,
        replicas: int = 1,
        native: bool = False,
        port: int | None = None,
    ) -> None:
        if replicas < 1:
            raise ServiceError("need at least one replica")
        self.kernel = kernel
        self.device = device
        self.service = service
        self.native = native
        self.workers = Resource(
            kernel, replicas, name=f"{device.name}.{service.name}.workers"
        )
        self.address = Address(device.name, port or service.default_port)
        self._rpc = RpcServer(kernel, transport, self.address, self._handle_remote)
        self._ctx = ServiceCallContext(
            device_name=device.name,
            frame_store=device.frame_store,
            rng=device.local_rng(f"service/{service.name}"),
            kernel=kernel,
        )
        # statistics
        self.local_calls = 0
        self.remote_calls = 0
        self.errors = 0
        self.total_busy_s = 0.0
        self.total_wait_s = 0.0

    @property
    def service_name(self) -> str:
        return self.service.name

    @property
    def replicas(self) -> int:
        return self.workers.capacity

    def add_replica(self, count: int = 1) -> None:
        """Horizontal scaling: add worker replicas (stateless, so trivial —
        the property the paper's design buys)."""
        self.workers.grow(count)

    # -- call paths -----------------------------------------------------------
    def call_local(self, payload: Any) -> Signal:
        """Co-located call: refs resolve in-place, nothing is serialized."""
        self.local_calls += 1
        return self._execute(payload, decode_cost=0.0)

    def _handle_remote(self, payload: Any, message: Message) -> Signal:
        """Remote call: pay frame decode before the service sees the data."""
        self.remote_calls += 1
        localized, decode_cost = decode_frames_inline(payload)
        return self._execute(localized, decode_cost=decode_cost)

    # -- execution ---------------------------------------------------------------
    def _execute(self, payload: Any, decode_cost: float) -> Signal:
        done = self.kernel.signal(name=f"{self.service_name}.call")
        self.kernel.process(
            self._run(payload, decode_cost, done),
            name=f"{self.service_name}.exec",
        )
        return done

    def _run(self, payload: Any, decode_cost: float, done: Signal):
        grant = yield self.workers.request()
        self.total_wait_s += grant.wait_time
        started = self.kernel.now
        try:
            if decode_cost > 0:
                yield self.device.cpu.execute_fixed(decode_cost)
            resolved = resolve_refs(payload, self.device.frame_store)
            cost = self.service.compute_cost(resolved)
            if cost > 0:
                yield self.device.cpu.execute(cost)
            result = self.service.handle(resolved, self._ctx)
        except Exception as exc:
            self.errors += 1
            self.workers.release(grant)
            done.fail(ServiceError(f"{self.service_name} failed: {exc}"))
            return
        self.total_busy_s += self.kernel.now - started
        self.workers.release(grant)
        done.succeed(result)

    # -- introspection ---------------------------------------------------------
    @property
    def queue_length(self) -> int:
        return self.workers.queue_length

    @property
    def busy_workers(self) -> int:
        return self.workers.in_use

    def utilization(self) -> float:
        return self.workers.utilization()

    def close(self) -> None:
        self._rpc.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "native" if self.native else "container"
        return (
            f"<ServiceHost {self.service_name}@{self.device.name} ({kind},"
            f" {self.replicas} replicas)>"
        )
