"""Service hosting: replicas, queueing, and the local vs remote call paths.

A :class:`ServiceHost` is the container (or native process) running one
service on one device. It exposes two entry points:

* :meth:`call_local` — for co-located modules. Payload frame refs are
  resolved against the device's frame store at execution time: **zero
  serialization, zero copies** — the co-location benefit the paper measures.
* an RPC endpoint — for remote callers (the EdgeEye-style baseline).
  Arriving payloads carry encoded frames, whose decode cost is charged to
  this device's CPU before the service runs.

Requests queue on the replica pool, so a shared service saturates exactly
the way Table 2's two-pipeline column shows.

Failure semantics: :meth:`crash` models the service process dying — the RPC
endpoint unbinds (remote callers see delivery failures, which are retryable
and failover-able), in-flight calls are interrupted and failed, and the
worker pool is discarded wholesale. :meth:`restart` rebinds the endpoint
with a fresh pool. :meth:`close` is the orderly, idempotent teardown.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from ..devices.device import Device
from ..errors import Interrupt, ServiceError
from ..frames.payloads import decode_frames_inline, resolve_refs
from ..net.address import Address
from ..net.message import H_TRACE, Message
from ..net.rpc import RpcServer
from ..net.transport import Transport
from ..sim.events import Event
from ..sim.kernel import Kernel
from ..sim.process import Process
from ..sim.resources import Resource
from ..sim.signals import Signal
from ..trace.span import (
    CAT_COMPUTE,
    CAT_QUEUE,
    CAT_SERIALIZE,
    CAT_WIRE,
    SpanContext,
)
from .base import Service, ServiceCallContext
from .cache import MISS, ResultCache, payload_cache_key


class _BatchItemError:
    """Marks one poisoned item inside an otherwise-successful batch."""

    __slots__ = ("exc",)

    def __init__(self, exc: Exception) -> None:
        self.exc = exc


#: After this many consecutive company-timer probes that dispatched solo,
#: the batcher stops waiting for company (lone requests go out at once)...
SOLO_PROBE_LIMIT = 4
#: ...and after this many immediate solo dispatches it probes again, in
#: case the workload has become batchable. Bounds the worst-case latency
#: waste on unbatchable traffic to a few ms per hundred requests.
SOLO_RETRY_AFTER = 64


class ServiceHost:
    """One service deployed on one device, with N replica workers."""

    def __init__(
        self,
        kernel: Kernel,
        device: Device,
        service: Service,
        transport: Transport,
        replicas: int = 1,
        native: bool = False,
        port: int | None = None,
    ) -> None:
        if replicas < 1:
            raise ServiceError("need at least one replica")
        self.kernel = kernel
        self.device = device
        self.service = service
        self.native = native
        self._replica_target = replicas
        self.workers = Resource(
            kernel, replicas, name=f"{device.name}.{service.name}.workers"
        )
        #: The device's shared :class:`~repro.services.pool.ReplicaPool`
        #: when pooled parallelism is on; ``workers`` is then a
        #: :class:`~repro.services.pool.PoolLease` instead of a private
        #: Resource (see :meth:`attach_pool`).
        self.pool: Any = None
        self.address = Address(device.name, port or service.default_port)
        self._rpc = RpcServer(kernel, transport, self.address, self._handle_remote)
        self._ctx = ServiceCallContext(
            device_name=device.name,
            frame_store=device.frame_store,
            rng=device.local_rng(f"service/{service.name}"),
            kernel=kernel,
        )
        #: In-flight calls: result signal -> executing process.
        self._inflight: dict[Signal, Process] = {}
        self.up = True
        self._closed = False
        # fast-path state (both off by default: the seed call path)
        self._cache: ResultCache | None = None
        self._batch_max = 1
        self._batch_wait_s = 0.0
        #: queued-but-not-dispatched requests awaiting batch formation:
        #: (payload, decode_cost, done, cache_key, enqueued_at, trace).
        self._batch_pending: list[
            tuple[Any, float, Signal, str | None, float, SpanContext | None]
        ] = []
        self._batch_timer: Event | None = None
        #: True while the armed timer is a company *probe* (positive wait),
        #: as opposed to a zero-delay coalescing flush.
        self._batch_probe = False
        self._solo_streak = 0
        self._solo_immediate = 0
        # statistics
        self.local_calls = 0
        self.remote_calls = 0
        self.errors = 0
        self.crashes = 0
        self.dropped_in_flight = 0
        self.total_busy_s = 0.0
        self.total_wait_s = 0.0
        self.cache_hits = 0
        self.cache_misses = 0
        self.batched_calls = 0
        #: dispatch-size histogram (only populated while batching is on).
        self.batch_size_counts: Counter[int] = Counter()
        #: the home's :class:`~repro.trace.recorder.TraceRecorder`, or
        #: ``None`` while tracing is off (set by ``enable_tracing``).
        self.tracer: Any = None

    @property
    def service_name(self) -> str:
        return self.service.name

    @property
    def replicas(self) -> int:
        return self.workers.capacity

    def attach_pool(self, pool: Any) -> None:
        """Switch this host to pool-based parallelism: its private worker
        Resource is replaced by a :class:`~repro.services.pool.PoolLease`
        on the device's shared pool, with the configured replica count as
        the initial share. Requires an idle host (no busy workers, no
        queued or batch-pending requests) so no grant straddles the swap.
        Idempotent for the same pool."""
        if self.pool is pool:
            return
        if self.pool is not None:
            raise ServiceError(
                f"{self.service_name}@{self.device.name} is already attached"
                " to a replica pool"
            )
        if pool.device_name != self.device.name:
            raise ServiceError(
                f"pool on {pool.device_name!r} cannot back"
                f" {self.service_name}@{self.device.name} — replica pools"
                " are device-local"
            )
        if (self.workers.in_use or self.workers.queue_length
                or self._batch_pending):
            raise ServiceError(
                f"attach_pool() requires an idle host;"
                f" {self.service_name}@{self.device.name} has"
                f" {self.workers.in_use} busy worker(s) and"
                f" {self.queue_length} queued request(s)"
            )
        self.pool = pool
        self.workers = pool.attach(self, share=self._replica_target)

    def add_replica(self, count: int = 1) -> None:
        """Horizontal scaling: add worker replicas (stateless, so trivial —
        the property the paper's design buys). On a pooled host this raises
        the service's *share* of the device pool."""
        self._replica_target += count
        self.workers.grow(count)

    def remove_replica(self, count: int = 1) -> None:
        """Scale back down toward one replica. Lazy: a busy worker finishes
        its current call before its slot disappears, so no in-flight
        request is dropped."""
        if count < 1:
            raise ServiceError("remove_replica() needs a positive count")
        if self._replica_target - count < 1:
            raise ServiceError("cannot scale below one replica")
        self._replica_target -= count
        self.workers.shrink(count)

    # -- fast path configuration -------------------------------------------------
    def enable_result_cache(
        self, max_entries: int = 512, ttl_s: float | None = None
    ) -> None:
        """Attach a result cache. Effective only for services that declare
        ``cacheable = True``; on them, a byte-identical repeated request is
        answered instantly with zero simulated CPU."""
        self._cache = ResultCache(max_entries=max_entries, ttl_s=ttl_s)

    def enable_batching(self, max_batch: int = 4, max_wait_s: float = 0.004) -> None:
        """Coalesce queued requests into batches of up to *max_batch*
        (bounded also by the service's own ``max_batch``), waiting at most
        *max_wait_s* for company. Requests arriving at an idle host still
        dispatch immediately — batching only engages under contention."""
        if max_batch < 1:
            raise ServiceError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ServiceError("max_wait_s must be >= 0")
        self._batch_max = max_batch
        self._batch_wait_s = max_wait_s

    def invalidate_cache(self) -> int:
        """Explicitly drop all cached results (e.g. after a model update);
        returns how many entries were removed."""
        if self._cache is None:
            return 0
        return self._cache.invalidate()

    @property
    def result_cache(self) -> ResultCache | None:
        return self._cache

    @property
    def batch_wait_s(self) -> float:
        """Worst-case extra latency the batcher may add (0 when off)."""
        if self._effective_max_batch() > 1:
            return self._batch_wait_s
        return 0.0

    def _effective_max_batch(self) -> int:
        return min(self._batch_max, self.service.max_batch)

    def _cache_key(self, payload: Any, use_store: bool) -> str | None:
        if self._cache is None or not self.service.cacheable:
            return None
        return payload_cache_key(
            self.service_name, payload,
            store=self.device.frame_store if use_store else None,
        )

    def _cache_lookup(self, key: str | None) -> Any:
        """Look up *key*; returns MISS when absent/uncacheable. Counts only
        keyed requests toward the hit/miss stats."""
        if key is None or self._cache is None:
            return MISS
        value = self._cache.lookup(key, self.kernel.now)
        if value is MISS:
            self.cache_misses += 1
        else:
            self.cache_hits += 1
        return value

    # -- tracing -------------------------------------------------------------
    def _trace_span(
        self,
        trace: SpanContext | None,
        name: str,
        category: str,
        start: float,
        end: float,
        **attrs: Any,
    ) -> None:
        """Record a server-side span under the caller's call context; a
        no-op whenever tracing is off or the call carried no context."""
        if self.tracer is None or trace is None:
            return
        self.tracer.record(
            name, category, parent=trace, start=start, end=end,
            device=self.device.name, actor=f"service:{self.service_name}",
            **attrs,
        )

    def _trace_cache_hit(self, trace: SpanContext | None) -> None:
        if self.tracer is None or trace is None:
            return
        self.tracer.annotate(
            "cache.hit", parent=trace,
            device=self.device.name, actor=f"service:{self.service_name}",
        )

    # -- call paths -----------------------------------------------------------
    def call_local(self, payload: Any, trace: SpanContext | None = None) -> Signal:
        """Co-located call: refs resolve in-place, nothing is serialized.

        With a result cache attached, a repeated payload returns an
        already-succeeded signal: no worker, no queueing, no simulated CPU.
        """
        self.local_calls += 1
        if not self.up:
            self.errors += 1
            return self.kernel.signal(name=f"{self.service_name}.call").fail(
                ServiceError(f"{self.service_name}@{self.device.name} is down")
            )
        key = self._cache_key(payload, use_store=True)
        cached = self._cache_lookup(key)
        if cached is not MISS:
            self._trace_cache_hit(trace)
            return self.kernel.signal(
                name=f"{self.service_name}.call"
            ).succeed(cached)
        return self._submit(payload, decode_cost=0.0, key=key, trace=trace)

    def _handle_remote(self, payload: Any, message: Message) -> Signal:
        """Remote call: pay frame decode before the service sees the data.

        The cache key is computed over the *wire* payload, so a repeated
        request skips the decode as well as the service execution.
        """
        self.remote_calls += 1
        trace = None
        if self.tracer is not None:
            trace = SpanContext.from_header(message.headers.get(H_TRACE))
            if (trace is not None and message.sent_at is not None
                    and message.delivered_at is not None):
                self._trace_span(
                    trace, "rpc.transfer", CAT_WIRE,
                    start=message.sent_at, end=message.delivered_at,
                    bytes=message.size_bytes,
                    src=message.src.device if message.src else "?",
                )
        if not self.up:  # crash raced an in-flight request
            self.errors += 1
            return self.kernel.signal(name=f"{self.service_name}.call").fail(
                ServiceError(f"{self.service_name}@{self.device.name} is down")
            )
        key = self._cache_key(payload, use_store=True)
        cached = self._cache_lookup(key)
        if cached is not MISS:
            self._trace_cache_hit(trace)
            return self.kernel.signal(
                name=f"{self.service_name}.call"
            ).succeed(cached)
        localized, decode_cost = decode_frames_inline(payload)
        return self._submit(localized, decode_cost=decode_cost, key=key,
                            trace=trace)

    # -- execution ---------------------------------------------------------------
    def _submit(self, payload: Any, decode_cost: float, key: str | None,
                trace: SpanContext | None = None) -> Signal:
        if self._effective_max_batch() > 1:
            return self._enqueue_batch(payload, decode_cost, key, trace)
        return self._execute(payload, decode_cost, key, trace)

    def _execute(self, payload: Any, decode_cost: float, key: str | None,
                 trace: SpanContext | None = None) -> Signal:
        done = self.kernel.signal(name=f"{self.service_name}.call")
        proc = self.kernel.process(
            self._run(payload, decode_cost, done, key, trace),
            name=f"{self.service_name}.exec",
        )
        self._inflight[done] = proc
        return done

    def _run(self, payload: Any, decode_cost: float, done: Signal,
             key: str | None, trace: SpanContext | None = None):
        grant = None
        result = None
        try:
            grant = yield self.workers.request()
            self.total_wait_s += grant.wait_time
            started = self.kernel.now
            if grant.wait_time > 0:
                self._trace_span(
                    trace, "service.queue", CAT_QUEUE,
                    start=started - grant.wait_time, end=started,
                )
            if decode_cost > 0:
                yield self.device.cpu.execute_fixed(decode_cost)
                self._trace_span(
                    trace, "rpc.deserialize", CAT_SERIALIZE,
                    start=started, end=self.kernel.now,
                )
            compute_started = self.kernel.now
            resolved = resolve_refs(payload, self.device.frame_store)
            cost = self.service.compute_cost(resolved)
            if cost > 0:
                yield self.device.cpu.execute(cost)
            result = self.service.handle(resolved, self._ctx)
            self._trace_span(
                trace, f"service.compute:{self.service_name}", CAT_COMPUTE,
                start=compute_started, end=self.kernel.now,
            )
            self.total_busy_s += self.kernel.now - started
        except Interrupt as stop:
            if done.pending:
                done.fail(ServiceError(
                    f"{self.service_name}@{self.device.name} dropped call:"
                    f" {stop.cause}"
                ))
            return
        except Exception as exc:
            self.errors += 1
            if done.pending:
                done.fail(ServiceError(f"{self.service_name} failed: {exc}"))
            return
        finally:
            self._inflight.pop(done, None)
            # a grant from a discarded pre-crash worker pool dies with that
            # pool; a pooled lease keeps owning pre-crash grants so the
            # shared slot always comes back
            if grant is not None and self.workers.owns(grant):
                self.workers.release(grant)
            if self._batch_pending:  # batching was enabled mid-flight
                self._pump_batches()
        if key is not None and self._cache is not None:
            self._cache.store(key, result, self.kernel.now)
        if done.pending:
            done.succeed(result)

    # -- batch formation ----------------------------------------------------------
    # Requests never sit in the worker resource queue on the batch path:
    # while all workers are busy they accumulate in ``_batch_pending``
    # (free batch formation — they would have queued anyway), and a batch
    # dispatches only when a worker is actually free. Three dispatch
    # triggers:
    #   * a zero-delay flush scheduled on arrival at a free host — it runs
    #     after the current event cascade, so requests issued at the same
    #     simulated instant (e.g. two pipelines unblocked by one completed
    #     batch) coalesce with NO added simulated latency;
    #   * the pending count reaching the effective max batch;
    #   * the ``max_wait_s`` company timer, armed when a worker frees up
    #     and finds only a lone pending request — the one bounded wait that
    #     lets out-of-phase callers fall into a shared batch rhythm.

    def _worker_free(self) -> bool:
        return self.workers.available > 0 and self.workers.queue_length == 0

    def _enqueue_batch(self, payload: Any, decode_cost: float,
                       key: str | None,
                       trace: SpanContext | None = None) -> Signal:
        done = self.kernel.signal(name=f"{self.service_name}.call")
        self._batch_pending.append(
            (payload, decode_cost, done, key, self.kernel.now, trace)
        )
        if self._worker_free():
            if len(self._batch_pending) >= self._effective_max_batch():
                self._dispatch_pending()
            elif self._batch_timer is None:
                self._schedule_flush(0.0)  # coalesce same-instant arrivals
        return done

    def _schedule_flush(self, delay: float) -> None:
        self._batch_probe = delay > 0
        self._batch_timer = self.kernel.schedule(delay, self._flush_timer)

    def _flush_timer(self) -> None:
        probed = self._batch_probe
        self._batch_timer = None
        self._batch_probe = False
        if self._batch_pending and self._worker_free():
            self._dispatch_pending(probed=probed)
        # all workers busy: keep accumulating; the next release pumps

    def _dispatch_pending(self, probed: bool = False) -> None:
        if self._batch_timer is not None:
            self.kernel.cancel(self._batch_timer)
            self._batch_timer = None
            self._batch_probe = False
        limit = self._effective_max_batch()
        items = self._batch_pending[:limit]
        del self._batch_pending[:limit]
        if len(items) >= 2:
            # company found: the workload batches, keep probing for it
            self._solo_streak = 0
            self._solo_immediate = 0
        elif probed:
            self._solo_streak += 1
        self._dispatch_batch(items)

    def _pump_batches(self) -> None:
        """On a worker state change: dispatch pending work or arm the
        company timer for a lone request."""
        if not self._batch_pending or not self._worker_free():
            return
        if len(self._batch_pending) >= 2 or self._batch_wait_s == 0:
            self._dispatch_pending()
            return
        if self._solo_streak >= SOLO_PROBE_LIMIT:
            # recent probes all went out alone — stop taxing lone requests,
            # but probe again occasionally in case the load shape changed
            self._solo_immediate += 1
            if self._solo_immediate >= SOLO_RETRY_AFTER:
                self._solo_streak = 0
                self._solo_immediate = 0
            self._dispatch_pending()
        elif self._batch_timer is None:
            # a lone request gets one bounded window for company before
            # going out solo
            self._schedule_flush(self._batch_wait_s)

    def _dispatch_batch(
        self,
        items: list[tuple[Any, float, Signal, str | None, float,
                          SpanContext | None]],
    ) -> None:
        proc = self.kernel.process(
            self._run_batch(items), name=f"{self.service_name}.exec"
        )
        for _, _, done, _, _, _ in items:
            self._inflight[done] = proc

    def _run_batch(
        self,
        items: list[tuple[Any, float, Signal, str | None, float,
                          SpanContext | None]],
    ):
        grant = None
        results: list[Any] | None = None
        dones = [done for _, _, done, _, _, _ in items]
        try:
            grant = yield self.workers.request()
            # availability is accurate again: further pending work may have
            # room on the remaining replicas
            self._pump_batches()
            started = self.kernel.now
            for _, _, _, _, enqueued_at, trace in items:
                self.total_wait_s += started - enqueued_at
                if started > enqueued_at:
                    self._trace_span(
                        trace, "service.batch_wait", CAT_QUEUE,
                        start=enqueued_at, end=started,
                    )
            total_decode = sum(dc for _, dc, _, _, _, _ in items)
            if total_decode > 0:
                yield self.device.cpu.execute_fixed(total_decode)
            decode_done = self.kernel.now
            for _, dc, _, _, _, trace in items:
                if dc > 0:
                    self._trace_span(
                        trace, "rpc.deserialize", CAT_SERIALIZE,
                        start=started, end=decode_done,
                    )
            resolved = [
                resolve_refs(p, self.device.frame_store)
                for p, _, _, _, _, _ in items
            ]
            compute_started = self.kernel.now
            cost = self.service.batch_compute_cost(resolved)
            if cost > 0:
                yield self.device.cpu.execute(cost)
            try:
                results = self.service.handle_batch(resolved, self._ctx)
                if len(results) != len(items):
                    raise ServiceError(
                        f"{self.service_name}.handle_batch returned"
                        f" {len(results)} results for {len(items)} payloads"
                    )
            except Interrupt:
                raise
            except Exception:
                # per-item fallback: rerun individually so one poisoned
                # payload fails alone instead of taking the batch down
                results = []
                for payload in resolved:
                    try:
                        results.append(self.service.handle(payload, self._ctx))
                    except Exception as exc:
                        results.append(_BatchItemError(exc))
            compute_done = self.kernel.now
            for _, _, _, _, _, trace in items:
                self._trace_span(
                    trace, f"service.compute:{self.service_name}",
                    CAT_COMPUTE, start=compute_started, end=compute_done,
                    batch_size=len(items),
                )
            self.total_busy_s += self.kernel.now - started
            self.batched_calls += 1
            self.batch_size_counts[len(items)] += 1
        except Interrupt as stop:
            for done in dones:
                if done.pending:
                    done.fail(ServiceError(
                        f"{self.service_name}@{self.device.name} dropped call:"
                        f" {stop.cause}"
                    ))
            return
        except Exception as exc:
            self.errors += 1
            for done in dones:
                if done.pending:
                    done.fail(ServiceError(f"{self.service_name} failed: {exc}"))
            return
        finally:
            for done in dones:
                self._inflight.pop(done, None)
            # a grant from a discarded pre-crash worker pool dies with that
            # pool; a pooled lease keeps owning pre-crash grants so the
            # shared slot always comes back
            if grant is not None and self.workers.owns(grant):
                self.workers.release(grant)
            self._pump_batches()
        now = self.kernel.now
        assert results is not None
        for (_, _, done, key, _, _), result in zip(items, results):
            if isinstance(result, _BatchItemError):
                self.errors += 1
                if done.pending:
                    done.fail(ServiceError(
                        f"{self.service_name} failed: {result.exc}"
                    ))
                continue
            if key is not None and self._cache is not None:
                self._cache.store(key, result, now)
            if done.pending:
                done.succeed(result)

    # -- failure lifecycle -------------------------------------------------------
    def crash(self) -> None:
        """The service process dies: endpoint unbound, in-flight calls
        dropped, worker pool discarded. Idempotent."""
        if not self.up:
            return
        self.up = False
        self.crashes += 1
        self._rpc.close()
        self._drop_inflight(f"{self.service_name}@{self.device.name} crashed")
        self._drop_batch_pending(
            f"{self.service_name}@{self.device.name} crashed"
        )
        # conservative: a restarted process may come back with a different
        # model revision, so cached results do not survive the crash
        self.invalidate_cache()
        if self.pool is not None:
            # the pool is shared — never discarded. Not-yet-granted requests
            # are revoked (their slots bounce back on grant); grants already
            # held stay owned so the interrupted calls' cleanup releases them.
            self.workers.revoke_pending()
        else:
            self.workers = Resource(
                self.kernel, self._replica_target,
                name=f"{self.device.name}.{self.service_name}.workers",
            )

    def restart(self) -> None:
        """Bring a crashed host back: rebind the RPC endpoint. Idempotent;
        a closed host stays closed."""
        if self.up or self._closed:
            return
        self.up = True
        self._rpc.open()

    def _drop_inflight(self, reason: str) -> None:
        inflight = list(self._inflight.items())
        self._inflight.clear()
        self.dropped_in_flight += len(inflight)
        for done, proc in inflight:
            proc.interrupt(reason)
            if done.pending:
                done.fail(ServiceError(f"call dropped: {reason}"))

    def _drop_batch_pending(self, reason: str) -> None:
        """Fail requests still waiting for batch formation (never
        dispatched, so there is no process to interrupt)."""
        if self._batch_timer is not None:
            self.kernel.cancel(self._batch_timer)
            self._batch_timer = None
        pending, self._batch_pending = self._batch_pending, []
        self.dropped_in_flight += len(pending)
        for _, _, done, _, _, _ in pending:
            if done.pending:
                done.fail(ServiceError(f"call dropped: {reason}"))

    def close(self) -> None:
        """Orderly, idempotent teardown: unbind and fail anything pending."""
        if self._closed:
            return
        self._closed = True
        self.up = False
        self._rpc.close()
        self._drop_inflight(f"{self.service_name}@{self.device.name} closed")
        self._drop_batch_pending(
            f"{self.service_name}@{self.device.name} closed"
        )
        if self.pool is not None:
            self.workers.revoke_pending()
            self.pool.detach(self.service_name)

    # -- introspection ---------------------------------------------------------
    @property
    def queue_length(self) -> int:
        # requests awaiting batch formation are queued load too (empty
        # unless batching is enabled)
        return self.workers.queue_length + len(self._batch_pending)

    @property
    def busy_workers(self) -> int:
        return self.workers.in_use

    def utilization(self) -> float:
        return self.workers.utilization()

    def cache_hit_rate(self) -> float:
        """Fraction of cacheable requests answered from the result cache."""
        total = self.cache_hits + self.cache_misses
        if total == 0:
            return 0.0
        return self.cache_hits / total

    def avg_batch_size(self) -> float:
        """Observed mean dispatch size (1.0 before any batched dispatch)."""
        dispatches = sum(self.batch_size_counts.values())
        if dispatches == 0:
            return 1.0
        total_items = sum(n * c for n, c in self.batch_size_counts.items())
        return total_items / dispatches

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "native" if self.native else "container"
        state = "up" if self.up else "down"
        return (
            f"<ServiceHost {self.service_name}@{self.device.name} ({kind},"
            f" {self.replicas} replicas, {state})>"
        )
