"""Service hosting: replicas, queueing, and the local vs remote call paths.

A :class:`ServiceHost` is the container (or native process) running one
service on one device. It exposes two entry points:

* :meth:`call_local` — for co-located modules. Payload frame refs are
  resolved against the device's frame store at execution time: **zero
  serialization, zero copies** — the co-location benefit the paper measures.
* an RPC endpoint — for remote callers (the EdgeEye-style baseline).
  Arriving payloads carry encoded frames, whose decode cost is charged to
  this device's CPU before the service runs.

Requests queue on the replica pool, so a shared service saturates exactly
the way Table 2's two-pipeline column shows.

Failure semantics: :meth:`crash` models the service process dying — the RPC
endpoint unbinds (remote callers see delivery failures, which are retryable
and failover-able), in-flight calls are interrupted and failed, and the
worker pool is discarded wholesale. :meth:`restart` rebinds the endpoint
with a fresh pool. :meth:`close` is the orderly, idempotent teardown.
"""

from __future__ import annotations

from typing import Any

from ..devices.device import Device
from ..errors import Interrupt, ServiceError
from ..frames.payloads import decode_frames_inline, resolve_refs
from ..net.address import Address
from ..net.message import Message
from ..net.rpc import RpcServer
from ..net.transport import Transport
from ..sim.kernel import Kernel
from ..sim.process import Process
from ..sim.resources import Resource
from ..sim.signals import Signal
from .base import Service, ServiceCallContext


class ServiceHost:
    """One service deployed on one device, with N replica workers."""

    def __init__(
        self,
        kernel: Kernel,
        device: Device,
        service: Service,
        transport: Transport,
        replicas: int = 1,
        native: bool = False,
        port: int | None = None,
    ) -> None:
        if replicas < 1:
            raise ServiceError("need at least one replica")
        self.kernel = kernel
        self.device = device
        self.service = service
        self.native = native
        self._replica_target = replicas
        self.workers = Resource(
            kernel, replicas, name=f"{device.name}.{service.name}.workers"
        )
        self.address = Address(device.name, port or service.default_port)
        self._rpc = RpcServer(kernel, transport, self.address, self._handle_remote)
        self._ctx = ServiceCallContext(
            device_name=device.name,
            frame_store=device.frame_store,
            rng=device.local_rng(f"service/{service.name}"),
            kernel=kernel,
        )
        #: In-flight calls: result signal -> executing process.
        self._inflight: dict[Signal, Process] = {}
        self.up = True
        self._closed = False
        # statistics
        self.local_calls = 0
        self.remote_calls = 0
        self.errors = 0
        self.crashes = 0
        self.dropped_in_flight = 0
        self.total_busy_s = 0.0
        self.total_wait_s = 0.0

    @property
    def service_name(self) -> str:
        return self.service.name

    @property
    def replicas(self) -> int:
        return self.workers.capacity

    def add_replica(self, count: int = 1) -> None:
        """Horizontal scaling: add worker replicas (stateless, so trivial —
        the property the paper's design buys)."""
        self._replica_target += count
        self.workers.grow(count)

    # -- call paths -----------------------------------------------------------
    def call_local(self, payload: Any) -> Signal:
        """Co-located call: refs resolve in-place, nothing is serialized."""
        self.local_calls += 1
        if not self.up:
            self.errors += 1
            return self.kernel.signal(name=f"{self.service_name}.call").fail(
                ServiceError(f"{self.service_name}@{self.device.name} is down")
            )
        return self._execute(payload, decode_cost=0.0)

    def _handle_remote(self, payload: Any, message: Message) -> Signal:
        """Remote call: pay frame decode before the service sees the data."""
        self.remote_calls += 1
        if not self.up:  # crash raced an in-flight request
            self.errors += 1
            return self.kernel.signal(name=f"{self.service_name}.call").fail(
                ServiceError(f"{self.service_name}@{self.device.name} is down")
            )
        localized, decode_cost = decode_frames_inline(payload)
        return self._execute(localized, decode_cost=decode_cost)

    # -- execution ---------------------------------------------------------------
    def _execute(self, payload: Any, decode_cost: float) -> Signal:
        done = self.kernel.signal(name=f"{self.service_name}.call")
        proc = self.kernel.process(
            self._run(payload, decode_cost, done),
            name=f"{self.service_name}.exec",
        )
        self._inflight[done] = proc
        return done

    def _run(self, payload: Any, decode_cost: float, done: Signal):
        grant = None
        result = None
        try:
            grant = yield self.workers.request()
            self.total_wait_s += grant.wait_time
            started = self.kernel.now
            if decode_cost > 0:
                yield self.device.cpu.execute_fixed(decode_cost)
            resolved = resolve_refs(payload, self.device.frame_store)
            cost = self.service.compute_cost(resolved)
            if cost > 0:
                yield self.device.cpu.execute(cost)
            result = self.service.handle(resolved, self._ctx)
            self.total_busy_s += self.kernel.now - started
        except Interrupt as stop:
            if done.pending:
                done.fail(ServiceError(
                    f"{self.service_name}@{self.device.name} dropped call:"
                    f" {stop.cause}"
                ))
            return
        except Exception as exc:
            self.errors += 1
            if done.pending:
                done.fail(ServiceError(f"{self.service_name} failed: {exc}"))
            return
        finally:
            self._inflight.pop(done, None)
            # a grant from a pre-crash worker pool dies with that pool
            if (grant is not None and not grant.released
                    and grant.resource is self.workers):
                self.workers.release(grant)
        if done.pending:
            done.succeed(result)

    # -- failure lifecycle -------------------------------------------------------
    def crash(self) -> None:
        """The service process dies: endpoint unbound, in-flight calls
        dropped, worker pool discarded. Idempotent."""
        if not self.up:
            return
        self.up = False
        self.crashes += 1
        self._rpc.close()
        self._drop_inflight(f"{self.service_name}@{self.device.name} crashed")
        self.workers = Resource(
            self.kernel, self._replica_target,
            name=f"{self.device.name}.{self.service_name}.workers",
        )

    def restart(self) -> None:
        """Bring a crashed host back: rebind the RPC endpoint. Idempotent;
        a closed host stays closed."""
        if self.up or self._closed:
            return
        self.up = True
        self._rpc.open()

    def _drop_inflight(self, reason: str) -> None:
        inflight = list(self._inflight.items())
        self._inflight.clear()
        self.dropped_in_flight += len(inflight)
        for done, proc in inflight:
            proc.interrupt(reason)
            if done.pending:
                done.fail(ServiceError(f"call dropped: {reason}"))

    def close(self) -> None:
        """Orderly, idempotent teardown: unbind and fail anything pending."""
        if self._closed:
            return
        self._closed = True
        self.up = False
        self._rpc.close()
        self._drop_inflight(f"{self.service_name}@{self.device.name} closed")

    # -- introspection ---------------------------------------------------------
    @property
    def queue_length(self) -> int:
        return self.workers.queue_length

    @property
    def busy_workers(self) -> int:
        return self.workers.in_use

    def utilization(self) -> float:
        return self.workers.utilization()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "native" if self.native else "container"
        state = "up" if self.up else "down"
        return (
            f"<ServiceHost {self.service_name}@{self.device.name} ({kind},"
            f" {self.replicas} replicas, {state})>"
        )
