"""Built-in stateless services: the paper's service catalog."""

from .activity import ActivityClassifierService
from .display import DisplayedFrame, DisplayService, DisplaySink
from .iot import ActuationEvent, IoTActuatorService, IoTDeviceFleet
from .objects import (
    FaceDetectionService,
    ImageClassificationService,
    ObjectDetectionService,
)
from .pose import PoseDetectorService
from .repcount import RepCounterService
from .tracker import ObjectTrackingService, deserialize_track, serialize_track

__all__ = [
    "ObjectTrackingService",
    "deserialize_track",
    "serialize_track",
    "ActivityClassifierService",
    "ActuationEvent",
    "DisplayService",
    "DisplaySink",
    "DisplayedFrame",
    "FaceDetectionService",
    "IoTActuatorService",
    "IoTDeviceFleet",
    "ImageClassificationService",
    "ObjectDetectionService",
    "PoseDetectorService",
    "RepCounterService",
]
