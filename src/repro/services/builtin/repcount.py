"""The rep counting service (§4.1.3).

Stateless: the module accumulates the bout's per-frame features (module
state) and ships the whole feature matrix per call; the service re-clusters
and counts. Compute cost therefore scales mildly with bout length.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ...errors import ServiceError
from ...vision.repcounter import DEBOUNCE_FRAMES, RepCounter
from ..base import Service, ServiceCallContext


class RepCounterService(Service):
    """k-means (k=2) rep counting over a bout's per-frame features.

    Request: ``{"features": (n, 34) ndarray}``.
    Response: ``{"reps": int, "frames": int}``.
    """

    name = "rep_counter"
    reference_cost_s = 0.002  # base; see compute_cost
    per_frame_cost_s = 4.0e-6
    default_port = 7003
    # deterministic clustering (fixed seed) over the shipped feature matrix
    cacheable = True

    def __init__(self, debounce: int = DEBOUNCE_FRAMES, seed: int = 0) -> None:
        self.counter = RepCounter(debounce=debounce, seed=seed)

    def compute_cost(self, payload: Any) -> float:
        frames = 0
        if isinstance(payload, dict):
            features = payload.get("features")
            if features is not None:
                frames = len(features)
        return self.reference_cost_s + self.per_frame_cost_s * frames

    def handle(self, payload: Any, ctx: ServiceCallContext) -> dict[str, Any]:
        features = payload.get("features") if isinstance(payload, dict) else None
        if features is None:
            raise ServiceError("rep_counter expects {'features': ndarray}")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ServiceError("features must be a (n, d) matrix")
        reps = self.counter.count_features(features)
        return {"reps": int(reps), "frames": int(len(features))}
