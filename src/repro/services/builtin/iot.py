"""The IoT actuator service behind the gesture-control app (§4.2).

"Two examples are using 'clapping' to toggle the light in the living room
and using 'waving' to toggle a doorbell camera." The actuator fleet is an
output sink (like a screen): the service toggles named devices and records
the command log for assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ...errors import ServiceError
from ..base import Service, ServiceCallContext


@dataclass(slots=True)
class ActuationEvent:
    """One executed IoT command."""

    at: float
    target: str
    action: str
    new_state: bool


@dataclass(slots=True)
class IoTDeviceFleet:
    """The controllable home devices and their on/off states."""

    states: dict[str, bool] = field(default_factory=dict)
    log: list[ActuationEvent] = field(default_factory=list)

    def ensure(self, target: str, initial: bool = False) -> None:
        self.states.setdefault(target, initial)

    def toggle(self, target: str, at: float) -> bool:
        if target not in self.states:
            raise ServiceError(f"unknown IoT device {target!r}")
        self.states[target] = not self.states[target]
        self.log.append(ActuationEvent(at, target, "toggle", self.states[target]))
        return self.states[target]

    def set_state(self, target: str, on: bool, at: float) -> bool:
        if target not in self.states:
            raise ServiceError(f"unknown IoT device {target!r}")
        self.states[target] = on
        self.log.append(ActuationEvent(at, target, "set", on))
        return on


class IoTActuatorService(Service):
    """Executes gesture-triggered commands against the device fleet.

    Request: ``{"target": str, "action": "toggle"|"on"|"off"}``.
    Response: ``{"target": str, "state": bool}``.
    """

    name = "iot_controller"
    reference_cost_s = 0.002
    default_port = 7008

    def __init__(self, fleet: IoTDeviceFleet | None = None) -> None:
        self.fleet = fleet or IoTDeviceFleet()

    def handle(self, payload: Any, ctx: ServiceCallContext) -> dict[str, Any]:
        if not isinstance(payload, dict) or "target" not in payload:
            raise ServiceError("iot_controller expects {'target', 'action'}")
        target = str(payload["target"])
        action = str(payload.get("action", "toggle"))
        if action == "toggle":
            state = self.fleet.toggle(target, ctx.now)
        elif action in ("on", "off"):
            state = self.fleet.set_state(target, action == "on", ctx.now)
        else:
            raise ServiceError(f"unknown action {action!r}")
        return {"target": target, "state": state}
