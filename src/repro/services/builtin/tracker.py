"""The object tracking service (§2.2 lists "object tracking" in the
service catalog).

Tracking is inherently stateful, so this service uses the paper's
statelessness trick in its purest form: the *caller* ships the previous
track state with every request ("these services all receive needed data as
input so they do not require saving state"), and the reply carries the
updated state back.
"""

from __future__ import annotations

from typing import Any

from ...errors import ServiceError
from ...vision.bbox import BBox
from ...vision.object_detector import Detection
from ...vision.tracking import IoUTracker, Track
from ..base import Service, ServiceCallContext


def serialize_track(track: Track) -> dict[str, Any]:
    return {
        "track_id": track.track_id,
        "label": track.label,
        "bbox": track.bbox.as_tuple(),
        "hits": track.hits,
        "misses": track.misses,
    }


def deserialize_track(data: dict[str, Any]) -> Track:
    return Track(
        track_id=int(data["track_id"]),
        label=str(data["label"]),
        bbox=BBox(*data["bbox"]),
        hits=int(data.get("hits", 1)),
        misses=int(data.get("misses", 0)),
    )


class ObjectTrackingService(Service):
    """Associates detections with caller-supplied tracks by IoU.

    Request::

        {"detections": [{"label", "bbox", "score"}, ...],
         "tracks": [serialized tracks from the previous reply],
         "next_track_id": int,
         "iou_threshold"?: float, "max_misses"?: int}

    Response: ``{"tracks": [...], "next_track_id": int}``.
    """

    name = "object_tracker"
    reference_cost_s = 0.006
    default_port = 7010

    def handle(self, payload: Any, ctx: ServiceCallContext) -> dict[str, Any]:
        if not isinstance(payload, dict) or "detections" not in payload:
            raise ServiceError(
                "object_tracker expects {'detections', 'tracks', 'next_track_id'}"
            )
        detections = [
            Detection(str(d["label"]), BBox(*d["bbox"]), float(d.get("score", 1.0)))
            for d in payload["detections"]
        ]
        tracker = IoUTracker(
            iou_threshold=float(payload.get("iou_threshold", 0.3)),
            max_misses=int(payload.get("max_misses", 5)),
        )
        tracker.tracks = [deserialize_track(t) for t in payload.get("tracks", [])]
        # resume id allocation where the caller's state left off
        next_id = int(payload.get("next_track_id", 1))
        import itertools

        tracker._ids = itertools.count(next_id)
        tracks = tracker.update(detections)
        highest = max([next_id - 1] + [t.track_id for t in tracks])
        return {
            "tracks": [serialize_track(t) for t in tracks],
            "next_track_id": highest + 1,
        }
