"""The pose detection service (§4.1.1) — the pipeline's heavyweight stage.

Cost calibration: the paper's end-to-end saturation around 11 FPS with the
one-frame-in-flight protocol, together with the two-pipeline sharing numbers
(≈9.4 FPS each at a 20 FPS source), implies ≈45–50 ms of pose compute per
frame on the desktop. See DESIGN.md §4.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ...errors import ServiceError
from ...frames.frame import VideoFrame
from ...vision.pose_estimator import PoseEstimator, PoseNoiseModel
from ..base import Service, ServiceCallContext


class PoseDetectorService(Service):
    """Detects the person and 17 keypoints in a single frame.

    Request: ``{"frame": VideoFrame}`` (a ref resolved by the host, or a
    frame decoded from the wire).
    Response: ``{"detected", "keypoints", "visibility", "bbox", "score"}``
    with numpy payloads — small enough to return cheaply to any caller.
    """

    name = "pose_detector"
    reference_cost_s = 0.053
    default_port = 7001
    # pure function of the frame (the estimation noise is deterministic per
    # content once cached), so repeated static-scene frames may be answered
    # from the host's result cache
    cacheable = True
    # model-load / data-staging overhead dominates the per-frame cost, so
    # batched frames amortize well (each extra frame ≈ 55% of solo cost)
    max_batch = 8
    batch_marginal_cost_frac = 0.55

    def __init__(self, noise: PoseNoiseModel | None = None) -> None:
        self.noise = noise or PoseNoiseModel()

    def handle(self, payload: Any, ctx: ServiceCallContext) -> dict[str, Any]:
        frame = payload.get("frame") if isinstance(payload, dict) else None
        if not isinstance(frame, VideoFrame):
            raise ServiceError("pose_detector expects {'frame': VideoFrame}")
        estimator = PoseEstimator(self.noise, rng=ctx.rng)
        result = estimator.estimate(frame)
        if not result.detected:
            return {"detected": False, "frame_id": frame.frame_id}
        pose = result.require_pose()
        assert result.bbox is not None
        return {
            "detected": True,
            "frame_id": frame.frame_id,
            "keypoints": np.asarray(pose.keypoints),
            "visibility": np.asarray(pose.visibility),
            "bbox": result.bbox.as_tuple(),
            "score": result.score,
        }
