"""The activity classification service (§4.1.2).

Stateless by construction: the caller ships the whole 15-frame window
feature with every request; the service holds only the trained model
(immutable weights, the service-framework equivalent of a baked container
image).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ...errors import ServiceError
from ...vision.activity import ActivityRecognizer
from ..base import Service, ServiceCallContext


class ActivityClassifierService(Service):
    """kNN activity classification on a precomputed window feature.

    Request: ``{"window_feature": ndarray}`` (15 × 34 flattened).
    Response: ``{"label": str, "confidence": float}``.
    """

    name = "activity_classifier"
    reference_cost_s = 0.006
    default_port = 7002
    # deterministic kNN over the shipped feature: safe to cache, and the
    # distance computation vectorizes across a batch
    cacheable = True
    max_batch = 8
    batch_marginal_cost_frac = 0.7

    def __init__(self, recognizer: ActivityRecognizer) -> None:
        if not recognizer.fitted:
            raise ServiceError("activity service needs a trained recognizer")
        self.recognizer = recognizer

    def handle(self, payload: Any, ctx: ServiceCallContext) -> dict[str, Any]:
        feature = payload.get("window_feature") if isinstance(payload, dict) else None
        if feature is None:
            raise ServiceError(
                "activity_classifier expects {'window_feature': ndarray}"
            )
        feature = np.asarray(feature, dtype=np.float64).reshape(-1)
        expected = self.recognizer.window * 34
        if feature.shape[0] != expected:
            raise ServiceError(
                f"window_feature must have {expected} values, got {feature.shape[0]}"
            )
        label, confidence = self.recognizer.classify_feature(feature)
        return {"label": label, "confidence": float(confidence)}
