"""Object detection, face detection and image classification services
(§2.2's service catalog)."""

from __future__ import annotations

from typing import Any

from ...errors import ServiceError
from ...frames.frame import VideoFrame
from ...vision.object_detector import (
    ColorHistogramClassifier,
    ObjectDetector,
    detect_face_region,
)
from ..base import Service, ServiceCallContext


def _require_frame(payload: Any, service: str) -> VideoFrame:
    frame = payload.get("frame") if isinstance(payload, dict) else None
    if not isinstance(frame, VideoFrame):
        raise ServiceError(f"{service} expects {{'frame': VideoFrame}}")
    return frame


class ObjectDetectionService(Service):
    """Color-blob object detection on a frame's pixels.

    Request: ``{"frame": VideoFrame}`` (pixels required).
    Response: ``{"detections": [{"label", "bbox", "score"}, ...]}``.
    """

    name = "object_detector"
    reference_cost_s = 0.035
    default_port = 7005

    def __init__(self) -> None:
        self.detector = ObjectDetector()

    def handle(self, payload: Any, ctx: ServiceCallContext) -> dict[str, Any]:
        frame = _require_frame(payload, self.name)
        if frame.pixels is None or frame.pixels.ndim != 3:
            raise ServiceError("object_detector needs rendered RGB pixels")
        detections = self.detector.detect(frame.pixels)
        return {
            "frame_id": frame.frame_id,
            "detections": [
                {"label": d.label, "bbox": d.bbox.as_tuple(), "score": d.score}
                for d in detections
            ],
        }


class FaceDetectionService(Service):
    """Head-region detection on a rendered grayscale frame.

    Request: ``{"frame": VideoFrame}``.
    Response: ``{"found": bool, "bbox"?: tuple}``.
    """

    name = "face_detector"
    reference_cost_s = 0.018
    default_port = 7006

    def handle(self, payload: Any, ctx: ServiceCallContext) -> dict[str, Any]:
        frame = _require_frame(payload, self.name)
        if frame.pixels is None:
            raise ServiceError("face_detector needs rendered pixels")
        region = detect_face_region(frame.pixels)
        if region is None:
            return {"frame_id": frame.frame_id, "found": False}
        return {"frame_id": frame.frame_id, "found": True, "bbox": region.as_tuple()}


class ImageClassificationService(Service):
    """Whole-frame classification with a pretrained histogram model.

    Request: ``{"frame": VideoFrame}`` (RGB pixels required).
    Response: ``{"label": str, "score": float}``.
    """

    name = "image_classifier"
    reference_cost_s = 0.014
    default_port = 7007

    def __init__(self, classifier: ColorHistogramClassifier) -> None:
        if not classifier.classes:
            raise ServiceError("image classifier needs a fitted model")
        self.classifier = classifier

    def handle(self, payload: Any, ctx: ServiceCallContext) -> dict[str, Any]:
        frame = _require_frame(payload, self.name)
        if frame.pixels is None or frame.pixels.ndim != 3:
            raise ServiceError("image_classifier needs RGB pixels")
        label, score = self.classifier.classify(frame.pixels)
        return {"frame_id": frame.frame_id, "label": label, "score": score}
