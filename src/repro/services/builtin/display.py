"""The display service: composites the overlay frame the TV shows (Fig. 3).

The fitness app "show[s] frames with rich information including the user
skeleton and the number of exercise reps". Rendering to a screen is output,
not state; the sink object records what was shown so tests and benchmarks
can assert on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ...errors import ServiceError
from ...frames.frame import VideoFrame
from ..base import Service, ServiceCallContext


@dataclass(slots=True)
class DisplayedFrame:
    """One composited output frame as shown on screen."""

    frame_id: int
    shown_at: float
    capture_time: float
    label: str | None = None
    reps: int | None = None
    keypoints: np.ndarray | None = None
    #: The actual composited image (only when the frame carried pixels).
    composited: np.ndarray | None = None

    @property
    def glass_to_glass_s(self) -> float:
        """Capture-to-display latency for this frame."""
        return self.shown_at - self.capture_time


#: Gray level of the skeleton overlay marks.
OVERLAY_LEVEL = 255


def composite_overlay(frame: VideoFrame, keypoints: np.ndarray) -> np.ndarray:
    """Burn the detected keypoints into the frame's pixels (Fig. 3's
    skeleton overlay). Keypoints are in full-resolution coordinates; the
    pixel buffer may be a reduced render, so coordinates are rescaled."""
    assert frame.pixels is not None
    image = frame.pixels.copy()
    render_h, render_w = image.shape[:2]
    sx = render_w / frame.width
    sy = render_h / frame.height
    for x, y in np.asarray(keypoints, dtype=np.float64):
        px = int(round(x * sx))
        py = int(round(y * sy))
        if 0 <= px < render_w and 0 <= py < render_h:
            y0, y1 = max(0, py - 1), min(render_h, py + 2)
            x0, x1 = max(0, px - 1), min(render_w, px + 2)
            image[y0:y1, x0:x1] = OVERLAY_LEVEL
    return image


@dataclass(slots=True)
class DisplaySink:
    """Where composited frames land (the screen, or a test probe)."""

    keep_last: int = 4096
    frames: list[DisplayedFrame] = field(default_factory=list)

    def show(self, frame: DisplayedFrame) -> None:
        self.frames.append(frame)
        if len(self.frames) > self.keep_last:
            del self.frames[0]

    @property
    def count(self) -> int:
        return len(self.frames)

    def fps_over(self, duration_s: float) -> float:
        """Displayed frames per second across a measurement window."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        return len(self.frames) / duration_s


class DisplayService(Service):
    """Composites frame + skeleton + activity label + rep count.

    Request: ``{"frame": VideoFrame, "keypoints"?, "label"?, "reps"?}``.
    Response: ``{"shown": True, "frame_id": int}``.
    """

    name = "display"
    reference_cost_s = 0.003
    default_port = 7004

    def __init__(self, sink: DisplaySink | None = None) -> None:
        self.sink = sink or DisplaySink()

    def handle(self, payload: Any, ctx: ServiceCallContext) -> dict[str, Any]:
        if not isinstance(payload, dict):
            raise ServiceError("display expects a dict payload")
        frame = payload.get("frame")
        if not isinstance(frame, VideoFrame):
            raise ServiceError("display expects {'frame': VideoFrame, ...}")
        keypoints = payload.get("keypoints")
        composited = None
        if frame.pixels is not None and keypoints is not None:
            composited = composite_overlay(frame, np.asarray(keypoints))
        shown = DisplayedFrame(
            frame_id=frame.frame_id,
            shown_at=ctx.now,
            capture_time=frame.capture_time,
            label=payload.get("label"),
            reps=payload.get("reps"),
            keypoints=None if keypoints is None else np.asarray(keypoints),
            composited=composited,
        )
        self.sink.show(shown)
        return {"shown": True, "frame_id": frame.frame_id}
