"""Service stubs: what a module's ``call_service`` actually invokes.

"VideoPipe prepares the required service stubs on each device and connects
different components together" (§3.1). A stub hides whether the service is
co-located (direct in-process dispatch, refs stay refs) or remote (frames
are encoded, shipped by RPC, decoded over there). The two paths are the
exact contrast the evaluation measures.
"""

from __future__ import annotations

from typing import Any

from ..devices.device import Device
from ..errors import NetworkError, RpcError, ServiceError
from ..frames.payloads import encode_refs_for_wire
from ..net.resilience import RetryPolicy
from ..net.rpc import RpcClient
from ..net.transport import Transport
from ..sim.kernel import Kernel
from ..sim.signals import Signal
from .host import ServiceHost
from .registry import ServiceRegistry

#: Default retry schedule for remote service calls: three attempts with
#: 50 ms → 100 ms backoff (±25% jitter). Short, because the failover path
#: (re-selecting a live replica) is the real recovery mechanism; retries
#: only ride out sub-second blips.
DEFAULT_SERVICE_RETRY = RetryPolicy(
    max_attempts=3, base_delay_s=0.05, multiplier=2.0, max_delay_s=1.0,
    jitter=0.25,
)


def derive_service_timeout(
    host: ServiceHost,
    caller_device: Device,
    transport: Transport,
    payload_bytes: int = 150_000,
) -> float:
    """A sane default timeout for calling *host* from *caller_device*.

    Budget = generous multiples of the expected compute time and the
    round-trip transfer of a typical frame-sized payload. Deliberately loose
    (it is a hang detector, not an SLO): queueing behind other requests must
    not trip it.
    """
    from .balancer import expected_service_time

    compute = expected_service_time(host)
    try:
        one_way = transport.topology.expected_delay(
            caller_device.name, host.device.name, payload_bytes
        )
    except NetworkError:
        one_way = 0.25  # route currently unresolvable; assume a slow path
    # a batching host may hold a request for up to batch_wait_s before
    # dispatch; budget generously for it (0 when batching is off)
    return max(2.0, 30.0 * compute + 20.0 * one_way + 1.0
               + 10.0 * host.batch_wait_s)


class ServiceStub:
    """A caller-side handle to one named service."""

    def __init__(self, service_name: str) -> None:
        self.service_name = service_name
        self.calls = 0
        #: Seconds the most recent call spent materializing the request
        #: before dispatch (frame JPEG encode for remote calls; 0 when the
        #: payload travels by reference). Used by Fig. 6's "load frame" bar.
        self.last_prepare_s = 0.0

    @property
    def is_local(self) -> bool:
        raise NotImplementedError

    def call(self, payload: Any, trace: Any = None) -> Signal:
        """Invoke the service; the signal resolves with the result.

        *trace* is the caller's pre-minted span context for this call (a
        :class:`~repro.trace.span.SpanContext`), or ``None`` when tracing
        is off; the callee parents its queue/compute spans to it.
        """
        raise NotImplementedError


class LocalServiceStub(ServiceStub):
    """Direct dispatch into a co-located host: the VideoPipe fast path."""

    def __init__(self, host: ServiceHost) -> None:
        super().__init__(host.service_name)
        self.host = host

    @property
    def is_local(self) -> bool:
        return True

    def call(self, payload: Any, trace: Any = None) -> Signal:
        self.calls += 1
        return self.host.call_local(payload, trace=trace)


#: Reference CPU seconds to marshal one remote API request or reply (JSON /
#: HTTP framing on the caller). The paper's motivation (§1): service-
#: oriented remote calls "incur significant overhead in terms of delays in
#: data transfer between the caller and the service" — this is the
#: marshaling half of that overhead; the wire transfer is the other half.
API_MARSHAL_S = 0.001


class RemoteServiceStub(ServiceStub):
    """RPC dispatch to a host on another device: the baseline's only path.

    Frame refs in the payload are materialized and JPEG-encoded before the
    request leaves (encode cost charged to the calling device's CPU), the
    caller pays API marshaling on both the request and the reply, and the
    request pays the network both ways.

    Resilience: calls time out (``timeout_s``; derived from the link/compute
    budget when not given), transport-level failures are retried by the
    underlying :class:`~repro.net.rpc.RpcClient` with backoff + jitter, and
    when a *registry* is provided the stub **fails over** — re-resolving the
    service to a live replica on another device when the dialed host stays
    unreachable.
    """

    def __init__(
        self,
        kernel: Kernel,
        transport: Transport,
        caller_device: Device,
        host: ServiceHost,
        timeout_s: float | None = None,
        registry: ServiceRegistry | None = None,
        balancing: str = "fastest",
        retry: RetryPolicy | None = DEFAULT_SERVICE_RETRY,
    ) -> None:
        super().__init__(host.service_name)
        self.kernel = kernel
        self.transport = transport
        self.caller_device = caller_device
        self.target_address = host.address
        self.registry = registry
        self.balancing = balancing
        self._derive_timeout = timeout_s is None
        self.timeout_s = (
            derive_service_timeout(host, caller_device, transport)
            if timeout_s is None else timeout_s
        )
        self._client = RpcClient(
            kernel, transport, caller_device.name,
            retry=retry,
            rng=caller_device.local_rng(f"rpc/{host.service_name}"),
        )
        self.frames_shipped = 0
        self.failovers = 0

    @property
    def is_local(self) -> bool:
        return False

    def call(self, payload: Any, trace: Any = None) -> Signal:
        self.calls += 1
        wire_payload, encode_cost, shipped = encode_refs_for_wire(
            payload, self.caller_device.frame_store, release=False
        )
        self.frames_shipped += shipped
        done = self.kernel.signal(name=f"remote:{self.service_name}")
        self.kernel.process(
            self._call(wire_payload, encode_cost, done, trace),
            name=f"remote-call.{self.service_name}",
        )
        return done

    def _call(self, wire_payload: Any, encode_cost: float, done: Signal,
              trace: Any = None):
        from ..net.message import H_TRACE

        headers = {H_TRACE: trace.header()} if trace is not None else None
        try:
            started = self.kernel.now
            if encode_cost > 0:
                yield self.caller_device.cpu.execute_fixed(encode_cost)
            yield self.caller_device.cpu.execute(API_MARSHAL_S)
            self.last_prepare_s = self.kernel.now - started
            tried: set[str] = set()
            while True:
                try:
                    result = yield self._client.call(
                        self.target_address, wire_payload,
                        timeout=self.timeout_s, headers=headers,
                        # the derived timeout is the whole call's budget:
                        # retries must not stretch it to attempts x timeout
                        deadline_s=self.timeout_s,
                    )
                    break
                except NetworkError as exc:
                    if isinstance(exc, RpcError) and exc.remote:
                        raise  # the handler ran and failed; not our problem
                    tried.add(self.target_address.device)
                    fallback = self._failover_target(tried)
                    if fallback is None:
                        raise
                    self.failovers += 1
                    self.target_address = fallback.address
                    if self._derive_timeout:
                        self.timeout_s = derive_service_timeout(
                            fallback, self.caller_device, self.transport
                        )
            yield self.caller_device.cpu.execute(API_MARSHAL_S)  # reply unmarshal
        except Exception as exc:
            if isinstance(exc, ServiceError):
                wrapped = exc
            else:
                wrapped = ServiceError(
                    f"{self.service_name} remote call failed: {exc}"
                )
                # keep the transport-level cause reachable: the module
                # context distinguishes breaker rejections (CircuitOpenError)
                # from other failures when counting service_rejections
                wrapped.__cause__ = exc
            done.fail(wrapped)
            return
        done.succeed(result)

    def _failover_target(self, tried: set[str]) -> ServiceHost | None:
        """A live replica on a device not yet tried, or None."""
        if self.registry is None:
            return None
        from .balancer import select_host

        try:
            return select_host(
                self.registry, self.service_name,
                policy=self.balancing, exclude_devices=tried,
                caller_device=self.caller_device,
                topology=self.transport.topology,
            )
        except ServiceError:
            return None

    def close(self) -> None:
        self._client.close()


def make_stub(
    kernel: Kernel,
    transport: Transport,
    registry: ServiceRegistry,
    caller_device: Device,
    service_name: str,
    prefer_local: bool = True,
    balancing: str = "fastest",
    timeout_s: float | None = None,
) -> ServiceStub:
    """Build the right stub for *caller_device*: local when the service is
    co-located (and preferred); otherwise a remote stub dialing the replica
    chosen by the *balancing* policy (see :mod:`repro.services.balancer`).
    Remote stubs carry the registry so they can fail over to a surviving
    replica; ``timeout_s=None`` derives the timeout from the link/compute
    budget (see :func:`derive_service_timeout`)."""
    from .balancer import select_host

    if prefer_local:
        host = registry.host_on(service_name, caller_device.name)
        if host is not None and host.up:
            return LocalServiceStub(host)
    host = select_host(
        registry, service_name, policy=balancing,
        caller_device=caller_device, topology=transport.topology,
    )
    if host.device.name == caller_device.name and prefer_local:
        return LocalServiceStub(host)
    return RemoteServiceStub(
        kernel, transport, caller_device, host,
        timeout_s=timeout_s, registry=registry, balancing=balancing,
    )
