"""The stateless service framework: hosts, registry, stubs, autoscaling."""

from .balancer import (
    FASTEST,
    FIRST,
    LEAST_LOADED,
    expected_service_time,
    host_is_live,
    select_host,
)
from .base import FunctionService, Service, ServiceCallContext
from .cache import MISS, ResultCache, payload_cache_key
from .builtin import (
    ActivityClassifierService,
    ActuationEvent,
    DisplayService,
    DisplaySink,
    DisplayedFrame,
    FaceDetectionService,
    IoTActuatorService,
    IoTDeviceFleet,
    ImageClassificationService,
    ObjectDetectionService,
    ObjectTrackingService,
    PoseDetectorService,
    RepCounterService,
)
from .host import ServiceHost
from .pool import PoolLease, ReplicaPool
from .registry import ServiceRegistry
from .scaling import AutoScaler, ScalingEvent, ScalingPolicy
from .stubs import (
    DEFAULT_SERVICE_RETRY,
    LocalServiceStub,
    RemoteServiceStub,
    ServiceStub,
    derive_service_timeout,
    make_stub,
)

__all__ = [
    "ActivityClassifierService",
    "ActuationEvent",
    "AutoScaler",
    "DEFAULT_SERVICE_RETRY",
    "DisplayService",
    "DisplaySink",
    "DisplayedFrame",
    "FASTEST",
    "FIRST",
    "FaceDetectionService",
    "FunctionService",
    "IoTActuatorService",
    "IoTDeviceFleet",
    "ImageClassificationService",
    "LEAST_LOADED",
    "LocalServiceStub",
    "MISS",
    "ObjectDetectionService",
    "ObjectTrackingService",
    "PoolLease",
    "PoseDetectorService",
    "RemoteServiceStub",
    "ReplicaPool",
    "RepCounterService",
    "ResultCache",
    "ScalingEvent",
    "ScalingPolicy",
    "Service",
    "ServiceCallContext",
    "ServiceHost",
    "ServiceRegistry",
    "ServiceStub",
    "derive_service_timeout",
    "expected_service_time",
    "host_is_live",
    "make_stub",
    "payload_cache_key",
    "select_host",
]
