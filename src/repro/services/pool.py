"""Pool-based service parallelism: one shared replica pool per device.

The seed design statically partitions a device's worker capacity per
service: every :class:`~repro.services.host.ServiceHost` owns a fixed
:class:`~repro.sim.resources.Resource` of ``replicas`` slots, so a pose
burst queues behind its own host while the activity host's workers idle.
PPipe's observation (PAPERS.md) is that drawing replicas of *different*
service classes from one shared capacity pool beats any fixed split.

:class:`ReplicaPool` owns the device's slots (default: one per CPU core);
each attached host holds a :class:`PoolLease` that is API-compatible with
the ``Resource`` it replaces. A lease has a *share* — the host's fair
number of slots, adjusted by the AutoScaler and the SLO ladder exactly
where they used to add/remove replicas — but the pool is work-conserving:
a host may borrow idle slots beyond its share, and when slots are scarce,
requests from hosts *under* their share are served before requests from
hosts borrowing over it (priority queue on the shared resource).

Crash semantics: a pooled host cannot discard the shared resource, so
:meth:`PoolLease.revoke_pending` bumps an epoch instead — requests granted
after the revocation return their slot straight to the pool, while grants
already held stay owned so the interrupted caller's cleanup can release
them normally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..errors import ServiceError, SimulationError
from ..sim.kernel import Kernel
from ..sim.resources import Grant, Resource
from ..sim.signals import Signal

if TYPE_CHECKING:  # pragma: no cover
    from ..devices.device import Device
    from .host import ServiceHost

#: Priority for a request from a host still under its fair share.
PRI_UNDER_SHARE = 0
#: Priority for a request borrowing beyond the host's share.
PRI_BORROW = 1


class PoolLease:
    """One host's claim on a shared :class:`ReplicaPool`.

    Duck-typed to the ``Resource`` surface :class:`ServiceHost` consumes:
    ``request``/``release``/``owns``, ``capacity`` (= the share, so
    ``host.replicas`` keeps meaning "this host's allocation"),
    ``available``/``in_use``/``queue_length``, ``grow``/``shrink`` (share
    adjusters) and ``utilization()`` (busy integral over the share).
    """

    def __init__(self, pool: "ReplicaPool", service_name: str, share: int) -> None:
        if share < 1:
            raise ServiceError("pool share must be >= 1")
        self.pool = pool
        self.kernel = pool.kernel
        self.service_name = service_name
        self.name = f"{pool.device_name}.{service_name}.lease"
        self.share = share
        self.held = 0
        self._waiting = 0
        #: ids of grants this lease has handed to its host and not yet seen
        #: released; survives revocation so cleanup paths can still release.
        self._owned: set[int] = set()
        self._epoch = 0
        # busy integral over the share, mirroring Resource.utilization()
        self._busy_integral = 0.0
        self._last_change = pool.kernel.now
        self._started = pool.kernel.now
        # statistics
        self.grants_issued = 0
        self.borrowed_grants = 0
        self.revoked_grants = 0

    # -- Resource-compatible introspection ------------------------------------
    @property
    def capacity(self) -> int:
        return self.share

    @property
    def in_use(self) -> int:
        return self.held

    @property
    def available(self) -> int:
        """Slots this host could take right now without queueing: the
        pool's free slots (work-conserving — idle capacity is anyone's)."""
        return self.pool.slots.available

    @property
    def queue_length(self) -> int:
        """Requests from *this* host still waiting for a slot."""
        return self._waiting

    def utilization(self) -> float:
        """Average held-slots over share since the lease was created. Can
        exceed 1.0 while the host borrows beyond its share — exactly the
        signal the AutoScaler reads as "this service needs more share"."""
        elapsed = self.kernel.now - self._started
        if elapsed <= 0:
            return 0.0
        integral = self._busy_integral + self.held * (
            self.kernel.now - self._last_change
        )
        return integral / (elapsed * max(1, self.share))

    def _account(self) -> None:
        now = self.kernel.now
        self._busy_integral += self.held * (now - self._last_change)
        self._last_change = now

    # -- protocol --------------------------------------------------------------
    def request(self, priority: int | None = None) -> Signal:
        """Claim one pool slot; the signal succeeds with the pool's
        :class:`~repro.sim.resources.Grant`. Under-share requests outrank
        borrowing ones when slots are scarce (weighted sharing)."""
        if priority is None:
            priority = (
                PRI_UNDER_SHARE if self.held < self.share else PRI_BORROW
            )
        outer = self.kernel.signal(name=f"{self.name}.request")
        epoch = self._epoch
        self._waiting += 1
        inner = self.pool.slots.request(priority)

        def granted(value: Any, exc: BaseException | None) -> None:
            self._waiting -= 1
            if exc is not None:  # pool resource never fails today; be safe
                if outer.pending:
                    outer.fail(exc)
                return
            grant: Grant = value
            if epoch != self._epoch:
                # the host crashed/closed while this request queued: the
                # requester process is gone, so the slot goes straight back
                self.revoked_grants += 1
                self.pool.slots.release(grant)
                return
            # borrowed is judged at grant time (not request time): the
            # request may have been under-share when issued yet land on a
            # slot beyond the share once earlier grants settle
            borrowing = self.held >= self.share
            self._account()
            self.held += 1
            self._owned.add(grant.id)
            self.grants_issued += 1
            if borrowing:
                self.borrowed_grants += 1
            self.pool.on_grant(self, borrowing)
            if outer.pending:
                outer.succeed(grant)
            else:  # requester abandoned between queue and grant
                self.release(grant)

        inner.wait(granted)
        return outer

    def release(self, grant: Grant) -> None:
        """Return a slot to the shared pool."""
        if grant.id not in self._owned:
            raise SimulationError(
                f"grant #{grant.id} was not issued through lease {self.name}"
            )
        self._owned.discard(grant.id)
        self._account()
        self.held -= 1
        self.pool.slots.release(grant)

    def owns(self, grant: Grant) -> bool:
        """True when *grant* was issued through this lease and is still
        held (the guard the host's cleanup paths use)."""
        return grant.id in self._owned

    # -- share adjustment (the AutoScaler / SLO-ladder entry points) ------------
    def grow(self, extra: int = 1) -> None:
        """Raise this host's share; the pool grows if total shares now
        exceed its physical slots (scaling up must add real capacity)."""
        if extra < 1:
            raise SimulationError("grow() requires a positive amount")
        self._account()
        self.share += extra
        self.pool.rebalance()

    def shrink(self, amount: int = 1) -> None:
        """Lower this host's share (lazy, like ``Resource.shrink``: held
        slots drain naturally)."""
        if amount < 1:
            raise SimulationError("shrink() requires a positive amount")
        if self.share - amount < 1:
            raise SimulationError("cannot shrink below one slot")
        self._account()
        self.share -= amount
        self.pool.rebalance()

    # -- failure lifecycle ------------------------------------------------------
    def revoke_pending(self) -> None:
        """Invalidate requests not yet granted (host crash/close): when the
        pool eventually grants them, the slot bounces straight back.
        Already-held grants stay owned — the interrupted callers' cleanup
        still releases them into the pool."""
        self._epoch += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PoolLease {self.name} share={self.share} held={self.held}"
            f" waiting={self._waiting}>"
        )


class ReplicaPool:
    """The per-device shared replica pool.

    Args:
        kernel: the simulation kernel.
        device_name: owning device (leases never cross devices).
        slots: physical worker slots; defaults to the device's core count
            when built through :meth:`for_device`.
    """

    def __init__(self, kernel: Kernel, device_name: str, slots: int) -> None:
        if slots < 1:
            raise ServiceError("replica pool needs at least one slot")
        self.kernel = kernel
        self.device_name = device_name
        self.base_slots = slots
        self.slots = Resource(
            kernel, slots, name=f"{device_name}.replica-pool"
        )
        #: service name -> lease, in attach order.
        self.leases: dict[str, PoolLease] = {}
        # statistics
        self.total_grants = 0
        self.borrowed_total = 0

    @classmethod
    def for_device(cls, kernel: Kernel, device: "Device",
                   slots: int | None = None) -> "ReplicaPool":
        """A pool sized to *device* (one slot per core by default)."""
        return cls(kernel, device.name, slots or device.spec.cores)

    # -- membership -------------------------------------------------------------
    def attach(self, host: "ServiceHost", share: int | None = None) -> PoolLease:
        """Create (or return) the lease for *host*'s service, with *share*
        defaulting to the host's configured replica count. The pool grows
        if total shares exceed its slots, so pooling is never a capacity
        cut relative to the fixed split it replaces."""
        name = host.service_name
        existing = self.leases.get(name)
        if existing is not None:
            return existing
        lease = PoolLease(self, name, share or host.replicas)
        self.leases[name] = lease
        self.rebalance()
        return lease

    def detach(self, service_name: str) -> None:
        """Drop a service's lease (host torn down); its share returns to
        the pool."""
        self.leases.pop(service_name, None)
        self.rebalance()

    @property
    def total_shares(self) -> int:
        return sum(lease.share for lease in self.leases.values())

    def rebalance(self) -> None:
        """Grow/shrink the physical slot count to ``max(base_slots,
        total_shares)`` so every host can hold its full share at once."""
        target = max(self.base_slots, self.total_shares)
        current = self.slots.capacity
        if target > current:
            self.slots.grow(target - current)
        elif target < current:
            self.slots.shrink(current - target)

    # -- accounting -------------------------------------------------------------
    def on_grant(self, lease: PoolLease, borrowed: bool) -> None:
        self.total_grants += 1
        if borrowed:
            self.borrowed_total += 1

    @property
    def backlog(self) -> int:
        """Requests queued across every attached service — the contention
        signal the balancer and cost model price."""
        return self.slots.queue_length

    def contention(self) -> float:
        """Queued requests per physical slot (0.0 = every request finds a
        free worker immediately)."""
        return self.slots.queue_length / self.slots.capacity

    def utilization(self) -> float:
        """Average busy fraction of the shared slots."""
        return self.slots.utilization()

    def borrow_ratio(self) -> float:
        """Fraction of grants that went beyond the holder's share — how
        much the work-conserving sharing actually bought."""
        if self.total_grants == 0:
            return 0.0
        return self.borrowed_total / self.total_grants

    def stats(self) -> dict[str, Any]:
        return {
            "slots": self.slots.capacity,
            "base_slots": self.base_slots,
            "total_shares": self.total_shares,
            "in_use": self.slots.in_use,
            "backlog": self.backlog,
            "utilization": self.utilization(),
            "total_grants": self.total_grants,
            "borrowed_grants": self.borrowed_total,
            "borrow_ratio": self.borrow_ratio(),
            "shares": {
                name: lease.share for name, lease in self.leases.items()
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ReplicaPool {self.device_name}"
            f" {self.slots.in_use}/{self.slots.capacity} busy,"
            f" {len(self.leases)} leases, backlog {self.backlog}>"
        )
