"""Replica/host selection for service calls.

When a service is hosted on several devices, which one should a remote
caller dial? The paper's stateless-service design makes any replica valid;
this module provides the selection policies:

* ``first`` — registration order (the naive legacy behaviour);
* ``fastest`` — minimum expected service time on the host's device;
* ``least_loaded`` — fewest queued requests, ties broken by ``fastest``;
* ``cost_aware`` — minimum expected service time *plus* the round-trip
  network cost from the caller, the same placement-cost view the
  :mod:`optimizer <repro.pipeline.optimizer>` scores candidates with. A
  nearby mid-speed replica beats a fast one across a congested link.
"""

from __future__ import annotations

from ..errors import NetworkError, ServiceError
from .host import ServiceHost
from .registry import ServiceRegistry

FIRST = "first"
FASTEST = "fastest"
LEAST_LOADED = "least_loaded"
COST_AWARE = "cost_aware"

POLICIES = (FIRST, FASTEST, LEAST_LOADED, COST_AWARE)

#: Assumed request payload for the cost-aware policy's network estimate (a
#: quality-80 VGA JPEG, matching the placement cost model's edge estimate).
DEFAULT_PAYLOAD_BYTES = 42_000


def expected_service_time(
    host: ServiceHost, batch_size: float | None = None
) -> float:
    """Expected compute seconds for one call on this host's device.

    Batching amortizes per-call overhead, so the per-item estimate shrinks
    with batch size: by default the host's *observed* mean dispatch size is
    used (1.0 on a host that has never batched, reproducing the unbatched
    estimate exactly); pass *batch_size* to ask about a hypothetical load.
    """
    n = batch_size if batch_size is not None else host.avg_batch_size()
    return host.device.spec.compute_time(
        host.service.amortized_item_cost_s(n)
    )


def pool_contention_s(host: ServiceHost) -> float:
    """Expected extra queueing seconds from shared-pool contention on a
    pooled host: the device pool's backlog-per-slot scaled by this
    service's own compute time. 0.0 on fixed-replica hosts — their queues
    are already visible as ``queue_length``; a pooled host's real wait is
    set by *everyone* queued on the device's shared slots."""
    pool = host.pool
    if pool is None:
        return 0.0
    return pool.contention() * expected_service_time(host)


def expected_call_cost(
    host: ServiceHost,
    caller_device,
    topology,
    payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
) -> float:
    """Expected seconds for one call on *host* as seen from the caller:
    service time plus pool contention (on pooled hosts) plus the two-way
    network transfer (zero when co-located). An unresolvable route
    (mid-partition) is charged a pessimistic 0.5 s rather than raised —
    selection should route *around* the partition."""
    cost = expected_service_time(host) + pool_contention_s(host)
    if host.device.name == caller_device.name:
        return cost
    try:
        cost += topology.expected_delay(
            caller_device.name, host.device.name, payload_bytes
        )
        cost += topology.expected_delay(host.device.name, caller_device.name, 512)
    except NetworkError:
        cost += 0.5
    return cost


def host_is_live(host: ServiceHost) -> bool:
    """A host is dialable only while both it and its device are up."""
    return host.up and host.device.up


def service_pressure(registry: ServiceRegistry, service_name: str) -> float:
    """Backlog on a service across its live replicas: queued requests plus
    in-service requests beyond the replica pool's capacity, summed over
    hosts. 0.0 means every request finds a free worker immediately; the
    overload detector reads this as its queue probe — sustained positive
    pressure on a service a pipeline calls is queueing delay that will show
    up in that pipeline's tail latency. An unknown service reads 0.0 (the
    pipeline calls nothing that can queue). Pooled hosts report through the
    same surface: ``queue_length`` is the lease's own waiting requests and
    ``busy_workers - replicas`` is slots borrowed beyond the share."""
    pressure = 0.0
    for host in registry.hosts_of(service_name):
        if not host_is_live(host):
            continue
        pressure += host.queue_length
        pressure += max(0, host.busy_workers - host.replicas)
    return pressure


def select_host(
    registry: ServiceRegistry,
    service_name: str,
    policy: str = FASTEST,
    exclude_devices: frozenset[str] | set[str] | tuple[str, ...] = (),
    caller_device=None,
    topology=None,
) -> ServiceHost:
    """Choose a *live* host of *service_name* under *policy*.

    Crashed hosts and hosts on down devices are skipped — this is the
    failover half of the recovery story: a retrying caller re-selects and
    lands on a surviving replica. ``exclude_devices`` lets that caller also
    skip devices it already tried. Deterministic: ties break by device name,
    so placement and simulation stay reproducible.

    The ``cost_aware`` policy additionally needs *caller_device* and
    *topology* to price the network leg of each candidate.
    """
    registered = registry.hosts_of(service_name)
    if not registered:
        raise ServiceError(f"no host registered for service {service_name!r}")
    hosts = [
        h for h in registered
        if host_is_live(h) and h.device.name not in exclude_devices
    ]
    if not hosts:
        raise ServiceError(
            f"no live replica of {service_name!r}"
            f" ({len(registered)} registered, all down or excluded)"
        )
    if policy == FIRST:
        return hosts[0]
    if policy == FASTEST:
        return min(hosts, key=lambda h: (expected_service_time(h), h.device.name))
    if policy == LEAST_LOADED:
        # a pooled host's effective backlog includes the device pool's
        # shared-slot contention, not just its own lease queue
        return min(
            hosts,
            key=lambda h: (h.queue_length + h.busy_workers - h.replicas
                           + (h.pool.backlog if h.pool is not None else 0),
                           expected_service_time(h), h.device.name),
        )
    if policy == COST_AWARE:
        if caller_device is None or topology is None:
            raise ServiceError(
                "cost_aware balancing needs caller_device and topology"
            )
        return min(
            hosts,
            key=lambda h: (
                expected_call_cost(h, caller_device, topology), h.device.name
            ),
        )
    raise ServiceError(f"unknown balancing policy {policy!r}; known: {POLICIES}")
