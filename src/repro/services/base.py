"""The stateless service abstraction (§2.2).

"The main video analytics are performed by stateless services accessible to
modules. … These services all receive needed data as input so they do not
require saving state. This allows the services to be shared among different
applications and also allows for horizontal scaling."

A :class:`Service` is a pure request handler plus a compute-cost model. The
host (:mod:`repro.services.host`) owns replicas, queueing, CPU charging and
the local/remote call paths; the service itself never sees any of that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import ServiceError
from ..frames.framestore import FrameStore
from ..sim.kernel import Kernel


@dataclass(slots=True)
class ServiceCallContext:
    """What a service may touch during one call: the *local* frame store
    (reference-id resolution), a deterministic RNG, and the clock. Nothing
    else — that is the statelessness contract."""

    device_name: str
    frame_store: FrameStore
    rng: np.random.Generator
    kernel: Kernel

    @property
    def now(self) -> float:
        """Current simulated time (for output timestamping only)."""
        return self.kernel.now


class Service:
    """Base class for stateless framewise services.

    Subclasses set :attr:`name` and :attr:`reference_cost_s` and implement
    :meth:`handle`. Handlers must be pure with respect to the service
    instance: all state arrives in the payload (the test suite enforces
    this by comparing instance dicts across calls).
    """

    #: Registry name modules use in ``call_service``.
    name = "service"
    #: Service code version, recorded in per-frame lineage (which module
    #: and service versions touched each frame — ``docs/LIVEOPS.md``).
    version = "v1"
    #: Compute time on the reference desktop for one call.
    reference_cost_s = 0.010
    #: Default port the service binds when hosted (offset per replica).
    default_port = 7000
    #: A pure function of its payload: byte-identical requests may be
    #: answered from a host-side result cache without running the handler.
    #: Services with side effects (rendering a display, driving an IoT
    #: device) must leave this off.
    cacheable = False
    #: Largest batch :meth:`handle_batch` accepts; 1 means the service only
    #: processes requests one at a time (hosts never batch it).
    max_batch = 1
    #: Marginal cost of each additional item in a batch, as a fraction of
    #: its solo cost. 1.0 = no amortization (a batch costs the exact sum of
    #: its items); a GPU-style service with heavy per-call setup sets this
    #: well below 1.
    batch_marginal_cost_frac = 1.0

    def handle(self, payload: Any, ctx: ServiceCallContext) -> Any:
        """Process one request; must not retain state on ``self``."""
        raise NotImplementedError

    def compute_cost(self, payload: Any) -> float:
        """Reference compute seconds for this payload (default: constant)."""
        return self.reference_cost_s

    # -- batching protocol ------------------------------------------------------
    def handle_batch(self, payloads: list[Any], ctx: ServiceCallContext) -> list[Any]:
        """Process several requests in one invocation, returning one result
        per payload in order. Default: loop :meth:`handle` (correct for any
        service; the win comes from :meth:`batch_compute_cost`)."""
        return [self.handle(payload, ctx) for payload in payloads]

    def batch_compute_cost(self, payloads: list[Any]) -> float:
        """Reference compute seconds for one batched invocation.

        The first item pays full price; each further item pays
        ``batch_marginal_cost_frac`` of its solo cost — the shared per-call
        overhead (model load, data staging) is paid once.
        """
        if not payloads:
            return 0.0
        costs = [self.compute_cost(p) for p in payloads]
        return costs[0] + self.batch_marginal_cost_frac * sum(costs[1:])

    def amortized_item_cost_s(self, batch_size: float = 1.0) -> float:
        """Expected per-item reference cost at a given mean batch size
        (used by the balancer's expected-service-time estimate)."""
        n = min(max(batch_size, 1.0), float(self.max_batch))
        frac = self.batch_marginal_cost_frac
        return self.reference_cost_s * (1.0 + frac * (n - 1.0)) / n

    def describe(self) -> dict[str, Any]:
        """Human-readable service card (used in logs and docs)."""
        return {
            "name": self.name,
            "version": self.version,
            "reference_cost_s": self.reference_cost_s,
            "class": type(self).__name__,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Service {self.name}>"


class FunctionService(Service):
    """Wrap a plain function as a service (testing and custom pipelines)."""

    def __init__(self, name: str, fn, reference_cost_s: float = 0.010,
                 default_port: int = 7900) -> None:
        if not callable(fn):
            raise ServiceError("FunctionService requires a callable")
        self.name = name
        self._fn = fn
        self.reference_cost_s = reference_cost_s
        self.default_port = default_port

    def handle(self, payload: Any, ctx: ServiceCallContext) -> Any:
        return self._fn(payload, ctx)
