"""The stateless service abstraction (§2.2).

"The main video analytics are performed by stateless services accessible to
modules. … These services all receive needed data as input so they do not
require saving state. This allows the services to be shared among different
applications and also allows for horizontal scaling."

A :class:`Service` is a pure request handler plus a compute-cost model. The
host (:mod:`repro.services.host`) owns replicas, queueing, CPU charging and
the local/remote call paths; the service itself never sees any of that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import ServiceError
from ..frames.framestore import FrameStore
from ..sim.kernel import Kernel


@dataclass(slots=True)
class ServiceCallContext:
    """What a service may touch during one call: the *local* frame store
    (reference-id resolution), a deterministic RNG, and the clock. Nothing
    else — that is the statelessness contract."""

    device_name: str
    frame_store: FrameStore
    rng: np.random.Generator
    kernel: Kernel

    @property
    def now(self) -> float:
        """Current simulated time (for output timestamping only)."""
        return self.kernel.now


class Service:
    """Base class for stateless framewise services.

    Subclasses set :attr:`name` and :attr:`reference_cost_s` and implement
    :meth:`handle`. Handlers must be pure with respect to the service
    instance: all state arrives in the payload (the test suite enforces
    this by comparing instance dicts across calls).
    """

    #: Registry name modules use in ``call_service``.
    name = "service"
    #: Compute time on the reference desktop for one call.
    reference_cost_s = 0.010
    #: Default port the service binds when hosted (offset per replica).
    default_port = 7000

    def handle(self, payload: Any, ctx: ServiceCallContext) -> Any:
        """Process one request; must not retain state on ``self``."""
        raise NotImplementedError

    def compute_cost(self, payload: Any) -> float:
        """Reference compute seconds for this payload (default: constant)."""
        return self.reference_cost_s

    def describe(self) -> dict[str, Any]:
        """Human-readable service card (used in logs and docs)."""
        return {
            "name": self.name,
            "reference_cost_s": self.reference_cost_s,
            "class": type(self).__name__,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Service {self.name}>"


class FunctionService(Service):
    """Wrap a plain function as a service (testing and custom pipelines)."""

    def __init__(self, name: str, fn, reference_cost_s: float = 0.010,
                 default_port: int = 7900) -> None:
        if not callable(fn):
            raise ServiceError("FunctionService requires a callable")
        self.name = name
        self._fn = fn
        self.reference_cost_s = reference_cost_s
        self.default_port = default_port

    def handle(self, payload: Any, ctx: ServiceCallContext) -> Any:
        return self._fn(payload, ctx)
