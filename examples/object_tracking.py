#!/usr/bin/env python3
"""Scene analytics: object detection + tracking (§4.3's service family).

A camera watches household objects drift around the room. The detection
module calls the object_detector service on real rendered RGB pixels; the
tracking module keeps identity state while the *stateless* object_tracker
service does the IoU association — every call ships the previous track
state with the request, the purest form of the paper's statelessness trick.

Run:  python examples/object_tracking.py
"""

from repro import VideoPipe
from repro.apps import scene_pipeline_config
from repro.devices import DeviceSpec
from repro.services import ObjectDetectionService, ObjectTrackingService

DURATION_S = 12.0


def main() -> None:
    home = VideoPipe.paper_testbed(seed=51)
    home.add_device(DeviceSpec(name="camera", kind="phone", cpu_factor=2.5,
                               cores=8, supports_containers=False))
    home.deploy_service(ObjectDetectionService(), "desktop")
    home.deploy_service(ObjectTrackingService(), "desktop")

    pipeline = home.deploy_pipeline(
        scene_pipeline_config(fps=10.0, duration_s=DURATION_S)
    )
    print("placement:")
    for name in pipeline.module_names():
        print(f"  {name:26s} -> {pipeline.device_of(name)}")

    home.run(until=DURATION_S + 1.0)

    tracker = pipeline.module_instance("object_tracking_module")
    print(f"\nframes analyzed: {pipeline.metrics.counter('frames_completed')}"
          f" at {pipeline.metrics.throughput_fps(DURATION_S + 1, 2.0):.1f} fps")

    print("\nidentities discovered:")
    for at, track_id, label in tracker.appeared:
        print(f"  t={at:5.2f}s  track #{track_id}: a {label} entered the scene")

    print("\nlive tracks at shutdown:")
    for track in tracker.tracks:
        x0, y0, x1, y1 = track["bbox"]
        print(f"  #{track['track_id']} {track['label']:8s}"
              f" at ({x0:5.1f},{y0:5.1f})  seen in {track['hits']} frames")


if __name__ == "__main__":
    main()
