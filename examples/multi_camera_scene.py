#!/usr/bin/env python3
"""Multi-camera scene fusion: three cameras, one home, fused world tracks.

Three wall-mounted cameras watch the same two people walk paths that cross
in the middle of the room. Each camera's branch estimates poses (the
scene_pose_estimator service), tracks locally with the IoU tracker and
computes limb-ratio re-ID embeddings; a single fusion module consumes all
three branches through a fan-in DAG and maintains the camera → room → home
scene graph with per-track provenance. At the crossing the per-camera
trackers genuinely lose identities — cross-camera re-ID is what keeps the
fused tracks stable.

Run:  python examples/multi_camera_scene.py
"""

from repro import VideoPipe
from repro.apps import install_scene_services, multi_camera_pipeline_config
from repro.devices import DeviceSpec
from repro.vision import fusion_accuracy

DURATION_S = 8.0
FPS = 8.0


def main() -> None:
    home = VideoPipe.paper_testbed(seed=23)
    home.add_device(DeviceSpec(name="camera", kind="phone", cpu_factor=2.5,
                               cores=8, supports_containers=False))
    install_scene_services(home, "desktop")

    pipeline = home.deploy_pipeline(
        multi_camera_pipeline_config(fps=FPS, duration_s=DURATION_S)
    )
    print("placement:")
    for name in pipeline.module_names():
        print(f"  {name:22s} -> {pipeline.device_of(name)}")

    home.run(until=DURATION_S + 1.0)

    fusion = pipeline.module_instance("scene_fusion_module")
    print(f"\nframes fused: {pipeline.metrics.counter('frames_completed')}"
          f" across {len(pipeline.config.modules) - 2} cameras")

    graph = fusion.scene_graph()
    print("\nscene graph (camera -> room -> home):")
    for room, cameras in graph["home"].items():
        print(f"  {room}:")
        for camera, members in cameras.items():
            print(f"    {camera}: local tracks {members}")

    print("\nfused world tracks:")
    for track in graph["tracks"]:
        x, z = track["world"]
        provenance = ", ".join(f"{cam}#{tid}"
                               for cam, tid in track["provenance"])
        print(f"  fused #{track['fused_id']} at ({x:4.1f}m, {z:4.1f}m)"
              f"  rooms={track['rooms']}  from [{provenance}]")

    accuracy = fusion_accuracy(fusion.history)
    print(f"\nfusion accuracy vs ground truth:"
          f" precision={accuracy['precision']:.3f}"
          f" recall={accuracy['recall']:.3f}"
          f" id_switches={accuracy['id_switches']}")


if __name__ == "__main__":
    main()
