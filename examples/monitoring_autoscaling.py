#!/usr/bin/env python3
"""Operating VideoPipe: monitoring, alarms, and automatic scaling (§7).

The paper's future-work list — "automatic deployment, scheduling and
monitoring components … scale up services automatically based on workload"
— implemented and demonstrated: two pipelines overload the shared pose
service, the monitor's alarm catches the sustained queue, and the
autoscaler adds a replica that restores throughput.

Run:  python examples/monitoring_autoscaling.py
"""

from repro import VideoPipe
from repro.apps import (
    FitnessApp,
    fitness_pipeline_config,
    gesture_pipeline_config,
    install_fitness_services,
    install_gesture_services,
)
from repro.devices import DeviceSpec
from repro.monitor import AlarmRule
from repro.services import ScalingPolicy

DURATION_S = 24.0


def main() -> None:
    home = VideoPipe.paper_testbed(seed=41)
    home.add_device(DeviceSpec(name="camera", kind="phone", cpu_factor=2.5,
                               cores=8, supports_containers=False))

    fitness = install_fitness_services(home)
    install_gesture_services(home)

    # 1. monitoring: probe every device, service and pipeline twice a second
    monitor = home.enable_monitoring(period_s=0.5)
    monitor.add_rule(AlarmRule(
        name="pose-overload",
        probe="service/pose_detector@desktop",
        metric="utilization",
        predicate=lambda busy: busy > 0.8,
        for_samples=4,
    ))

    # 2. autoscaling: grow a service when requests keep queueing
    home.enable_autoscaling(ScalingPolicy(
        check_interval_s=0.5, queue_threshold=0.75, window=4, max_replicas=2,
    ))

    # 3. overload: both pipelines at a 30 FPS source share one pose worker
    app = FitnessApp(home, fitness)
    p_fit = app.deploy(fitness_pipeline_config(fps=30.0, duration_s=DURATION_S))
    p_gest = home.deploy_pipeline(
        gesture_pipeline_config(fps=30.0, duration_s=DURATION_S)
    )

    home.run(until=DURATION_S + 1.0)

    print("alarms fired:")
    for alarm in monitor.alarms_for("pose-overload")[:3]:
        print(f"  t={alarm.at:5.2f}s  {alarm.probe} {alarm.metric}="
              f"{alarm.value:.0f}")

    print("\nautoscaler decisions:")
    for event in home.autoscaler.events:
        print(f"  t={event.at:5.2f}s  {event.service}@{event.device}: "
              f"{event.from_replicas} -> {event.to_replicas} replicas "
              f"(avg queue {event.avg_queue:.1f})")

    pose = home.registry.any_host("pose_detector")
    print(f"\npose service: {pose.replicas} replicas, "
          f"{pose.local_calls} calls served, {pose.utilization():.0%} busy")

    for name, pipeline in (("fitness", p_fit), ("gesture", p_gest)):
        fps = pipeline.metrics.throughput_fps(DURATION_S + 1.0, warmup_s=2.0)
        live = monitor.rate(f"pipeline/{pipeline.name}", "frames_completed",
                            window_s=5.0)
        print(f"{name}: {fps:.2f} fps overall, {live:.2f} fps in the last 5 s"
              " (post-scaling)")

    cpu = monitor.latest("device/desktop", "cpu_utilization")
    print(f"desktop CPU utilization: {cpu:.0%}")


if __name__ == "__main__":
    main()
