#!/usr/bin/env python3
"""The fall-detection pipeline (§4.3).

A camera watches an (synthetic) elderly resident; the pipeline runs pose
detection on the shared desktop service and a stateful fall-detector module
that alerts a caregiver through the IoT actuator when a rapid hip drop ends
in a horizontal posture. The same pipeline is then pointed at a squat
workout to show it does not false-alarm on exercise.

Run:  python examples/fall_detection.py
"""

from repro import VideoPipe
from repro.apps import (
    fall_pipeline_config,
    install_fitness_services,
    install_gesture_services,
)
from repro.devices import DeviceSpec


def run_scenario(motion: str, seed: int) -> None:
    home = VideoPipe.paper_testbed(seed=seed)
    home.add_device(DeviceSpec(name="camera", kind="phone", cpu_factor=2.5,
                               cores=8, supports_containers=False))
    install_fitness_services(home)  # provides the shared pose detector
    gesture = install_gesture_services(home)  # provides the IoT actuator

    pipeline = home.deploy_pipeline(
        fall_pipeline_config(fps=10.0, duration_s=8.0, motion=motion)
    )
    home.run(until=9.0)

    falls = pipeline.metrics.counter("falls_detected")
    alert = gesture.fleet.states["caregiver_alert"]
    print(f"scenario {motion!r}: falls detected = {falls},"
          f" caregiver alert = {'RAISED' if alert else 'quiet'}")
    if falls:
        detector = pipeline.module_instance("fall_detector_module")
        print(f"  first detection at t={detector.falls_detected[0]:.2f}s"
              " (the synthetic fall completes at t≈0.9s)")


def main() -> None:
    run_scenario("fall", seed=31)  # must alert
    run_scenario("squat", seed=32)  # must stay quiet
    run_scenario("stand", seed=33)  # must stay quiet


if __name__ == "__main__":
    main()
