#!/usr/bin/env python3
"""Building your own pipeline: custom modules, custom services, Listing-1
configuration text, and the realtime execution mode.

Shows the full developer workflow the paper describes in §3: write module
code against the Table-1 interface, declare the DAG in the configuration
dialect, and let VideoPipe place and wire everything.

Run:  python examples/custom_pipeline.py
"""

from repro import Module, VideoPipe, parse_pipeline_text, register_module
from repro.services import FunctionService


# --- 1. module code (the "JavaScript files" of the paper) -------------------

@register_module("./TickerModule.js")
class TickerModule(Module):
    """A source that emits one numbered message per interval."""

    def __init__(self, count=10, interval_s=0.2):
        self.count = count
        self.interval_s = interval_s

    def init(self, ctx):
        kernel = ctx._runtime.kernel

        def ticker():
            for n in range(self.count):
                ctx.call_next({"n": n, "sent_at": ctx.now})
                yield self.interval_s

        kernel.process(ticker(), name="ticker")

    def event_received(self, ctx, event):
        pass


@register_module("./SquarerModule.js")
class SquarerModule(Module):
    """Calls the 'squarer' service (wherever it lives) and forwards."""

    def event_received(self, ctx, event):
        def flow():
            result = yield ctx.call_service("squarer", event.payload["n"])
            out = dict(event.payload, squared=result)
            local = "locally" if ctx.service_is_local("squarer") else "remotely"
            ctx.log(f"squared {event.payload['n']} {local}")
            ctx.call_next(out)

        return flow()


@register_module("./PrinterModule.js")
class PrinterModule(Module):
    """The sink: collects results (a stand-in for a display)."""

    def __init__(self):
        self.results = []

    def event_received(self, ctx, event):
        latency_ms = (ctx.now - event.payload["sent_at"]) * 1e3
        self.results.append((event.payload["n"], event.payload["squared"],
                             latency_ms))


# --- 2. the pipeline configuration (the paper's Listing-1 dialect) ----------

CONFIG_TEXT = """
// ticker on the watch, squarer next to its service, printer on the TV
modules : [
    { name: ticker_module
      include ("./TickerModule.js")
      endpoint: ["bind#tcp://*:5950"]
      next_module: squarer_module }
    { name: squarer_module
      include ("./SquarerModule.js")
      service: ['squarer']
      endpoint: ["bind#tcp://*:5951"]
      next_module: printer_module }
    { name: printer_module
      include ("./PrinterModule.js")
      endpoint: ["bind#tcp://*:5952"]
      next_module: [] }
]
"""


def main() -> None:
    # --- 3. a home with an unusual device mix -------------------------------
    home = VideoPipe(seed=42)
    home.add_device("watch")  # very constrained: modules only
    home.add_device("laptop")  # container-capable
    home.add_device("fridge")  # constrained appliance

    home.deploy_service(
        FunctionService("squarer", lambda n, ctx: n * n,
                        reference_cost_s=0.005, default_port=7400),
        "laptop",
    )

    config = parse_pipeline_text(CONFIG_TEXT, name="custom")
    config.module("ticker_module").device = "watch"
    config.module("printer_module").device = "fridge"

    pipeline = home.deploy_pipeline(config, default_device="watch")
    print("placement (co-location moved the squarer next to its service):")
    for name in pipeline.module_names():
        print(f"  {name:18s} -> {pipeline.device_of(name)}")

    home.run(until=5.0)

    printer = pipeline.module_instance("printer_module")
    print(f"\nresults ({len(printer.results)} messages):")
    for n, squared, latency_ms in printer.results:
        print(f"  {n}^2 = {squared:3d}   end-to-end {latency_ms:5.1f} ms")

    print("\nmodule log lines:")
    for at, module, text in pipeline.wiring.logs[:3]:
        print(f"  [{at:5.2f}s] {module}: {text}")

    # --- 4. the same system, paced against the wall clock -------------------
    print("\nrealtime mode (2 wall-seconds of live execution) ...")
    live = VideoPipe(seed=42, realtime=True, speed=5.0)  # 5x real time
    live.add_device("watch")
    live.add_device("laptop")
    live.add_device("fridge")
    live.deploy_service(
        FunctionService("squarer", lambda n, ctx: n * n,
                        reference_cost_s=0.005, default_port=7400),
        "laptop",
    )
    config2 = parse_pipeline_text(CONFIG_TEXT, name="custom-live")
    config2.module("ticker_module").device = "watch"
    config2.module("printer_module").device = "fridge"
    live_pipeline = live.deploy_pipeline(config2, default_device="watch")
    live.run(until=2.0)  # ~0.4 wall-seconds at speed 5
    live_printer = live_pipeline.module_instance("printer_module")
    print(f"realtime run delivered {len(live_printer.results)} messages"
          " while synchronized to the wall clock")


if __name__ == "__main__":
    main()
