#!/usr/bin/env python3
"""Gesture-based IoT control (§4.2) sharing services with the fitness app.

Two pipelines run at once: the living-room fitness session and a
gesture-control camera. Both call the **same** pose detector service —
§5.2.2's service-sharing scenario — while the gesture pipeline's classifier
maps 'clap' to the living-room light and 'wave' to the doorbell camera.

Run:  python examples/gesture_control.py
"""

from repro import VideoPipe
from repro.apps import (
    FitnessApp,
    fitness_pipeline_config,
    gesture_pipeline_config,
    install_fitness_services,
    install_gesture_services,
)
from repro.devices import DeviceSpec

DURATION_S = 20.0


def main() -> None:
    home = VideoPipe.paper_testbed(seed=21)
    # a second camera (another phone) watches the room for gestures
    home.add_device(DeviceSpec(name="camera", kind="phone", cpu_factor=2.5,
                               cores=8, supports_containers=False))

    fitness = install_fitness_services(home)
    gesture = install_gesture_services(home)  # reuses the pose service!

    app = FitnessApp(home, fitness)
    fitness_pipe = app.deploy(
        fitness_pipeline_config(fps=10.0, duration_s=DURATION_S)
    )
    gesture_pipe = home.deploy_pipeline(
        gesture_pipeline_config(fps=10.0, duration_s=DURATION_S, motion="clap")
    )

    home.run(until=DURATION_S + 1.0)

    f_fit = fitness_pipe.metrics.throughput_fps(DURATION_S + 1.0, warmup_s=2.0)
    f_gest = gesture_pipe.metrics.throughput_fps(DURATION_S + 1.0, warmup_s=2.0)
    print(f"fitness pipeline: {f_fit:.2f} fps; gesture pipeline: {f_gest:.2f} fps")

    pose_host = home.registry.any_host("pose_detector")
    print(f"shared pose detector served {pose_host.local_calls} calls"
          f" ({pose_host.utilization():.0%} busy)")

    print("\nIoT command log (clap -> living_room_light):")
    for event in gesture.fleet.log:
        state = "ON" if event.new_state else "OFF"
        print(f"  t={event.at:6.2f}s  {event.target} -> {state}")
    print(f"\nfinal light state: "
          f"{'ON' if gesture.fleet.states['living_room_light'] else 'OFF'}")


if __name__ == "__main__":
    main()
