#!/usr/bin/env python3
"""Chaos-testing the fitness pipeline: crash, detect, evacuate, recover.

"Edge devices fail" (§7) — this example makes that concrete. The desktop
hosting the pose and activity services dies mid-workout; the heartbeat
failure detector notices within a second, the orchestrator evacuates the
stranded modules onto a standby laptop, and the stream recovers on its own.
The printed report shows the fault timeline, the MTTR the detector
measured, and the throughput before, during, and after the outage.

Run:  python examples/chaos_fitness.py
"""

from repro import FaultPlan, VideoPipe
from repro.apps import (
    FitnessApp,
    fitness_pipeline_config,
    install_fitness_services,
    train_activity_recognizer,
)
from repro.metrics import RecoveryTracker
from repro.services import ActivityClassifierService, PoseDetectorService

CRASH_AT = 5.0
DOWN_FOR = 6.0
DURATION_S = 20.0


def main() -> None:
    home = VideoPipe.paper_testbed(seed=33)
    home.add_device("laptop")  # the standby compute node

    recognizer = train_activity_recognizer(seed=33)
    services = install_fitness_services(home, recognizer=recognizer)
    # standby replicas so there is somewhere to fail over to
    home.deploy_service(PoseDetectorService(), "laptop")
    home.deploy_service(ActivityClassifierService(recognizer), "laptop")

    config = fitness_pipeline_config(fps=10.0)
    config.module("pose_detector_module").device = "desktop"
    config.module("activity_detector_module").device = "desktop"
    # the credit watchdog restarts the stream after frames die on the wire
    config.module("video_streaming_module").params["credit_timeout_s"] = 1.0
    pipeline = FitnessApp(home, services).deploy(config)

    # close the §7 loop: heartbeats -> detection -> evacuation remedy
    detector = home.enable_failure_detection(
        home_device="tv", period_s=0.25, miss_threshold=2)
    home.enable_self_healing(pipeline, cooldown_s=0.5)
    injector = home.enable_fault_injection(
        FaultPlan().device_crash(CRASH_AT, "desktop", down_for=DOWN_FOR))

    tracker = (RecoveryTracker()
               .watch_detector(detector)
               .watch_injector(injector)
               .watch_pipeline(pipeline))

    def frames():
        return pipeline.metrics.counter("frames_completed")

    home.run(until=CRASH_AT)
    pre = frames()
    pre_rate = pre / CRASH_AT
    home.run(until=CRASH_AT + DOWN_FOR)
    during = frames()
    home.run(until=DURATION_S)
    post_rate = (frames() - during) / (DURATION_S - CRASH_AT - DOWN_FOR)

    print("fault timeline:")
    for at, kind, target in injector.trace:
        print(f"  t={at:5.2f}s  {kind} -> {target}")

    print("\ndetector events:")
    for event in detector.events:
        mttr = f"  (MTTR {event.mttr_s:.2f}s)" if event.mttr_s else ""
        print(f"  t={event.at:5.2f}s  {event.device} {event.kind}{mttr}")

    print("\norchestrator actions:")
    for action in home.orchestrator.actions:
        print(f"  t={action.at:5.2f}s  [{action.remedy}] {action.description}")

    print("\nwhere the compute modules live now:")
    for name in ("pose_detector_module", "activity_detector_module"):
        print(f"  {name}: {pipeline.device_of(name)}")

    report = tracker.report()
    print(f"\nMTTR: {report['mttr_mean_s']:.2f}s over"
          f" {report['recoveries']} recovery"
          f" ({report['recovery_migrations']} modules migrated)")
    print(f"throughput: {pre_rate:.1f} fps pre-fault,"
          f" {(during - pre) / DOWN_FOR:.1f} fps during the outage,"
          f" {post_rate:.1f} fps post-recovery"
          f" ({post_rate / pre_rate:.0%} of pre-fault)")


if __name__ == "__main__":
    main()
