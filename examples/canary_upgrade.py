#!/usr/bin/env python3
"""Live operations: roll a new pose-detector version onto a running home.

Deploys the Fig. 4 fitness pipeline, streams it at 8 FPS, then — without
stopping anything — asks for a v1 -> v2 upgrade of the pose-detector
module. The candidate is deployed beside v1 on the same device, live
frames are mirrored to it off the credit path, and the canary judge
compares its p99 / error rate / backlog against v1's trailing window
before promoting it into the live address. The invariant auditor watches
the whole swap, and every frame's per-hop version lineage is recorded.

Run:  python examples/canary_upgrade.py
"""

from repro import CanaryPolicy, VideoPipe
from repro.apps import (
    FitnessApp,
    fitness_pipeline_config,
    install_fitness_services,
)

MODULE = "pose_detector_module"


def main() -> None:
    # 1. The paper testbed, with auditing and live-ops switched on.
    home = VideoPipe.paper_testbed(seed=7)
    home.enable_audit()
    home.enable_liveops()

    services = install_fitness_services(home)
    app = FitnessApp(home, services)
    pipeline = app.deploy(fitness_pipeline_config(fps=8.0, duration_s=20.0))

    # 2. Let v1 serve for a few seconds to build its health baseline.
    home.run(until=3.0)
    print(f"{MODULE} serving at"
          f" {pipeline.wiring.version_of(MODULE)},"
          f" {pipeline.metrics.counter('frames_completed')} frames done")

    # 3. Ask for the upgrade. v2 starts as a mirrored canary — the live
    #    pipeline keeps running on v1 while the judge gathers evidence.
    upgrade = home.upgrade_module(
        pipeline, MODULE,
        policy=CanaryPolicy(min_mirrored=8, decision_timeout_s=8.0),
    )
    print(f"canary in flight: {upgrade.from_version} ->"
          f" {upgrade.to_version} (shadow {upgrade.shadow_name!r})")

    # 4. Run the stream out. The judge promotes or rolls back on its own.
    home.run(until=21.0)

    print(f"\nverdict: {upgrade.state} — {upgrade.reason}")
    if upgrade.state == "promoted":
        print(f"auto-promoted at t={upgrade.decided_at:.2f}s;"
              f" live version is now"
              f" {pipeline.wiring.version_of(MODULE)}")
    dropped = pipeline.metrics.counter("frames_dropped")
    print(f"{'zero frames lost' if dropped == 0 else f'{dropped} LOST'}"
          f" across the swap;"
          f" {pipeline.metrics.counter('frames_completed')} completed")
    print(f"mirror accounting: {upgrade.mirrored_frames} mirrored ="
          f" {upgrade.shadow_metrics.counter('frames_completed')} completed"
          f" + {upgrade.shadow_metrics.counter('frames_dropped')} dropped")
    print("audit:", "clean" if home.check_invariants() == []
          else home.auditor.report())

    # 5. Per-frame lineage: which build touched which frame.
    lineage = home.liveops.lineage
    v1_frame = v2_frame = None
    for key in lineage._records:
        versions = lineage.versions_of(*key)
        if any(v == f"{MODULE}@v1" for v in versions) and v1_frame is None:
            v1_frame = key
        if any(v == f"{MODULE}@v2" for v in versions) and v2_frame is None:
            v2_frame = key
    print(f"\nlineage recorded for {lineage.frame_count} frames:")
    for label, key in (("before swap", v1_frame), ("after swap", v2_frame)):
        if key is None:
            continue
        print(f"  frame {key[1]} ({label}): "
              + " -> ".join(lineage.versions_of(*key)))


if __name__ == "__main__":
    main()
