#!/usr/bin/env python3
"""The full fitness-application evaluation: VideoPipe vs the baseline.

Reproduces the §5 comparison interactively: deploys the same Listing-1
pipeline twice — once with co-located placement (Fig. 4) and once as the
EdgeEye-style baseline (Fig. 5, all modules on the phone calling remote
services) — and prints Table-2-style rates and Fig-6-style stage bars.

Run:  python examples/fitness_app.py
"""

from repro import VideoPipe
from repro.apps import (
    FitnessApp,
    fitness_pipeline_config,
    install_fitness_services,
    train_activity_recognizer,
)
from repro.metrics import format_table

SOURCE_RATES = (5.0, 10.0, 20.0, 30.0, 60.0)
DURATION_S = 25.0
WARMUP_S = 2.0
STAGES = ("load_frame", "pose_detection", "activity_detection",
          "rep_count", "total_duration")


def run_once(recognizer, architecture: str, fps: float):
    home = VideoPipe.paper_testbed(seed=11)
    services = install_fitness_services(
        home,
        recognizer=recognizer,
        baseline_layout=(architecture == "baseline"),
    )
    app = FitnessApp(home, services, architecture=architecture)
    pipeline = app.deploy(fitness_pipeline_config(fps=fps, duration_s=DURATION_S))
    home.run(until=DURATION_S + 1.0)
    throughput = pipeline.metrics.throughput_fps(DURATION_S + 1.0, WARMUP_S)
    return throughput, pipeline.metrics.stage_means_ms()


def main() -> None:
    print("training the activity recognizer on synthetic workouts ...")
    recognizer = train_activity_recognizer(seed=11)

    rows = []
    stage_bars = {}
    for fps in SOURCE_RATES:
        vp_fps, vp_stages = run_once(recognizer, "videopipe", fps)
        base_fps, base_stages = run_once(recognizer, "baseline", fps)
        rows.append([int(fps), vp_fps, base_fps])
        if fps == 10.0:
            stage_bars = {"VideoPipe": vp_stages, "Baseline": base_stages}

    print()
    print(format_table(
        ["Source FPS", "VideoPipe", "Baseline"],
        rows,
        title="End-to-end frame rate (compare paper Table 2)",
    ))

    print("\nPer-stage latency at a 10 FPS source (compare paper Fig. 6):")
    print(format_table(
        ["stage", "VideoPipe (ms)", "Baseline (ms)"],
        [[stage, stage_bars["VideoPipe"][stage], stage_bars["Baseline"][stage]]
         for stage in STAGES],
        float_format="{:.1f}",
    ))
    print("\nCo-locating modules with their services wins on every stage;")
    print("the pose stage dominates the gap, exactly as in the paper.")


if __name__ == "__main__":
    main()
