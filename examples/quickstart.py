#!/usr/bin/env python3
"""Quickstart: deploy the paper's fitness pipeline and read its metrics.

Builds the §5.1 testbed (2018 flagship phone + desktop + 4K TV on home
Wi-Fi), installs the four fitness services where Fig. 4 puts them, deploys
the Listing-1 pipeline, streams 30 seconds of a synthetic squat workout and
prints throughput plus per-stage latency.

Run:  python examples/quickstart.py
"""

from repro import VideoPipe
from repro.apps import (
    FitnessApp,
    fitness_pipeline_config,
    install_fitness_services,
)


def main() -> None:
    # 1. The home: three heterogeneous devices on one Wi-Fi network.
    home = VideoPipe.paper_testbed(seed=7)

    # 2. Services: pose + activity in containers on the desktop; rep counter
    #    + display native on the TV (Fig. 4). Training of the kNN activity
    #    model on synthetic workout recordings happens inside.
    services = install_fitness_services(home)

    # 3. The application DAG (Listing 1), placed by co-location.
    app = FitnessApp(home, services, architecture="videopipe")
    pipeline = app.deploy(fitness_pipeline_config(fps=20.0, duration_s=30.0))

    print("placement:")
    for name in pipeline.module_names():
        print(f"  {name:28s} -> {pipeline.device_of(name)}")

    # 4. Run 30 simulated seconds (finishes in well under a wall second).
    home.run(until=31.0)

    # 5. Read the evaluation metrics.
    fps = pipeline.metrics.throughput_fps(31.0, warmup_s=2.0)
    print(f"\nend-to-end frame rate: {fps:.2f} fps (20 fps source)")
    print("per-stage mean latency (ms):")
    for stage, ms in sorted(pipeline.metrics.stage_means_ms().items()):
        print(f"  {stage:20s} {ms:7.1f}")

    sink = services.sink
    last = sink.frames[-1]
    print(f"\nTV displayed {sink.count} frames;"
          f" last overlay: activity={last.label!r} reps={last.reps}")


if __name__ == "__main__":
    main()
