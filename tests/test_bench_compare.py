"""The benchmark regression gate's logic (CI runs the real thing)."""

import importlib.util
import json
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare",
    Path(__file__).parent.parent / "tools" / "bench_compare.py",
)
compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare)


def _files(tmp_path, latency_ms, ratio, base_latency=100.0, base_ratio=8.0,
           fast_mode=True, base_fast=True):
    artifact = tmp_path / "fig6_highfps.json"
    artifact.write_text(json.dumps({
        "fast_mode": fast_mode,
        "latency_improvement": ratio,
        "arms": {"on": {"stage_means_ms": {"total_duration": latency_ms}}},
    }))
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "tolerance_pct": 10.0,
        "fast_mode": base_fast,
        "artifacts": {"fig6_highfps.json": {
            "arms.on.stage_means_ms.total_duration":
                {"value": base_latency, "direction": "lower"},
            "latency_improvement":
                {"value": base_ratio, "direction": "higher"},
        }},
    }))
    return artifact, baseline


def test_pass_within_tolerance(tmp_path, capsys):
    artifact, baseline = _files(tmp_path, latency_ms=105.0, ratio=7.5)
    assert compare.main([str(artifact), "--baseline", str(baseline)]) == 0
    assert "OK" in capsys.readouterr().out


def test_fail_on_latency_regression(tmp_path, capsys):
    artifact, baseline = _files(tmp_path, latency_ms=115.0, ratio=8.0)
    assert compare.main([str(artifact), "--baseline", str(baseline)]) == 1
    assert "total_duration" in capsys.readouterr().out


def test_fail_when_improvement_ratio_collapses(tmp_path, capsys):
    artifact, baseline = _files(tmp_path, latency_ms=100.0, ratio=6.0)
    assert compare.main([str(artifact), "--baseline", str(baseline)]) == 1
    assert "latency_improvement" in capsys.readouterr().out


def test_fail_on_missing_metric(tmp_path):
    artifact = tmp_path / "fig6_highfps.json"
    artifact.write_text(json.dumps({"fast_mode": True}))
    _, baseline = _files(tmp_path, latency_ms=0, ratio=0)
    assert compare.main([str(artifact), "--baseline", str(baseline)]) == 1


def test_window_mismatch_skips_not_fails(tmp_path, capsys):
    artifact, baseline = _files(tmp_path, latency_ms=500.0, ratio=1.0,
                                fast_mode=False, base_fast=True)
    assert compare.main([str(artifact), "--baseline", str(baseline)]) == 0
    assert "not comparable" in capsys.readouterr().out


def test_unknown_artifact_skipped(tmp_path, capsys):
    artifact, baseline = _files(tmp_path, latency_ms=100.0, ratio=8.0)
    other = tmp_path / "unrelated.json"
    other.write_text("{}")
    assert compare.main([str(artifact), str(other),
                         "--baseline", str(baseline)]) == 0
    assert "no baseline entry" in capsys.readouterr().out


def test_update_rewrites_values(tmp_path):
    artifact, baseline = _files(tmp_path, latency_ms=90.0, ratio=9.0)
    assert compare.main([str(artifact), "--baseline", str(baseline),
                         "--update"]) == 0
    doc = json.loads(baseline.read_text())
    guards = doc["artifacts"]["fig6_highfps.json"]
    assert guards["arms.on.stage_means_ms.total_duration"]["value"] == 90.0
    assert guards["latency_improvement"]["value"] == 9.0


def test_improvement_prints_ratchet_hint(tmp_path, capsys):
    artifact, baseline = _files(tmp_path, latency_ms=80.0, ratio=10.0)
    assert compare.main([str(artifact), "--baseline", str(baseline)]) == 0
    assert "ratcheting" in capsys.readouterr().out
