"""Unit tests for the degradation ladder's rungs and assembly."""

import pytest

from repro.core.videopipe import VideoPipe
from repro.apps.fitness import (
    fitness_pipeline_config,
    install_fitness_services,
)
from repro.slo import SLO, SLOConfig, build_ladder, find_source
from repro.slo.ladder import (
    FpsStep,
    PauseStep,
    ResolutionStep,
    ScaleUpStep,
    TierStep,
)


class FakeCamera:
    def __init__(self, width=640, height=480):
        self.width = width
        self.height = height

    def set_resolution(self, width, height):
        self.width, self.height = width, height


class FakeSource:
    def __init__(self, fps=10.0):
        self.fps = fps
        self.paused = False

    def set_fps(self, fps):
        self.fps = fps

    def set_paused(self, paused):
        self.paused = paused


class TestResolutionStep:
    def test_apply_shrinks_and_revert_restores(self):
        camera = FakeCamera()
        step = ResolutionStep(camera, factor=0.7)
        detail = step.apply()
        assert detail == "resolution 640x480 -> 448x336"
        assert (camera.width, camera.height) == (448, 336)
        assert step.revert() == "resolution -> 640x480"
        assert (camera.width, camera.height) == (640, 480)

    def test_no_camera_is_not_actionable(self):
        assert ResolutionStep(None, factor=0.7).apply() is None

    def test_floor_resolution_is_not_actionable(self):
        camera = FakeCamera(16, 16)
        assert ResolutionStep(camera, factor=0.7).apply() is None
        assert (camera.width, camera.height) == (16, 16)

    def test_revert_without_apply_keeps(self):
        assert ResolutionStep(FakeCamera(), 0.7).revert() == "resolution kept"


class TestFpsStep:
    def test_apply_lowers_and_revert_restores(self):
        source = FakeSource(fps=10.0)
        step = FpsStep(source, factor=0.7, floor_fps=4.0)
        assert step.apply() == "fps 10.0 -> 7.0"
        assert source.fps == pytest.approx(7.0)
        assert step.revert() == "fps -> 10.0"
        assert source.fps == 10.0

    def test_floor_is_respected(self):
        source = FakeSource(fps=5.0)
        step = FpsStep(source, factor=0.7, floor_fps=4.0)
        step.apply()
        assert source.fps == 4.0  # 3.5 floored at min_fps

    def test_at_floor_is_not_actionable(self):
        source = FakeSource(fps=4.0)
        assert FpsStep(source, factor=0.7, floor_fps=4.0).apply() is None

    def test_no_source_is_not_actionable(self):
        assert FpsStep(None, 0.7, 1.0).apply() is None


class TestPauseStep:
    def test_apply_pauses_and_revert_resumes(self):
        source = FakeSource()
        step = PauseStep(source)
        assert step.apply() == "paused"
        assert source.paused
        assert step.revert() == "resumed"
        assert not source.paused

    def test_already_paused_is_not_actionable(self):
        source = FakeSource()
        source.paused = True
        assert PauseStep(source).apply() is None


@pytest.fixture
def home_and_pipeline(fitness_recognizer):
    home = VideoPipe.paper_testbed(seed=7)
    install_fitness_services(home, recognizer=fitness_recognizer)
    pipeline = home.deploy_pipeline(fitness_pipeline_config(fps=10.0))
    return home, pipeline


class TestScaleUpStep:
    def test_without_autoscaler_not_actionable(self, home_and_pipeline):
        home, _ = home_and_pipeline
        assert ScaleUpStep(home, ["pose_detector"]).apply() is None

    def test_apply_adds_and_revert_retires_a_replica(self, home_and_pipeline):
        home, _ = home_and_pipeline
        home.enable_autoscaling()
        host = home.registry.hosts_of("pose_detector")[0]
        before = host.replicas
        step = ScaleUpStep(home, ["pose_detector"])
        detail = step.apply()
        assert detail is not None and "replicas" in detail
        assert host.replicas == before + 1
        home.run_for(1.5)  # let the scaler's per-host cooldown elapse
        step.revert()
        assert host.replicas == before

    def test_revert_under_cooldown_is_refused_gracefully(
            self, home_and_pipeline):
        home, _ = home_and_pipeline
        home.enable_autoscaling()
        host = home.registry.hosts_of("pose_detector")[0]
        step = ScaleUpStep(home, ["pose_detector"])
        step.apply()
        # same instant: the scaler's cooldown refuses the retire, the step
        # reports it rather than raising, and the extra replica stays
        assert "refused" in step.revert()
        assert host.replicas == 2

    def test_unknown_service_not_actionable(self, home_and_pipeline):
        home, _ = home_and_pipeline
        home.enable_autoscaling()
        assert ScaleUpStep(home, ["no_such_service"]).apply() is None


class TestTierStep:
    def test_apply_cheapens_and_revert_restores(self, home_and_pipeline):
        home, _ = home_and_pipeline
        host = home.registry.hosts_of("pose_detector")[0]
        original = host.service.reference_cost_s
        step = TierStep(home, ("pose_detector",), factor=0.6)
        detail = step.apply()
        assert detail is not None and detail.startswith("tier down")
        assert host.service.reference_cost_s == pytest.approx(0.6 * original)
        step.revert()
        assert host.service.reference_cost_s == original

    def test_unknown_service_not_actionable(self, home_and_pipeline):
        home, _ = home_and_pipeline
        assert TierStep(home, ("no_such",), factor=0.6).apply() is None


class TestFindSourceAndBuild:
    def test_find_source_returns_the_paced_source(self, home_and_pipeline):
        _, pipeline = home_and_pipeline
        source = find_source(pipeline)
        assert source is not None
        assert source.fps == 10.0
        assert hasattr(source, "camera")

    def test_default_ladder_order(self, home_and_pipeline):
        home, pipeline = home_and_pipeline
        steps = build_ladder(home, pipeline, SLO(), SLOConfig())
        assert [s.name for s in steps] == [
            "scale_up", "replan", "resolution", "resolution",
            "service_tier", "fps", "fps", "pause",
        ]

    def test_config_gates_the_rungs(self, home_and_pipeline):
        home, pipeline = home_and_pipeline
        steps = build_ladder(home, pipeline, SLO(), SLOConfig(
            max_extra_replicas=0, use_optimizer=False, resolution_steps=1,
            tier_factor=1.0, fps_steps=0, allow_pause=False,
        ))
        assert [s.name for s in steps] == ["resolution"]

    def test_tier_rung_needs_a_called_service(self, home_and_pipeline):
        home, pipeline = home_and_pipeline
        steps = build_ladder(home, pipeline, SLO(), SLOConfig(
            max_extra_replicas=0, use_optimizer=False, resolution_steps=0,
            tier_services=("not_called",), fps_steps=0, allow_pause=False,
        ))
        assert steps == []
