"""Shared trained recognizers (training once keeps the suite fast)."""

import pytest

from repro.apps import train_activity_recognizer, train_gesture_recognizer


@pytest.fixture(scope="session")
def fitness_recognizer():
    return train_activity_recognizer(seed=1, train_subjects=4)


@pytest.fixture(scope="session")
def gesture_recognizer():
    return train_gesture_recognizer(seed=1, train_subjects=4)
